//! Figure 1: the retired-instruction breakdown (load / store / branch /
//! integer / FP) of the 17 representative big data workloads, the 6 MPI
//! implementations, and the comparison suites — plus the paper's headline
//! aggregates (observation O1): branch ratio ≈ 18.7 %, integer ≈ 38 %, and
//! data-movement share ≈ 92 %.

use bdb_bench::{mean_of, profile_on_xeon, scale_from_args, suite_profiles};
use bdb_wcrt::report::{pct, TextTable};
use bdb_wcrt::WorkloadProfile;
use bdb_workloads::catalog;

fn mix_row(table: &mut TextTable, label: &str, p: &WorkloadProfile) {
    let m = &p.report.mix;
    table.row([
        label.to_owned(),
        pct(m.load_ratio()),
        pct(m.store_ratio()),
        pct(m.branch_ratio()),
        pct(m.integer_ratio()),
        pct(m.fp_ratio()),
        pct(m.data_movement_ratio()),
    ]);
}

fn main() {
    let scale = scale_from_args();
    let mut table = TextTable::new([
        "workload",
        "load",
        "store",
        "branch",
        "integer",
        "fp",
        "data-move",
    ]);

    let reps = profile_on_xeon(&catalog::representatives(), scale);
    for p in &reps {
        mix_row(&mut table, &p.spec.id, p);
    }
    let mpi = profile_on_xeon(&catalog::mpi_workloads(), scale);
    for p in &mpi {
        mix_row(&mut table, &p.spec.id, p);
    }
    for (name, profiles) in suite_profiles(scale) {
        let refs: Vec<&WorkloadProfile> = profiles.iter().collect();
        let avg = |f: fn(&WorkloadProfile) -> f64| mean_of(&refs, f);
        table.row([
            format!("[{name}]"),
            pct(avg(|p| p.report.mix.load_ratio())),
            pct(avg(|p| p.report.mix.store_ratio())),
            pct(avg(|p| p.report.mix.branch_ratio())),
            pct(avg(|p| p.report.mix.integer_ratio())),
            pct(avg(|p| p.report.mix.fp_ratio())),
            pct(avg(|p| p.report.mix.data_movement_ratio())),
        ]);
    }
    println!("Figure 1: Instruction breakdown");
    println!("{}", table.render());

    let refs: Vec<&WorkloadProfile> = reps.iter().collect();
    let branch = mean_of(&refs, |p| p.report.mix.branch_ratio());
    let integer = mean_of(&refs, |p| p.report.mix.integer_ratio());
    let movement = mean_of(&refs, |p| p.report.mix.data_movement_ratio());
    println!(
        "big data averages: branch {} (paper 18.7%), integer {} (paper 38%),",
        pct(branch),
        pct(integer)
    );
    println!("data-movement share {} (paper ~92%)", pct(movement));

    // Subclass averages the paper quotes in §5.1.
    for (label, group) in bdb_bench::by_category(&reps) {
        let b = mean_of(&group, |p| p.report.mix.branch_ratio());
        let i = mean_of(&group, |p| p.report.mix.integer_ratio());
        println!("  {label}: branch {} integer {}", pct(b), pct(i));
    }
}
