//! Table 4: branch prediction on the two platforms — the Atom D510's
//! two-level adaptive predictor (128-entry BTB, 15-cycle penalty) versus
//! the Xeon E5645's hybrid predictor with a loop counter (8192-entry BTB,
//! 11–13-cycle penalty).
//!
//! The paper measures an average misprediction ratio of 7.8 % on the D510
//! and 2.8 % on the E5645 across the big data workloads.

use bdb_bench::{profile_on, scale_from_args};
use bdb_node::NodeConfig;
use bdb_sim::MachineConfig;
use bdb_wcrt::report::{pct, TextTable};
use bdb_workloads::catalog;

fn main() {
    let scale = scale_from_args();
    let reps = catalog::representatives();
    let node = NodeConfig::default();
    let xeon = profile_on(&reps, scale, &MachineConfig::xeon_e5645(), &node);
    let atom = profile_on(&reps, scale, &MachineConfig::atom_d510(), &node);

    let mut table = TextTable::new(["workload", "D510 mispredict", "E5645 mispredict"]);
    let mut d_sum = 0.0;
    let mut e_sum = 0.0;
    for (x, a) in xeon.iter().zip(&atom) {
        let d = a.report.branch.mispredict_ratio();
        let e = x.report.branch.mispredict_ratio();
        d_sum += d;
        e_sum += e;
        table.row([x.spec.id.clone(), pct(d), pct(e)]);
    }
    println!("Table 4: Branch prediction across the two platforms");
    println!("{}", table.render());
    let n = xeon.len() as f64;
    println!(
        "averages: D510 {} (paper 7.8%), E5645 {} (paper 2.8%)",
        pct(d_sum / n),
        pct(e_sum / n)
    );
    println!("mechanisms: D510 = two-level adaptive, 128-entry BTB, 15-cycle penalty");
    println!(
        "            E5645 = hybrid two-level + loop counter, 8192-entry BTB, 12-cycle penalty"
    );
}
