//! Figure 8: combined (instruction + data) L1 miss ratio versus capacity
//! for the Hadoop workloads and PARSEC.
//!
//! The paper's observation: the combined curves converge after ~1024 KiB —
//! beyond the instruction-footprint gap there is no capacity disparity.

use bdb_bench::{
    group_sweep, hadoop_sweep_defs, parsec_sweep_defs, render_sweep_table, scale_from_args,
};

fn main() {
    let scale = scale_from_args();
    let hadoop = group_sweep("Hadoop", &hadoop_sweep_defs(), scale, |r| &r.unified);
    let parsec = group_sweep("PARSEC", &parsec_sweep_defs(), scale, |r| &r.unified);
    println!("Figure 8: Combined cache miss ratio versus cache size");
    println!("{}", render_sweep_table(&[&hadoop, &parsec]));
    let (_, h_last) = *hadoop.points.last().expect("sweep points");
    let (_, p_last) = *parsec.points.last().expect("sweep points");
    println!(
        "final-gap |Hadoop - PARSEC| at 8192 KiB: {:.4}%",
        (h_last - p_last).abs() * 100.0
    );
    println!("paper: the combined curves are close after 1024 KB");
}
