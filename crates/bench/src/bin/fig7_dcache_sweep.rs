//! Figure 7: data-cache miss ratio versus L1 capacity for the Hadoop
//! workloads and PARSEC.
//!
//! The paper's observation: unlike instructions, the *data* curves of
//! Hadoop and PARSEC are close once the cache exceeds 64 KiB — big data
//! workloads do not have a larger data working set per core.

use bdb_bench::{
    group_sweep, hadoop_sweep_defs, parsec_sweep_defs, render_sweep_table, scale_from_args,
};

fn main() {
    let scale = scale_from_args();
    let hadoop = group_sweep("Hadoop", &hadoop_sweep_defs(), scale, |r| &r.data);
    let parsec = group_sweep("PARSEC", &parsec_sweep_defs(), scale, |r| &r.data);
    println!("Figure 7: Data cache miss ratio versus cache size");
    println!("{}", render_sweep_table(&[&hadoop, &parsec]));
    let diverged = hadoop
        .points
        .iter()
        .zip(&parsec.points)
        .filter(|((kib, _), _)| *kib >= 64)
        .map(|((_, h), (_, p))| (h - p).abs())
        .fold(0.0f64, f64::max);
    println!(
        "max |Hadoop - PARSEC| at >= 64 KiB: {:.4}%",
        diverged * 100.0
    );
    println!("paper: the two data curves are close after 64 KB");
}
