//! Figure 2: the integer-instruction breakdown of the big data workloads —
//! integer address calculation vs floating-point address calculation vs
//! other computation. The paper reports 64 % / 18 % / 18 %.

use bdb_bench::{mean_of, profile_on_xeon, scale_from_args};
use bdb_wcrt::report::{pct, TextTable};
use bdb_wcrt::WorkloadProfile;
use bdb_workloads::catalog;

fn main() {
    let scale = scale_from_args();
    let reps = profile_on_xeon(&catalog::representatives(), scale);
    let mut table = TextTable::new(["workload", "int addr", "fp addr", "other"]);
    for p in &reps {
        let (a, f, o) = p.report.mix.integer_breakdown();
        table.row([p.spec.id.clone(), pct(a), pct(f), pct(o)]);
    }
    println!("Figure 2: Integer instruction breakdown");
    println!("{}", table.render());
    let refs: Vec<&WorkloadProfile> = reps.iter().collect();
    let a = mean_of(&refs, |p| p.report.mix.integer_breakdown().0);
    let f = mean_of(&refs, |p| p.report.mix.integer_breakdown().1);
    let o = mean_of(&refs, |p| p.report.mix.integer_breakdown().2);
    println!(
        "averages: int-addr {} fp-addr {} other {}",
        pct(a),
        pct(f),
        pct(o)
    );
    println!("paper:    int-addr 64.0% fp-addr 18.0% other 18.0%");
}
