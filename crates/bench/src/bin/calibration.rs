//! Calibration dump: every representative, MPI workload, and suite kernel
//! with its headline counters side by side. Not a paper artifact — this is
//! the tool used to verify that the reproduction's *shape* matches the
//! paper before reading any figure binary's output.

use bdb_bench::{profile_on_xeon, scale_from_args, suite_profiles};
use bdb_wcrt::report::{f2, TextTable};
use bdb_workloads::catalog;

fn main() {
    let scale = scale_from_args();
    let mut table = TextTable::new([
        "workload", "instrs", "ipc", "l1i", "l2", "l3", "itlb", "dtlb", "br%", "mis%", "int%",
        "fp%", "ld%", "st%", "cpu%", "iow%", "wio", "class",
    ]);
    let mut rows = Vec::new();
    rows.extend(profile_on_xeon(&catalog::representatives(), scale));
    rows.extend(profile_on_xeon(&catalog::mpi_workloads(), scale));
    for p in &rows {
        table.row([
            p.spec.id.clone(),
            format!("{:.2}M", p.report.instructions as f64 / 1e6),
            f2(p.report.ipc()),
            f2(p.report.l1i_mpki()),
            f2(p.report.l2_mpki()),
            f2(p.report.l3_mpki()),
            format!("{:.3}", p.report.itlb_mpki()),
            f2(p.report.dtlb_mpki()),
            f2(p.report.mix.branch_ratio() * 100.0),
            f2(p.report.branch.mispredict_ratio() * 100.0),
            f2(p.report.mix.integer_ratio() * 100.0),
            f2(p.report.mix.fp_ratio() * 100.0),
            f2(p.report.mix.load_ratio() * 100.0),
            f2(p.report.mix.store_ratio() * 100.0),
            f2(p.system.cpu_utilization),
            f2(p.system.io_wait_ratio),
            f2(p.system.weighted_io_ratio),
            p.system_class.to_string(),
        ]);
    }
    println!("{}", table.render());

    let mut suite_table = TextTable::new([
        "suite", "kernels", "ipc", "l1i", "l2", "l3", "itlb", "dtlb", "br%", "mis%", "int%", "fp%",
    ]);
    for (name, profiles) in suite_profiles(scale) {
        let n = profiles.len() as f64;
        let avg =
            |f: &dyn Fn(&bdb_wcrt::WorkloadProfile) -> f64| profiles.iter().map(f).sum::<f64>() / n;
        suite_table.row([
            name,
            format!("{}", profiles.len()),
            f2(avg(&|p| p.report.ipc())),
            f2(avg(&|p| p.report.l1i_mpki())),
            f2(avg(&|p| p.report.l2_mpki())),
            f2(avg(&|p| p.report.l3_mpki())),
            format!("{:.3}", avg(&|p| p.report.itlb_mpki())),
            f2(avg(&|p| p.report.dtlb_mpki())),
            f2(avg(&|p| p.report.mix.branch_ratio() * 100.0)),
            f2(avg(&|p| p.report.branch.mispredict_ratio() * 100.0)),
            f2(avg(&|p| p.report.mix.integer_ratio() * 100.0)),
            f2(avg(&|p| p.report.mix.fp_ratio() * 100.0)),
        ]);
    }
    println!("{}", suite_table.render());
}
