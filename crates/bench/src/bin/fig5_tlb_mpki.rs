//! Figure 5: ITLB and DTLB misses per kilo-instruction for every workload.
//!
//! Paper observations: big data averages ITLB 0.05 and DTLB 0.9; service
//! and I/O-intensive workloads suffer the most ITLB misses.

use bdb_bench::{
    by_category, by_system_class, mean_of, profile_on_xeon, scale_from_args, suite_profiles,
};
use bdb_wcrt::report::TextTable;
use bdb_wcrt::WorkloadProfile;
use bdb_workloads::catalog;

fn f3(x: f64) -> String {
    format!("{x:.3}")
}

fn main() {
    let scale = scale_from_args();
    let reps = profile_on_xeon(&catalog::representatives(), scale);
    let mpi = profile_on_xeon(&catalog::mpi_workloads(), scale);

    let mut table = TextTable::new(["workload", "ITLB MPKI", "DTLB MPKI"]);
    for p in reps.iter().chain(&mpi) {
        table.row([
            p.spec.id.clone(),
            f3(p.report.itlb_mpki()),
            f3(p.report.dtlb_mpki()),
        ]);
    }
    for (name, profiles) in suite_profiles(scale) {
        let refs: Vec<&WorkloadProfile> = profiles.iter().collect();
        table.row([
            format!("[{name}]"),
            f3(mean_of(&refs, |p| p.report.itlb_mpki())),
            f3(mean_of(&refs, |p| p.report.dtlb_mpki())),
        ]);
    }
    println!("Figure 5: TLB behaviour (misses per kilo-instruction)");
    println!("{}", table.render());

    let refs: Vec<&WorkloadProfile> = reps.iter().collect();
    println!(
        "big data averages: ITLB {} (paper 0.05), DTLB {} (paper 0.9)",
        f3(mean_of(&refs, |p| p.report.itlb_mpki())),
        f3(mean_of(&refs, |p| p.report.dtlb_mpki())),
    );
    for (label, group) in by_category(&reps) {
        println!(
            "  {label}: ITLB {} DTLB {}",
            f3(mean_of(&group, |p| p.report.itlb_mpki())),
            f3(mean_of(&group, |p| p.report.dtlb_mpki())),
        );
    }
    for (label, group) in by_system_class(&reps) {
        println!(
            "  {label}: ITLB {} DTLB {}",
            f3(mean_of(&group, |p| p.report.itlb_mpki())),
            f3(mean_of(&group, |p| p.report.dtlb_mpki())),
        );
    }
}
