//! Figure 3: IPC of every workload on the simulated Xeon E5645.
//!
//! Paper observations: big data average ≈ 1.28 with significant
//! disparities across subclasses (service lowest — H-Read 0.8 — and some
//! interactive queries highest, up to 1.7); MPI implementations average
//! ≈ 1.4 vs ≈ 1.16 for the managed stacks (§5.5).

use bdb_bench::{
    by_category, by_system_class, mean_of, profile_on_xeon, scale_from_args, suite_profiles,
};
use bdb_wcrt::report::{f2, TextTable};
use bdb_wcrt::WorkloadProfile;
use bdb_workloads::catalog;

fn main() {
    let scale = scale_from_args();
    let reps = profile_on_xeon(&catalog::representatives(), scale);
    let mpi = profile_on_xeon(&catalog::mpi_workloads(), scale);

    let mut table = TextTable::new(["workload", "IPC"]);
    for p in reps.iter().chain(&mpi) {
        table.row([p.spec.id.clone(), f2(p.report.ipc())]);
    }
    for (name, profiles) in suite_profiles(scale) {
        let refs: Vec<&WorkloadProfile> = profiles.iter().collect();
        table.row([format!("[{name}]"), f2(mean_of(&refs, |p| p.report.ipc()))]);
    }
    println!("Figure 3: IPC on the simulated Xeon E5645");
    println!("{}", table.render());

    let rep_refs: Vec<&WorkloadProfile> = reps.iter().collect();
    let mpi_refs: Vec<&WorkloadProfile> = mpi.iter().collect();
    println!(
        "big data average IPC {} (paper 1.28); MPI average {} (paper 1.4)",
        f2(mean_of(&rep_refs, |p| p.report.ipc())),
        f2(mean_of(&mpi_refs, |p| p.report.ipc())),
    );
    for (label, group) in by_category(&reps) {
        println!("  {label}: {}", f2(mean_of(&group, |p| p.report.ipc())));
    }
    for (label, group) in by_system_class(&reps) {
        println!("  {label}: {}", f2(mean_of(&group, |p| p.report.ipc())));
    }
}
