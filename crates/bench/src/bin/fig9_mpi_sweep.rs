//! Figure 9: instruction-cache miss ratio versus capacity with the MPI
//! implementations added (paper §5.5).
//!
//! The paper's observation: the MPI curve tracks PARSEC, far below Hadoop —
//! thin stacks have traditional-benchmark instruction footprints.

use bdb_bench::{
    group_sweep, hadoop_sweep_defs, mpi_sweep_defs, parsec_sweep_defs, render_sweep_table,
    scale_from_args,
};

fn main() {
    let scale = scale_from_args();
    let hadoop = group_sweep("Hadoop", &hadoop_sweep_defs(), scale, |r| &r.instruction);
    let parsec = group_sweep("PARSEC", &parsec_sweep_defs(), scale, |r| &r.instruction);
    let mpi = group_sweep("MPI", &mpi_sweep_defs(), scale, |r| &r.instruction);
    println!("Figure 9: Instruction cache miss ratio versus cache size (with MPI)");
    println!("{}", render_sweep_table(&[&hadoop, &parsec, &mpi]));
    println!(
        "footprints: Hadoop ~{} KiB, PARSEC ~{} KiB, MPI ~{} KiB",
        hadoop.footprint_kib(0.0008).unwrap_or(0),
        parsec.footprint_kib(0.0008).unwrap_or(0),
        mpi.footprint_kib(0.0008).unwrap_or(0),
    );
    println!("paper: MPI tracks PARSEC; both far below Hadoop");
}
