//! One-shot validation harness: checks every headline *shape claim* of the
//! paper against a fresh measurement run and prints PASS/FAIL per claim.
//! This is the user-facing version of `tests/paper_claims.rs`, runnable at
//! any scale.

use bdb_bench::{mean_of, profile_on, profile_on_xeon, scale_from_args};
use bdb_node::NodeConfig;
use bdb_sim::MachineConfig;
use bdb_wcrt::WorkloadProfile;
use bdb_workloads::{catalog, suites::Suite};

struct Check {
    name: &'static str,
    paper: String,
    measured: String,
    pass: bool,
}

fn main() {
    let scale = scale_from_args();
    let mut checks: Vec<Check> = Vec::new();

    let reps = profile_on_xeon(&catalog::representatives(), scale);
    let mpi = profile_on_xeon(&catalog::mpi_workloads(), scale);
    let rep_refs: Vec<&WorkloadProfile> = reps.iter().collect();
    let mpi_refs: Vec<&WorkloadProfile> = mpi.iter().collect();
    let by_id = |id: &str| {
        reps.iter()
            .find(|p| p.spec.id == id)
            .expect("representative")
    };
    let mpi_by_id = |id: &str| mpi.iter().find(|p| p.spec.id == id).expect("MPI workload");

    // O1: data movement dominated, branch-heavy.
    let movement = mean_of(&rep_refs, |p| p.report.mix.data_movement_ratio());
    checks.push(Check {
        name: "O1: data-movement share",
        paper: "~92%".into(),
        measured: format!("{:.1}%", movement * 100.0),
        pass: movement > 0.75,
    });
    let branch = mean_of(&rep_refs, |p| p.report.mix.branch_ratio());
    let hpcc = profile_on_xeon(&catalog::suite_workloads(Suite::Hpcc), scale);
    let hpcc_branch = mean_of(&hpcc.iter().collect::<Vec<_>>(), |p| {
        p.report.mix.branch_ratio()
    });
    checks.push(Check {
        name: "O1: big data branchier than HPCC",
        paper: "18.7% vs ~10%".into(),
        measured: format!("{:.1}% vs {:.1}%", branch * 100.0, hpcc_branch * 100.0),
        pass: branch > hpcc_branch,
    });

    // O2: ILP disparities; service lowest.
    let service_ipc = by_id("H-Read").report.ipc();
    let min_other = reps
        .iter()
        .filter(|p| p.spec.id != "H-Read")
        .map(|p| p.report.ipc())
        .fold(f64::INFINITY, f64::min);
    let max_ipc = reps.iter().map(|p| p.report.ipc()).fold(0.0f64, f64::max);
    checks.push(Check {
        name: "O2: service IPC lowest, wide disparities",
        paper: "0.8 lowest .. 1.7 highest".into(),
        measured: format!("{service_ipc:.2} lowest? (others >= {min_other:.2}), max {max_ipc:.2}"),
        pass: service_ipc <= min_other && max_ipc / service_ipc.max(1e-9) > 2.0,
    });

    // O3: front-end stalls; service worst L1I; Hadoop footprint >> PARSEC.
    let service_l1i = by_id("H-Read").report.l1i_mpki();
    let others_max = reps
        .iter()
        .filter(|p| p.spec.id != "H-Read")
        .map(|p| p.report.l1i_mpki())
        .fold(0.0f64, f64::max);
    checks.push(Check {
        name: "O3: service worst L1I MPKI",
        paper: "51 (next ~17)".into(),
        measured: format!("{service_l1i:.1} vs next {others_max:.1}"),
        pass: service_l1i > others_max,
    });

    // O4: stack ladder.
    let (m, h, s) = (
        mpi_by_id("M-WordCount").report.l1i_mpki(),
        by_id("H-WordCount").report.l1i_mpki(),
        by_id("S-WordCount").report.l1i_mpki(),
    );
    checks.push(Check {
        name: "O4: WordCount L1I ladder MPI<Hadoop<Spark",
        paper: "2 / 7 / 17".into(),
        measured: format!("{m:.1} / {h:.1} / {s:.1}"),
        pass: m < h && h < s && s / m.max(1e-9) > 8.0,
    });
    let mpi_ipc = mean_of(&mpi_refs, |p| p.report.ipc());
    let managed_ipc = mean_of(&rep_refs, |p| p.report.ipc());
    checks.push(Check {
        name: "O4: MPI IPC above managed stacks",
        paper: "1.4 vs 1.16".into(),
        measured: format!("{mpi_ipc:.2} vs {managed_ipc:.2}"),
        pass: mpi_ipc > managed_ipc,
    });

    // Table 4: predictor gap.
    let sample: Vec<_> = catalog::representatives().into_iter().take(6).collect();
    let e = profile_on(
        &sample,
        scale,
        &MachineConfig::xeon_e5645(),
        &NodeConfig::default(),
    );
    let d = profile_on(
        &sample,
        scale,
        &MachineConfig::atom_d510(),
        &NodeConfig::default(),
    );
    let e_avg = mean_of(&e.iter().collect::<Vec<_>>(), |p| {
        p.report.branch.mispredict_ratio()
    });
    let d_avg = mean_of(&d.iter().collect::<Vec<_>>(), |p| {
        p.report.branch.mispredict_ratio()
    });
    checks.push(Check {
        name: "Table 4: D510 mispredicts >> E5645",
        paper: "7.8% vs 2.8% (2.8x)".into(),
        measured: format!(
            "{:.1}% vs {:.1}% ({:.1}x)",
            d_avg * 100.0,
            e_avg * 100.0,
            d_avg / e_avg.max(1e-9)
        ),
        pass: d_avg > 1.5 * e_avg,
    });

    // FP waste implication.
    let gflops = mean_of(&rep_refs, |p| {
        p.report.mix.fp as f64 / p.report.cycles * 2.4
    });
    checks.push(Check {
        name: "5.1 implication: FP units idle",
        paper: "~0.1 of 57.6 GFLOPS".into(),
        measured: format!("{gflops:.3} GFLOPS"),
        pass: gflops < 2.0,
    });

    // Report.
    let mut failed = 0;
    println!(
        "paper-claim validation at scale factor {}\n",
        scale.factor()
    );
    for c in &checks {
        let status = if c.pass { "PASS" } else { "FAIL" };
        if !c.pass {
            failed += 1;
        }
        println!(
            "[{status}] {:44} paper: {:24} measured: {}",
            c.name, c.paper, c.measured
        );
    }
    println!(
        "\n{} of {} claims hold",
        checks.len() - failed,
        checks.len()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
