//! Extension experiment (the paper's §6 future work): architecture-
//! independent characterization of the representative workloads, and a
//! check that the clustering the reduction produces is not an artifact of
//! the Xeon E5645 — the machine-dependent and machine-independent
//! partitions should largely agree (Rand index).

use bdb_bench::scale_from_args;
use bdb_wcrt::archindep::{characterize, compare_partitions, rand_index, ARCHINDEP_NAMES};
use bdb_wcrt::report::{f2, TextTable};
use bdb_workloads::catalog;

fn main() {
    let scale = scale_from_args();
    let reps = catalog::representatives();

    let mut table = TextTable::new([
        "workload",
        "branch taken",
        "instr fp (lines)",
        "data fp (lines)",
        "instr p90 (log2)",
        "data p90 (log2)",
    ]);
    for def in &reps {
        let v = characterize(def, scale);
        table.row([
            def.spec.id.clone(),
            f2(v.get("branch_taken_rate").expect("metric")),
            format!(
                "{:.0}",
                v.get("instr_footprint_lines").expect("metric").exp2()
            ),
            format!(
                "{:.0}",
                v.get("data_footprint_lines").expect("metric").exp2()
            ),
            f2(v.get("instr_reuse_p90_log2").expect("metric")),
            f2(v.get("data_reuse_p90_log2").expect("metric")),
        ]);
    }
    println!(
        "Architecture-independent characterization ({} metrics)",
        ARCHINDEP_NAMES.len()
    );
    println!("{}", table.render());

    println!("cross-checking the subsetting against machine-independent metrics...");
    let (dep, indep) = compare_partitions(&reps, scale, 6, 2015);
    let agreement = rand_index(&dep, &indep);
    println!("machine-dependent vs machine-independent partitions (k=6):");
    println!("  dependent:   {dep:?}");
    println!("  independent: {indep:?}");
    println!("  Rand index:  {agreement:.3} (1.0 = identical groupings)");
}
