//! The paper's §5.1 implication, quantified: "the E5645 processors can
//! achieve 57.6 GFLOPS in theory, but the average floating point
//! performance of big data workloads is about 0.1 GFLOPS … incurring a
//! serious waste of floating point capacity and hence die size."
//!
//! Achieved GFLOPS = fp-ops / cycles x clock (per core, single-threaded).

use bdb_bench::{profile_on_xeon, scale_from_args, suite_profiles};
use bdb_wcrt::report::TextTable;
use bdb_workloads::catalog;

const CLOCK_GHZ: f64 = 2.4;
/// Theoretical per-socket peak the paper quotes for the E5645.
const PEAK_GFLOPS: f64 = 57.6;

fn main() {
    let scale = scale_from_args();
    let mut table = TextTable::new(["workload", "achieved GFLOPS", "% of 57.6 peak"]);
    let mut bigdata_sum = 0.0;
    let reps = profile_on_xeon(&catalog::representatives(), scale);
    for p in &reps {
        let flops = p.report.mix.fp as f64 / p.report.cycles * CLOCK_GHZ;
        bigdata_sum += flops;
        table.row([
            p.spec.id.clone(),
            format!("{flops:.3}"),
            format!("{:.2}%", flops / PEAK_GFLOPS * 100.0),
        ]);
    }
    for (name, profiles) in suite_profiles(scale) {
        let flops: f64 = profiles
            .iter()
            .map(|p| p.report.mix.fp as f64 / p.report.cycles * CLOCK_GHZ)
            .sum::<f64>()
            / profiles.len() as f64;
        table.row([
            format!("[{name}]"),
            format!("{flops:.3}"),
            format!("{:.2}%", flops / PEAK_GFLOPS * 100.0),
        ]);
    }
    println!("Floating-point capacity utilization (single core at {CLOCK_GHZ} GHz)");
    println!("{}", table.render());
    let avg = bigdata_sum / reps.len() as f64;
    println!(
        "big data average: {avg:.3} GFLOPS = {:.2}% of the paper's 57.6 GFLOPS peak",
        avg / PEAK_GFLOPS * 100.0
    );
    println!("paper: ~0.1 GFLOPS achieved — floating-point units are essentially idle");
}
