//! CI perf smoke: proves the fused (trace-once/replay-many) sweep is
//! both *correct* (bit-identical to the per-point reference) and
//! *actually faster* at the CLI-selected scale, and that multi-thread
//! pools are honest about their width.
//!
//! Exits non-zero with a loud message on any violation, so the CI
//! `perf-smoke` job fails instead of shipping a silent regression:
//!
//! * a worker pool that silently falls back to serial,
//! * a fused sweep whose bits drift from the per-point sweep,
//! * a fused speedup below 2× (the default-scale bench demands ≥ 5×;
//!   the smoke bound is looser because tiny inputs amortise less).

use bdb_engine::{Engine, EngineConfig, SweepMode};
use bdb_sim::{sweep_per_point, SweepFamily, SweepResult, PAPER_SWEEP_KIB};
use bdb_workloads::{Scale, WorkloadDef};
use std::time::Instant;

/// Smoke threshold: fused must beat per-point by at least this factor
/// even at tiny scale. The default-scale bench (`BENCH_engine.json`)
/// records the real margin.
const MIN_FUSED_SPEEDUP: f64 = 2.0;

fn fail(msg: &str) -> ! {
    eprintln!("perf_smoke: FAIL: {msg}");
    std::process::exit(1);
}

/// Builds an engine and verifies the pool width it reports matches the
/// width we asked for — the guard against silent serial fallback.
fn honest_engine(threads: usize, mode: SweepMode) -> Engine {
    let engine = Engine::new(
        EngineConfig::default()
            .threads(threads)
            .without_memory_cache()
            .sweep_mode(mode),
    );
    let got = engine.worker_threads();
    if got != threads {
        fail(&format!(
            "requested a {threads}-thread pool but worker_threads() reports {got} \
             — the pool silently fell back to a different width"
        ));
    }
    engine
}

fn run_sweeps(engine: &Engine, defs: &[WorkloadDef], scale: Scale) -> Vec<SweepResult> {
    defs.iter()
        .map(|def| {
            engine.sweep(&def.spec.id, &PAPER_SWEEP_KIB, |sink| {
                let _ = def.run(sink, scale);
            })
        })
        .collect()
}

fn assert_bit_identical(reference: &[SweepResult], candidate: &[SweepResult], what: &str) {
    if reference == candidate {
        return;
    }
    fail(&format!(
        "{what} is not bit-identical to the per-point reference sweep"
    ));
}

fn main() {
    let scale = bdb_bench::scale_from_args();
    let defs = bdb_bench::hadoop_sweep_defs();
    if defs.is_empty() {
        fail("hadoop sweep workload set is empty");
    }

    // Thread-honesty probe for every width CI cares about.
    for threads in [1usize, 2, 4] {
        let _ = honest_engine(threads, SweepMode::Fused);
    }

    // Reference: the raw per-point oracle — generator re-run on a full
    // machine per capacity, no trace replay anywhere.
    let family = SweepFamily::atom();
    let start = Instant::now();
    let reference: Vec<SweepResult> = defs
        .iter()
        .map(|def| {
            sweep_per_point(&family, &def.spec.id, &PAPER_SWEEP_KIB, |sink| {
                let _ = def.run(sink, scale);
            })
        })
        .collect();
    let per_point_s = start.elapsed().as_secs_f64();

    // The engine's per-point mode (trace once into a pooled buffer, full
    // machine replayed per capacity) must reproduce the oracle's bits.
    let replay_pp = run_sweeps(&honest_engine(1, SweepMode::PerPoint), &defs, scale);
    assert_bit_identical(&reference, &replay_pp, "engine per-point (replay) sweep");

    let start = Instant::now();
    let fused = run_sweeps(&honest_engine(1, SweepMode::Fused), &defs, scale);
    let fused_s = start.elapsed().as_secs_f64();
    assert_bit_identical(&reference, &fused, "serial fused sweep");

    // Multi-thread fused runs must also reproduce the reference bits.
    for threads in [2usize, 4] {
        let sweeps = run_sweeps(&honest_engine(threads, SweepMode::Fused), &defs, scale);
        assert_bit_identical(
            &reference,
            &sweeps,
            &format!("{threads}-thread fused sweep"),
        );
    }

    let speedup = per_point_s / fused_s;
    println!(
        "perf_smoke: {} workloads x {} capacities: per-point {per_point_s:.2}s, \
         fused {fused_s:.2}s ({speedup:.1}x)",
        defs.len(),
        PAPER_SWEEP_KIB.len()
    );
    if speedup < MIN_FUSED_SPEEDUP {
        fail(&format!(
            "fused speedup {speedup:.2}x is below the {MIN_FUSED_SPEEDUP:.1}x smoke floor"
        ));
    }
    println!("perf_smoke: OK");
}
