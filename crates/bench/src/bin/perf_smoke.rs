//! CI perf smoke: proves the fused (trace-once/replay-many) sweep is
//! both *correct* (bit-identical to the per-point reference) and
//! *actually faster* at the CLI-selected scale, and that multi-thread
//! pools are honest about their width.
//!
//! Exits non-zero with a loud message on any violation, so the CI
//! `perf-smoke` job fails instead of shipping a silent regression:
//!
//! * a worker pool that silently falls back to serial,
//! * a fused sweep whose bits drift from the per-point sweep,
//! * a fused speedup below 2× (the default-scale bench demands ≥ 5×;
//!   the smoke bound is looser because tiny inputs amortise less),
//! * a point-parallel replay (`BDB_POINT_THREADS`) whose width, serial
//!   threshold, or bits drift from the contract,
//! * a scaled batch sweep whose 4-thread run fails the 1.5× floor on a
//!   runner that actually has 4 hardware threads.

use bdb_engine::{Engine, EngineConfig, SweepMode, POINT_PARALLEL_MIN_WORK};
use bdb_sim::{sweep_per_point, SweepFamily, SweepResult, PAPER_SWEEP_KIB};
use bdb_workloads::{Scale, WorkloadDef};
use std::time::Instant;

/// Smoke threshold: fused must beat per-point by at least this factor
/// even at tiny scale. The default-scale bench (`BENCH_engine.json`)
/// records the real margin.
const MIN_FUSED_SPEEDUP: f64 = 2.0;

/// Thread-scaling floor for the fused batch sweep at the scaled
/// profile: 4 workers must beat 1 by at least this factor. Only armed
/// on runners with at least four hardware threads — a single-core box
/// cannot honestly clear any floor above ~1.0x.
const MIN_SCALED_4T_SPEEDUP: f64 = 1.5;

fn fail(msg: &str) -> ! {
    eprintln!("perf_smoke: FAIL: {msg}");
    std::process::exit(1);
}

/// Builds an engine and verifies the pool width it reports matches the
/// width we asked for — the guard against silent serial fallback.
fn honest_engine(threads: usize, mode: SweepMode) -> Engine {
    let engine = Engine::new(
        EngineConfig::default()
            .threads(threads)
            .without_memory_cache()
            .sweep_mode(mode),
    );
    let got = engine.worker_threads();
    if got != threads {
        fail(&format!(
            "requested a {threads}-thread pool but worker_threads() reports {got} \
             — the pool silently fell back to a different width"
        ));
    }
    engine
}

fn run_sweeps(engine: &Engine, defs: &[WorkloadDef], scale: Scale) -> Vec<SweepResult> {
    defs.iter()
        .map(|def| {
            engine.sweep(&def.spec.id, &PAPER_SWEEP_KIB, |sink| {
                let _ = def.run(sink, scale);
            })
        })
        .collect()
}

fn assert_bit_identical(reference: &[SweepResult], candidate: &[SweepResult], what: &str) {
    if reference == candidate {
        return;
    }
    fail(&format!(
        "{what} is not bit-identical to the per-point reference sweep"
    ));
}

fn main() {
    let scale = bdb_bench::scale_from_args();
    let defs = bdb_bench::hadoop_sweep_defs();
    if defs.is_empty() {
        fail("hadoop sweep workload set is empty");
    }

    // Thread-honesty probe for every width CI cares about.
    for threads in [1usize, 2, 4] {
        let _ = honest_engine(threads, SweepMode::Fused);
    }

    // Reference: the raw per-point oracle — generator re-run on a full
    // machine per capacity, no trace replay anywhere.
    let family = SweepFamily::atom();
    let start = Instant::now();
    let reference: Vec<SweepResult> = defs
        .iter()
        .map(|def| {
            sweep_per_point(&family, &def.spec.id, &PAPER_SWEEP_KIB, |sink| {
                let _ = def.run(sink, scale);
            })
        })
        .collect();
    let per_point_s = start.elapsed().as_secs_f64();

    // The engine's per-point mode (trace once into a pooled buffer, full
    // machine replayed per capacity) must reproduce the oracle's bits.
    let replay_pp = run_sweeps(&honest_engine(1, SweepMode::PerPoint), &defs, scale);
    assert_bit_identical(&reference, &replay_pp, "engine per-point (replay) sweep");

    let start = Instant::now();
    let fused = run_sweeps(&honest_engine(1, SweepMode::Fused), &defs, scale);
    let fused_s = start.elapsed().as_secs_f64();
    assert_bit_identical(&reference, &fused, "serial fused sweep");

    // Multi-thread fused runs must also reproduce the reference bits.
    for threads in [2usize, 4] {
        let sweeps = run_sweeps(&honest_engine(threads, SweepMode::Fused), &defs, scale);
        assert_bit_identical(
            &reference,
            &sweeps,
            &format!("{threads}-thread fused sweep"),
        );
    }

    let speedup = per_point_s / fused_s;
    println!(
        "perf_smoke: {} workloads x {} capacities: per-point {per_point_s:.2}s, \
         fused {fused_s:.2}s ({speedup:.1}x)",
        defs.len(),
        PAPER_SWEEP_KIB.len()
    );
    if speedup < MIN_FUSED_SPEEDUP {
        fail(&format!(
            "fused speedup {speedup:.2}x is below the {MIN_FUSED_SPEEDUP:.1}x smoke floor"
        ));
    }

    point_parallel_smoke(&defs, scale, &reference);
    thread_scaling_smoke(&defs, scale);
    println!("perf_smoke: OK");
}

/// The intra-workload point-parallel path: width honesty, the
/// small-sweep serial threshold, and bit-identity at explicit
/// `BDB_POINT_THREADS` widths on both sides of that threshold.
fn point_parallel_smoke(defs: &[WorkloadDef], scale: Scale, reference: &[SweepResult]) {
    // Honesty: the engine must report the point width it was given, and
    // the auto width must demote small sweeps to serial while fanning
    // large ones out (the threshold is events x points).
    let auto = honest_engine(4, SweepMode::Fused);
    if auto.point_threads() != 4 {
        fail(&format!(
            "a 4-thread pool must derive a 4-wide auto point fan-out, got {}",
            auto.point_threads()
        ));
    }
    let points = PAPER_SWEEP_KIB.len();
    if auto.point_fanout(POINT_PARALLEL_MIN_WORK / points as u64 - 1, points) != 1 {
        fail("sweeps below the work threshold must replay serially (the tiny-scale inversion)");
    }
    if auto.point_fanout(POINT_PARALLEL_MIN_WORK / points as u64 + 1, points) != 4 {
        fail("sweeps above the work threshold must fan out to the full point width");
    }
    for point_threads in [2usize, 4] {
        let engine = Engine::new(
            EngineConfig::default()
                .threads(1)
                .point_threads(point_threads)
                .without_memory_cache(),
        );
        if engine.point_threads() != point_threads {
            fail(&format!(
                "requested {point_threads} point threads but the engine reports {}",
                engine.point_threads()
            ));
        }
        let sweeps = run_sweeps(&engine, defs, scale);
        assert_bit_identical(
            reference,
            &sweeps,
            &format!("{point_threads}-point-thread fused sweep"),
        );
    }
}

/// The fused batch sweep's thread-scaling floor at the scaled profile
/// (4x the CLI scale): `sweep_all` at 4 workers must beat 1 worker by
/// [`MIN_SCALED_4T_SPEEDUP`] — armed only where 4 hardware threads
/// exist, since a single-core runner's honest ratio is ~1.0x. Bits are
/// compared unconditionally.
fn thread_scaling_smoke(defs: &[WorkloadDef], scale: Scale) {
    let scaled = Scale::custom(scale.factor() * 4.0);
    let jobs: Vec<(String, _)> = defs
        .iter()
        .map(|def| {
            let job = move |sink: &mut dyn bdb_trace::TraceSink| {
                let _ = def.run(sink, scaled);
            };
            (def.spec.id.clone(), job)
        })
        .collect();
    let start = Instant::now();
    let serial = honest_engine(1, SweepMode::Fused).sweep_all(&jobs, &PAPER_SWEEP_KIB);
    let serial_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let wide = honest_engine(4, SweepMode::Fused).sweep_all(&jobs, &PAPER_SWEEP_KIB);
    let wide_s = start.elapsed().as_secs_f64();
    assert_bit_identical(&serial, &wide, "4-thread scaled batch sweep");
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let scaling = serial_s / wide_s;
    println!(
        "perf_smoke: scaled batch sweep 1t {serial_s:.2}s, 4t {wide_s:.2}s \
         ({scaling:.2}x on {cores} hardware threads)"
    );
    if cores >= 4 && scaling < MIN_SCALED_4T_SPEEDUP {
        fail(&format!(
            "scaled 4t/1t sweep speedup {scaling:.2}x is below the \
             {MIN_SCALED_4T_SPEEDUP:.1}x floor"
        ));
    }
}
