//! Extension experiment: where does the paper's k = 17 come from? Sweep K
//! over the full 77-workload catalog's PCA space and report the inertia
//! elbow and BIC minimum.

use bdb_bench::{profile_on_xeon, scale_from_args};
use bdb_wcrt::kselect::{bic, elbow, inertia_sweep};
use bdb_wcrt::pca::Pca;
use bdb_wcrt::report::TextTable;
use bdb_wcrt::stats::zscore;
use bdb_workloads::catalog;

fn main() {
    let scale = scale_from_args();
    eprintln!("profiling the full catalog...");
    let profiles = profile_on_xeon(&catalog::full_catalog(), scale);
    let mut matrix: Vec<Vec<f64>> = profiles
        .iter()
        .map(|p| p.metrics.values().to_vec())
        .collect();
    zscore(&mut matrix);
    let pca = Pca::fit(&matrix, 0.9);
    let projected = pca.transform(&matrix);

    let k_max = 30;
    let inertias = inertia_sweep(&projected, k_max, 2015);
    let mut table = TextTable::new(["k", "inertia", "BIC"]);
    for (i, inertia) in inertias.iter().enumerate() {
        let k = i + 1;
        table.row([
            k.to_string(),
            format!("{inertia:.1}"),
            format!("{:.0}", bic(&projected, k, 2015)),
        ]);
    }
    println!(
        "K selection over the 77-workload catalog (PCA dims = {})",
        pca.dims()
    );
    println!("{}", table.render());
    let knee = elbow(&inertias);
    let best_bic = (1..=k_max)
        .min_by(|&a, &b| {
            bic(&projected, a, 2015)
                .partial_cmp(&bic(&projected, b, 2015))
                .expect("finite")
        })
        .expect("k_max >= 1");
    println!("inertia elbow at k = {knee}; BIC minimum at k = {best_bic}; paper uses k = 17");
}
