//! Table 3: node configuration of the simulated measurement platform.

use bdb_sim::MachineConfig;
use bdb_wcrt::report::TextTable;

fn main() {
    let m = MachineConfig::xeon_e5645();
    let mut table = TextTable::new(["component", "configuration"]);
    let kib = |b: u64| format!("{} KB", b / 1024);
    table.row(["CPU type".into(), m.name.clone()]);
    table.row([
        "Cores".to_owned(),
        "6 cores @ 2.40 GHz (node model)".to_owned(),
    ]);
    table.row([
        "L1 DCache".into(),
        format!("{} {}-way", kib(m.l1d.size_bytes), m.l1d.assoc),
    ]);
    table.row([
        "L1 ICache".into(),
        format!("{} {}-way", kib(m.l1i.size_bytes), m.l1i.assoc),
    ]);
    table.row([
        "L2 Cache".into(),
        format!("{} {}-way", kib(m.l2.size_bytes), m.l2.assoc),
    ]);
    let l3 = m.l3.expect("Xeon has an L3");
    table.row([
        "L3 Cache".into(),
        format!("{} MB {}-way", l3.size_bytes >> 20, l3.assoc),
    ]);
    table.row([
        "ITLB/DTLB/STLB".into(),
        format!(
            "{}/{}/{} entries",
            m.itlb.entries, m.dtlb.entries, m.stlb.entries
        ),
    ]);
    table.row([
        "Branch unit".into(),
        format!("{:?} (8192-entry BTB, loop counter)", m.predictor),
    ]);
    println!("Table 3: Node configuration details of Xeon E5645");
    println!("{}", table.render());
}
