//! §5.5 — the software-stack study: the same six algorithms implemented on
//! MPI, Hadoop, and Spark, side by side.
//!
//! Paper headline (observation O4): the L1I MPKI of WordCount is 2 on MPI,
//! 7 on Hadoop, and 17 on Spark — an order of magnitude between thin and
//! deep stacks — with matching IPC (1.8 / 1.1 / 0.9) and L2/L3 gaps.

use bdb_bench::{profile_on_xeon, scale_from_args};
use bdb_wcrt::report::{f2, TextTable};
use bdb_workloads::catalog;

fn main() {
    let scale = scale_from_args();
    let ids = [
        ("WordCount", ["M-WordCount", "H-WordCount", "S-WordCount"]),
        ("Sort", ["M-Sort", "H-Sort", "S-Sort"]),
        ("Grep", ["M-Grep", "H-Grep", "S-Grep"]),
        ("Kmeans", ["M-Kmeans", "H-Kmeans", "S-Kmeans"]),
        ("PageRank", ["M-PageRank", "H-PageRank", "S-PageRank"]),
        (
            "NaiveBayes",
            ["M-NaiveBayes", "H-NaiveBayes", "S-NaiveBayes"],
        ),
    ];
    let mut defs = catalog::full_catalog();
    defs.extend(catalog::mpi_workloads());

    let mut table = TextTable::new([
        "algorithm",
        "stack",
        "IPC",
        "L1I MPKI",
        "L2 MPKI",
        "L3 MPKI",
    ]);
    let mut sums = [(0.0f64, 0.0f64); 3]; // (ipc, l1i) per stack column
    for (alg, variants) in ids {
        for (col, id) in variants.iter().enumerate() {
            let def = defs
                .iter()
                .find(|w| w.spec.id == *id)
                .unwrap_or_else(|| panic!("{id}"));
            let p = profile_on_xeon(std::slice::from_ref(def), scale).remove(0);
            sums[col].0 += p.report.ipc();
            sums[col].1 += p.report.l1i_mpki();
            table.row([
                alg.to_owned(),
                def.spec.stack.to_string(),
                f2(p.report.ipc()),
                f2(p.report.l1i_mpki()),
                f2(p.report.l2_mpki()),
                f2(p.report.l3_mpki()),
            ]);
        }
    }
    println!("Software-stack impact (paper section 5.5)");
    println!("{}", table.render());
    println!(
        "average IPC: MPI {} Hadoop {} Spark {} (paper: MPI 1.4 vs others 1.16)",
        f2(sums[0].0 / 6.0),
        f2(sums[1].0 / 6.0),
        f2(sums[2].0 / 6.0)
    );
    println!(
        "average L1I MPKI: MPI {} Hadoop {} Spark {} (paper: MPI 3.4 vs Hadoop/Spark 12.6)",
        f2(sums[0].1 / 6.0),
        f2(sums[1].1 / 6.0),
        f2(sums[2].1 / 6.0)
    );
}
