//! Figure 4: L1I / L2 / L3 misses per kilo-instruction for every workload.
//!
//! Paper observations: big data averages L1I 15, L2 11, L3 1.2; service
//! workloads worst on the front end (H-Read 51); MPI implementations an
//! order of magnitude lower L1I than their Hadoop/Spark twins (O4).

use bdb_bench::{
    by_category, by_system_class, mean_of, profile_on_xeon, scale_from_args, suite_profiles,
};
use bdb_wcrt::report::{f2, TextTable};
use bdb_wcrt::WorkloadProfile;
use bdb_workloads::catalog;

fn main() {
    let scale = scale_from_args();
    let reps = profile_on_xeon(&catalog::representatives(), scale);
    let mpi = profile_on_xeon(&catalog::mpi_workloads(), scale);

    let mut table = TextTable::new(["workload", "L1I MPKI", "L2 MPKI", "L3 MPKI"]);
    for p in reps.iter().chain(&mpi) {
        table.row([
            p.spec.id.clone(),
            f2(p.report.l1i_mpki()),
            f2(p.report.l2_mpki()),
            f2(p.report.l3_mpki()),
        ]);
    }
    for (name, profiles) in suite_profiles(scale) {
        let refs: Vec<&WorkloadProfile> = profiles.iter().collect();
        table.row([
            format!("[{name}]"),
            f2(mean_of(&refs, |p| p.report.l1i_mpki())),
            f2(mean_of(&refs, |p| p.report.l2_mpki())),
            f2(mean_of(&refs, |p| p.report.l3_mpki())),
        ]);
    }
    println!("Figure 4: Cache behaviour (misses per kilo-instruction)");
    println!("{}", table.render());

    let refs: Vec<&WorkloadProfile> = reps.iter().collect();
    println!(
        "big data averages: L1I {} (paper 15), L2 {} (paper 11), L3 {} (paper 1.2)",
        f2(mean_of(&refs, |p| p.report.l1i_mpki())),
        f2(mean_of(&refs, |p| p.report.l2_mpki())),
        f2(mean_of(&refs, |p| p.report.l3_mpki())),
    );
    for (label, group) in by_category(&reps) {
        println!(
            "  {label}: L1I {} L2 {} L3 {}",
            f2(mean_of(&group, |p| p.report.l1i_mpki())),
            f2(mean_of(&group, |p| p.report.l2_mpki())),
            f2(mean_of(&group, |p| p.report.l3_mpki())),
        );
    }
    for (label, group) in by_system_class(&reps) {
        println!(
            "  {label}: L1I {} L2 {} L3 {}",
            f2(mean_of(&group, |p| p.report.l1i_mpki())),
            f2(mean_of(&group, |p| p.report.l2_mpki())),
            f2(mean_of(&group, |p| p.report.l3_mpki())),
        );
    }
}
