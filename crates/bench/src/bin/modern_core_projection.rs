//! Extension experiment: the paper's implications section contrasts wimpy
//! cores (Atom, Moonshot), the measured E5645, and the then-new "Dual Xeon
//! E5 2697". This binary runs the representatives on all three simulated
//! platforms to ask: *how much of the big data stall problem does a newer
//! brawny core buy back, and how much is left on the table for wimpy
//! cores?* — the technology-roadmap question §5.2 raises.

use bdb_bench::{profile_on, scale_from_args};
use bdb_node::NodeConfig;
use bdb_sim::MachineConfig;
use bdb_wcrt::report::{f2, TextTable};
use bdb_workloads::catalog;

fn main() {
    let scale = scale_from_args();
    let reps = catalog::representatives();
    let node = NodeConfig::default();
    let atom = profile_on(&reps, scale, &MachineConfig::atom_d510(), &node);
    let e5645 = profile_on(&reps, scale, &MachineConfig::xeon_e5645(), &node);
    let e2697 = profile_on(&reps, scale, &MachineConfig::xeon_e5_2697(), &node);

    let mut table = TextTable::new([
        "workload",
        "Atom IPC",
        "E5645 IPC",
        "E5-2697 IPC",
        "E5645 L1I",
        "E5-2697 L1I",
    ]);
    let mut sums = [0.0f64; 3];
    for ((a, b), c) in atom.iter().zip(&e5645).zip(&e2697) {
        sums[0] += a.report.ipc();
        sums[1] += b.report.ipc();
        sums[2] += c.report.ipc();
        table.row([
            a.spec.id.clone(),
            f2(a.report.ipc()),
            f2(b.report.ipc()),
            f2(c.report.ipc()),
            f2(b.report.l1i_mpki()),
            f2(c.report.l1i_mpki()),
        ]);
    }
    println!("Technology-roadmap projection (the paper's section 5.2 question)");
    println!("{}", table.render());
    let n = reps.len() as f64;
    println!(
        "average IPC: Atom {} / E5645 {} / E5-2697-class {}",
        f2(sums[0] / n),
        f2(sums[1] / n),
        f2(sums[2] / n)
    );
    println!("observations to check:");
    println!(" - the wimpy in-order core loses disproportionately on the deep stacks");
    println!(" - the newer brawny core helps, but the front-end wall (same 32 KB L1I)");
    println!("   caps the gain on service and deep-stack workloads — the paper's");
    println!("   'no one-size-fits-all' conclusion");
}
