//! Golden binary fixtures: the committed bytes under
//! `contracts/fixtures/` are the format's compatibility contract.
//!
//! Each fixture is one BDBC record built from fixed sample data, with a
//! JSON interchange sidecar in exactly the shape `bdb-lint`'s
//! `binary-stability` pass validates. This test re-derives all twelve
//! files and diffs them byte-for-byte against the checkout, so *any*
//! encoding change — field order, varint width, float formatting, CRC
//! polynomial — fails CI until the change is deliberate and blessed:
//!
//! ```text
//! BDB_BLESS=1 cargo test -p bdb-codec --test golden_fixtures
//! ```

use bdb_codec::json::Value;
use bdb_codec::{bval, columnar, encode_cache_payload, encode_record, RecordKind};
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../contracts/fixtures"
    ))
}

fn sample_object(tag: &str) -> Value {
    let text = format!(
        concat!(
            "{{\"kind\":\"{}\",\"metrics\":{{\"bandwidth_gbps\":4.75,\"ipc\":1.3229,",
            "\"l1_mpki\":27.5,\"zero\":-0.0}},\"note\":\"fixture \\\"v1\\\"\\n\",",
            "\"shards\":[1,2,3,null,true,false],\"tasks\":77}}"
        ),
        tag
    );
    bdb_codec::json::parse(&text).expect("sample JSON parses")
}

/// The six golden records and their JSON interchange sidecars, built
/// from data fixed forever — never regenerate from live engine output.
fn golden() -> Vec<(&'static str, Vec<u8>, Value)> {
    let pc: Vec<u64> = (0..64).map(|i| 0x40_1000 + i * 4).collect();
    let arg: Vec<u64> = (0..64).map(|i| 0x7ffe_0000 + i * 8).collect();
    let kind: Vec<u8> = (0..64).map(|i| (i % 7) as u8).collect();
    let aux: Vec<u8> = (0..64).map(|i| (i % 5) as u8).collect();
    let chunk = columnar::encode_trace_chunk(&pc, &arg, &kind, &aux).expect("columns agree");
    let chunk_json =
        columnar::trace_chunk_to_json(&columnar::TraceChunkColumns { pc, arg, kind, aux });

    let fingerprint = 0x00c0_ffee_f00d_beefu64;
    let profile = sample_object("cache_entry");
    let cache = encode_record(
        RecordKind::CacheEntry,
        &encode_cache_payload(fingerprint, &profile),
    );
    let cache_json = Value::object(vec![
        ("fingerprint", Value::Str(format!("{fingerprint:016x}"))),
        ("profile", profile),
    ]);

    let journal_value = sample_object("journal_record");
    let journal = encode_record(
        RecordKind::JournalRecord,
        &bval::encode_value(&journal_value),
    );
    let wire_value = sample_object("wire_message");
    let wire = encode_record(RecordKind::WireMessage, &bval::encode_value(&wire_value));

    // Serve-protocol fixtures, shaped like real `bdb-serve` frames: a
    // knob mutation request and the delta batch it fans out. The shapes
    // are frozen sample data, not live protocol output.
    let request_value = bdb_codec::json::parse(concat!(
        "{\"id\":7,\"mutation\":{\"config\":\"xeon\",\"knob\":\"l1d.size_bytes\",",
        "\"op\":\"set_knob\",\"value\":65536},\"type\":\"mutate\"}"
    ))
    .expect("serve request JSON parses");
    let request = encode_record(
        RecordKind::ServeRequest,
        &bval::encode_value(&request_value),
    );
    let delta_value = bdb_codec::json::parse(concat!(
        "{\"deltas\":[{\"key\":\"xeon/H-WordCount\",\"kind\":\"updated\",",
        "\"profile\":{\"ipc\":1.3229,\"l1_mpki\":27.5}},",
        "{\"key\":\"xeon/M-Sort\",\"kind\":\"deleted\"}],",
        "\"seq\":42,\"type\":\"delta\"}"
    ))
    .expect("serve delta JSON parses");
    let delta = encode_record(RecordKind::ServeDelta, &bval::encode_value(&delta_value));

    vec![
        ("trace_chunk", chunk, chunk_json),
        ("cache_entry", cache, cache_json),
        ("journal_record", journal, journal_value),
        ("wire_message", wire, wire_value),
        ("serve_request", request, request_value),
        ("serve_delta", delta, delta_value),
    ]
}

#[test]
fn golden_fixtures_match_the_checkout() {
    let dir = fixtures_dir();
    let bless = std::env::var_os("BDB_BLESS").is_some();
    if bless {
        std::fs::create_dir_all(&dir).expect("create contracts/fixtures");
    }
    for (name, record, interchange) in golden() {
        let bin = dir.join(format!("{name}.bin"));
        let json = dir.join(format!("{name}.json"));
        let sidecar = format!("{}\n", interchange.encode());
        if bless {
            std::fs::write(&bin, &record).expect("bless binary fixture");
            std::fs::write(&json, &sidecar).expect("bless JSON sidecar");
            continue;
        }
        let on_disk = std::fs::read(&bin).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {}: {e} (bless with BDB_BLESS=1)",
                bin.display()
            )
        });
        assert_eq!(
            on_disk, record,
            "{name}.bin drifted from the encoder — a format change must be deliberate; \
             re-bless with BDB_BLESS=1 and call it out in the PR"
        );
        let sidecar_on_disk = std::fs::read_to_string(&json)
            .unwrap_or_else(|e| panic!("missing sidecar {}: {e}", json.display()));
        assert_eq!(sidecar_on_disk, sidecar, "{name}.json sidecar drifted");
    }
}
