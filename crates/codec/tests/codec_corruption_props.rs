//! Corruption properties of the BDBC binary container.
//!
//! The engine-level suite (`cache_corruption_props.rs` in `bdb-engine`)
//! proves damaged *cache entries* are detected and quarantined; this
//! suite proves the same contract one layer down, for **every** binary
//! record kind the workspace ships: starting from a genuine record,
//! truncate it at every byte offset, flip random bits, and rewrite the
//! version field — decoding must always be a clean, detected
//! [`CodecError`], never a panic and never a wrong record. The lossless
//! `binary → JSON → binary` interchange contract is pinned here too.

use bdb_codec::json::Value;
use bdb_codec::{bval, columnar, decode_record, encode_record, is_binary};
use bdb_codec::{encode_cache_payload, CodecError, RecordKind, FORMAT_VERSION};
use proptest::collection;
use proptest::prelude::*;

/// A representative [`Value`] with every scalar shape the engine emits:
/// nested objects, arrays, integers, shortest-roundtrip floats, strings
/// with escapes, booleans, and null.
fn sample_value(tag: &str) -> Value {
    let text = format!(
        concat!(
            "{{\"workload\":\"{}\",\"metrics\":{{\"ipc\":1.3229,\"l1_mpki\":27.5,",
            "\"bandwidth_gbps\":-0.0625}},\"tags\":[\"bigdata\",\"ispass\",null,true,false],",
            "\"shard\":42,\"note\":\"line\\nbreak \\\"quoted\\\"\"}}"
        ),
        tag
    );
    bdb_codec::json::parse(&text).expect("sample JSON parses")
}

/// One genuine record of each kind, built the way its owning layer
/// builds it. The property tests damage copies, never the originals.
fn genuine_records() -> Vec<(RecordKind, Vec<u8>)> {
    let pc: Vec<u64> = (0..200).map(|i| 0x40_0000 + i * 4).collect();
    let arg: Vec<u64> = (0..200).map(|i| 0x7f00_0000 + i * 8).collect();
    let kind: Vec<u8> = (0..200).map(|i| (i % 7) as u8).collect();
    let aux: Vec<u8> = (0..200).map(|i| (i % 3) as u8).collect();
    let chunk = columnar::encode_trace_chunk(&pc, &arg, &kind, &aux).expect("columns agree");
    vec![
        (RecordKind::TraceChunk, chunk),
        (
            RecordKind::CacheEntry,
            encode_record(
                RecordKind::CacheEntry,
                &encode_cache_payload(0x00c0_ffee_f00d_beef, &sample_value("cache")),
            ),
        ),
        (
            RecordKind::JournalRecord,
            encode_record(
                RecordKind::JournalRecord,
                &bval::encode_value(&sample_value("journal")),
            ),
        ),
        (
            RecordKind::WireMessage,
            encode_record(
                RecordKind::WireMessage,
                &bval::encode_value(&sample_value("wire")),
            ),
        ),
        (
            RecordKind::ServeRequest,
            encode_record(
                RecordKind::ServeRequest,
                &bval::encode_value(&sample_value("serve_request")),
            ),
        ),
        (
            RecordKind::ServeDelta,
            encode_record(
                RecordKind::ServeDelta,
                &bval::encode_value(&sample_value("serve_delta")),
            ),
        ),
    ]
}

/// Full strict decode of one record, through the kind-specific payload
/// decoder — the deepest path a reader exercises. Returns a canonical
/// byte form so callers can check losslessness.
fn deep_decode(bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
    let (kind, payload) = decode_record(bytes)?;
    match kind {
        RecordKind::TraceChunk => {
            let columns = columnar::TraceChunkView::parse(payload)?.to_columns();
            columnar::encode_trace_chunk(&columns.pc, &columns.arg, &columns.kind, &columns.aux)
        }
        RecordKind::CacheEntry => {
            let (fingerprint, profile) = bdb_codec::decode_cache_payload(payload)?;
            Ok(encode_record(
                kind,
                &encode_cache_payload(fingerprint, &profile),
            ))
        }
        RecordKind::JournalRecord
        | RecordKind::WireMessage
        | RecordKind::ServeRequest
        | RecordKind::ServeDelta => {
            let value = bval::decode_value(payload)?;
            Ok(encode_record(kind, &bval::encode_value(&value)))
        }
    }
}

#[test]
fn every_kind_roundtrips_binary_to_json_to_binary_losslessly() {
    for (kind, record) in genuine_records() {
        assert!(is_binary(&record), "{kind:?} record carries the magic");
        // binary → decode → re-encode is byte-identical...
        let reencoded = deep_decode(&record).expect("pristine record decodes");
        assert_eq!(reencoded, record, "{kind:?} deep round-trip drifted");
        // ...and the trace chunk also survives the JSON interchange form.
        if kind == RecordKind::TraceChunk {
            let columns = columnar::decode_trace_chunk(&record).expect("chunk decodes");
            let via_json =
                columnar::trace_chunk_from_json(&columnar::trace_chunk_to_json(&columns))
                    .expect("JSON interchange parses");
            let back = columnar::encode_trace_chunk(
                &via_json.pc,
                &via_json.arg,
                &via_json.kind,
                &via_json.aux,
            )
            .expect("columns agree");
            assert_eq!(back, record, "binary → JSON → binary drifted");
        }
    }
}

#[test]
fn truncation_at_every_offset_is_a_detected_failure() {
    for (kind, record) in genuine_records() {
        for cut in 0..record.len() {
            assert!(
                deep_decode(&record[..cut]).is_err(),
                "{kind:?}: truncation at byte {cut} of {} must be detected",
                record.len()
            );
        }
    }
}

#[test]
fn unknown_versions_fail_closed_for_every_kind() {
    for (kind, record) in genuine_records() {
        for version in [0u16, 2, FORMAT_VERSION + 1, 0x7fff, 0xffff] {
            let mut future = record.clone();
            future[4..6].copy_from_slice(&version.to_le_bytes());
            assert!(
                matches!(
                    deep_decode(&future),
                    Err(CodecError::UnsupportedVersion(v)) if v == version
                ),
                "{kind:?}: version {version} must be rejected by name"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single bit flip anywhere in any record kind is detected —
    /// header damage by the structural checks, payload and trailer
    /// damage by the CRC-64.
    #[test]
    fn any_single_bit_flip_is_a_detected_failure(bit_seed in any::<u64>()) {
        for (kind, record) in genuine_records() {
            let bit = (bit_seed as usize) % (record.len() * 8);
            let mut damaged = record.clone();
            damaged[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(
                deep_decode(&damaged).is_err(),
                "{:?}: flipping bit {} went undetected",
                kind,
                bit
            );
        }
    }

    /// Multi-bit damage (a burst of up to 8 random flips) never panics
    /// and never yields a record unless the flips cancelled out to the
    /// original bytes.
    #[test]
    fn random_bit_bursts_never_yield_a_wrong_record(
        seeds in collection::vec(any::<u64>(), 1..8),
    ) {
        for (kind, record) in genuine_records() {
            let mut damaged = record.clone();
            for seed in &seeds {
                let bit = (*seed as usize) % (record.len() * 8);
                damaged[bit / 8] ^= 1 << (bit % 8);
            }
            match deep_decode(&damaged) {
                Err(_) => prop_assert!(
                    damaged != record,
                    "{:?}: undamaged record must decode",
                    kind
                ),
                Ok(reencoded) => {
                    // Flips can cancel pairwise; decoding may only
                    // succeed if the bytes really are pristine again.
                    prop_assert_eq!(&damaged, &record, "{:?}: damaged bytes decoded", kind);
                    prop_assert_eq!(&reencoded, &record);
                }
            }
        }
    }

    /// Arbitrary garbage never panics: it decodes or it errors, and the
    /// only inputs that decode are genuine BDBC records (which then
    /// re-encode to the identical bytes).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in collection::vec(any::<u8>(), 0..256)) {
        match deep_decode(&bytes) {
            Err(_) => {}
            Ok(reencoded) => prop_assert_eq!(reencoded, bytes),
        }
    }
}
