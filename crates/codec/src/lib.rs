//! `bdb-codec` — the workspace's byte-format authority: a versioned,
//! CRC-64-checksummed, little-endian binary columnar format plus the
//! canonical JSON reference form it interchanges with.
//!
//! Every layer that persists or ships bytes — the engine's profile cache
//! and run journal, `TraceBuffer` chunk spill, and the cluster wire —
//! encodes through this crate, in one of two forms:
//!
//! * **Canonical JSON** ([`json`]): the human-readable debug/interchange
//!   form. Byte-stable (`encode(decode(b)) == b`), shortest-roundtrip
//!   floats, non-finite sentinels.
//! * **BDBC binary records** (this module + [`bval`] + [`columnar`]): a
//!   compact, little-endian container with a CRC-64/XZ trailer. Every
//!   binary record decodes to a [`json::Value`] (or columnar struct)
//!   whose JSON encoding round-trips losslessly back to the identical
//!   binary bytes — the `binary → JSON → binary` contract the golden
//!   fixtures under `contracts/fixtures/` pin.
//!
//! # Container layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "BDBC"
//! 4       2     format version (currently 1)
//! 6       2     record kind (RecordKind)
//! 8       8     payload length N
//! 16      N     payload (kind-specific)
//! 16+N    8     CRC-64/XZ of the payload
//! ```
//!
//! Decoding is strict: bad magic, an unknown version or kind, a length
//! that disagrees with the input, trailing bytes, or a checksum mismatch
//! are each a distinct, clean error — never a panic, never a wrong
//! record. A single bit flip anywhere in a record is always detected
//! (header fields by the structural checks, payload and trailer by the
//! CRC).
//!
//! # Versioning policy
//!
//! The version field gates the *container*: readers reject any version
//! they do not know ([`CodecError::UnsupportedVersion`]), so a future
//! layout change bumps [`FORMAT_VERSION`] and old readers fail closed.
//! Payload schema evolution rides the owning layer's versioning (e.g.
//! the engine's cache format version participates in the cache key, so
//! schema bumps invalidate by key, not by in-place migration).

pub mod bval;
pub mod columnar;
pub mod json;
pub mod varint;

mod crc;

pub use crc::crc64;

/// Magic prefix of every BDBC binary record.
pub const MAGIC: [u8; 4] = *b"BDBC";

/// Current container format version.
pub const FORMAT_VERSION: u16 = 1;

/// Container header size in bytes (magic + version + kind + length).
pub const HEADER_BYTES: usize = 16;

/// Container trailer size in bytes (CRC-64 of the payload).
pub const TRAILER_BYTES: usize = 8;

/// What a BDBC record's payload contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A columnar trace chunk ([`columnar`]).
    TraceChunk,
    /// A profile-cache entry (`[u64 LE fingerprint][bval profile]`).
    CacheEntry,
    /// A run-journal record ([`bval`] of the record object).
    JournalRecord,
    /// A cluster wire message ([`bval`] of the message object).
    WireMessage,
    /// A `bdb-serve` client request ([`bval`] of the request object).
    ServeRequest,
    /// A `bdb-serve` reply or subscription delta ([`bval`] of the
    /// reply object).
    ServeDelta,
}

impl RecordKind {
    /// The on-disk kind tag.
    pub fn tag(self) -> u16 {
        match self {
            RecordKind::TraceChunk => 1,
            RecordKind::CacheEntry => 2,
            RecordKind::JournalRecord => 3,
            RecordKind::WireMessage => 4,
            RecordKind::ServeRequest => 5,
            RecordKind::ServeDelta => 6,
        }
    }

    /// Parses a kind tag.
    pub fn from_tag(tag: u16) -> Option<Self> {
        match tag {
            1 => Some(RecordKind::TraceChunk),
            2 => Some(RecordKind::CacheEntry),
            3 => Some(RecordKind::JournalRecord),
            4 => Some(RecordKind::WireMessage),
            5 => Some(RecordKind::ServeRequest),
            6 => Some(RecordKind::ServeDelta),
            _ => None,
        }
    }
}

/// A decode failure. Every variant is a clean, detected error — decoding
/// never panics and never fabricates a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the structure did.
    Truncated {
        /// Byte offset where more input was needed.
        at: usize,
    },
    /// The input does not start with the BDBC magic.
    BadMagic,
    /// The container version is newer than this reader.
    UnsupportedVersion(u16),
    /// The record kind tag is unknown.
    UnknownKind(u16),
    /// The record kind is not what the caller expected.
    WrongKind {
        /// Kind the caller asked for.
        expected: RecordKind,
        /// Kind the record carries.
        actual: RecordKind,
    },
    /// The payload CRC-64 trailer does not match the payload.
    ChecksumMismatch {
        /// CRC stored in the trailer.
        stored: u64,
        /// CRC computed over the payload.
        computed: u64,
    },
    /// Input continues past the end of the record.
    TrailingBytes {
        /// Offset of the first unexpected byte.
        at: usize,
    },
    /// Structurally invalid payload content.
    Malformed(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { at } => write!(f, "truncated input at byte {at}"),
            CodecError::BadMagic => write!(f, "missing BDBC magic"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported container version {v}"),
            CodecError::UnknownKind(k) => write!(f, "unknown record kind {k}"),
            CodecError::WrongKind { expected, actual } => {
                write!(f, "expected a {expected:?} record, got {actual:?}")
            }
            CodecError::ChecksumMismatch { stored, computed } => write!(
                f,
                "payload checksum mismatch (stored {stored:016x}, computed {computed:016x})"
            ),
            CodecError::TrailingBytes { at } => write!(f, "trailing bytes at offset {at}"),
            CodecError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Whether `bytes` look like a BDBC binary record (vs canonical JSON).
/// Sniffing on the magic lets every reader stay format-agnostic: the
/// `BDB_*_FORMAT` knobs select what gets *written*, while mixed-format
/// caches, journals, and fleets always read cleanly.
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Wraps `payload` in a BDBC container of the given kind.
pub fn encode_record(kind: RecordKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len() + TRAILER_BYTES);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.tag().to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc64(payload).to_le_bytes());
    out
}

/// Decodes one container that must span `bytes` exactly, returning the
/// kind and a zero-copy payload slice.
pub fn decode_record(bytes: &[u8]) -> Result<(RecordKind, &[u8]), CodecError> {
    let (kind, payload, consumed) = decode_record_prefix(bytes)?;
    if consumed != bytes.len() {
        return Err(CodecError::TrailingBytes { at: consumed });
    }
    Ok((kind, payload))
}

/// Decodes one container at the start of `bytes` (which may continue with
/// further records), returning `(kind, payload, bytes consumed)`. The
/// payload slice borrows `bytes` — alignment-safe and copy-free, so a
/// memory-mapped spill file can be walked without materializing it.
pub fn decode_record_prefix(bytes: &[u8]) -> Result<(RecordKind, &[u8], usize), CodecError> {
    if bytes.len() < MAGIC.len() {
        return Err(CodecError::Truncated { at: bytes.len() });
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    if bytes.len() < HEADER_BYTES {
        return Err(CodecError::Truncated { at: bytes.len() });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let kind_tag = u16::from_le_bytes([bytes[6], bytes[7]]);
    let kind = RecordKind::from_tag(kind_tag).ok_or(CodecError::UnknownKind(kind_tag))?;
    let len64 = u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]);
    let len = usize::try_from(len64).map_err(|_| CodecError::Truncated { at: bytes.len() })?;
    let end = HEADER_BYTES
        .checked_add(len)
        .and_then(|n| n.checked_add(TRAILER_BYTES))
        .ok_or(CodecError::Truncated { at: bytes.len() })?;
    if bytes.len() < end {
        return Err(CodecError::Truncated { at: bytes.len() });
    }
    let payload = &bytes[HEADER_BYTES..HEADER_BYTES + len];
    let mut crc_bytes = [0u8; 8];
    crc_bytes.copy_from_slice(&bytes[HEADER_BYTES + len..end]);
    let stored = u64::from_le_bytes(crc_bytes);
    let computed = crc64(payload);
    if stored != computed {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }
    Ok((kind, payload, end))
}

/// Builds the payload of a [`RecordKind::CacheEntry`] record:
/// `[u64 LE fingerprint][bval(profile)]`. The container trailer
/// checksums the whole payload, so the fingerprint is covered too.
pub fn encode_cache_payload(fingerprint: u64, profile: &json::Value) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&fingerprint.to_le_bytes());
    payload.extend_from_slice(&bval::encode_value(profile));
    payload
}

/// Inverse of [`encode_cache_payload`].
pub fn decode_cache_payload(payload: &[u8]) -> Result<(u64, json::Value), CodecError> {
    if payload.len() < 8 {
        return Err(CodecError::Truncated { at: payload.len() });
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&payload[..8]);
    let fingerprint = u64::from_le_bytes(raw);
    let profile = bval::decode_value(&payload[8..])?;
    Ok((fingerprint, profile))
}

/// [`decode_record`] that also enforces the expected kind.
pub fn decode_record_of(kind: RecordKind, bytes: &[u8]) -> Result<&[u8], CodecError> {
    let (actual, payload) = decode_record(bytes)?;
    if actual != kind {
        return Err(CodecError::WrongKind {
            expected: kind,
            actual,
        });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips_and_is_sniffable() {
        let payload = b"hello columnar world";
        let record = encode_record(RecordKind::JournalRecord, payload);
        assert!(is_binary(&record));
        assert!(!is_binary(b"{\"format\":3}"));
        let (kind, got) = decode_record(&record).unwrap();
        assert_eq!(kind, RecordKind::JournalRecord);
        assert_eq!(got, payload);
        assert_eq!(
            decode_record_of(RecordKind::JournalRecord, &record).unwrap(),
            payload
        );
        assert!(matches!(
            decode_record_of(RecordKind::CacheEntry, &record),
            Err(CodecError::WrongKind { .. })
        ));
    }

    #[test]
    fn truncation_at_every_offset_is_detected() {
        let record = encode_record(RecordKind::CacheEntry, b"payload bytes");
        for cut in 0..record.len() {
            assert!(
                decode_record(&record[..cut]).is_err(),
                "cut at {cut} of {} must fail",
                record.len()
            );
        }
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        // A flip in the kind byte may land on another *valid* kind tag;
        // that is detected by the typed read path (`decode_record_of`
        // returns `WrongKind`), not by the container decode itself.
        // Every other flip must fail the untyped decode outright.
        let record = encode_record(RecordKind::WireMessage, b"flip me");
        for bit in 0..record.len() * 8 {
            let mut damaged = record.clone();
            damaged[bit / 8] ^= 1 << (bit % 8);
            match decode_record(&damaged) {
                Err(_) => {}
                Ok((kind, _)) => {
                    assert_ne!(
                        kind,
                        RecordKind::WireMessage,
                        "bit {bit} flip went undetected"
                    );
                    assert!(
                        matches!(
                            decode_record_of(RecordKind::WireMessage, &damaged),
                            Err(CodecError::WrongKind { .. })
                        ),
                        "bit {bit} flip must surface as WrongKind on the typed path"
                    );
                }
            }
        }
    }

    #[test]
    fn version_and_kind_mismatches_are_clean_errors() {
        let mut record = encode_record(RecordKind::TraceChunk, b"x");
        record[4] = 0xff; // version low byte
        assert!(matches!(
            decode_record(&record),
            Err(CodecError::UnsupportedVersion(_))
        ));
        let mut record = encode_record(RecordKind::TraceChunk, b"x");
        record[6] = 0x7f; // kind low byte
        assert!(matches!(
            decode_record(&record),
            Err(CodecError::UnknownKind(_))
        ));
    }

    #[test]
    fn prefix_decoding_walks_concatenated_records() {
        let mut stream = encode_record(RecordKind::TraceChunk, b"one");
        stream.extend_from_slice(&encode_record(RecordKind::TraceChunk, b"two"));
        let (_, first, used) = decode_record_prefix(&stream).unwrap();
        assert_eq!(first, b"one");
        let (_, second, used2) = decode_record_prefix(&stream[used..]).unwrap();
        assert_eq!(second, b"two");
        assert_eq!(used + used2, stream.len());
        assert!(matches!(
            decode_record(&stream),
            Err(CodecError::TrailingBytes { .. })
        ));
    }
}
