//! CRC-64/XZ — the single content checksum used by every byte format in
//! the workspace.
//!
//! The engine's cache entries and journal frames, the binary container
//! trailer, and the linter's artifact re-verification all stamp and check
//! this exact function, so a checksum mismatch means the *content*
//! drifted, never the checksum implementation.

/// CRC-64/XZ (reflected ECMA polynomial) over `bytes`. The check value
/// for `b"123456789"` is `0x995dc9bbdf1939fa`.
pub fn crc64(bytes: &[u8]) -> u64 {
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    let mut crc = !0u64;
    for &b in bytes {
        crc ^= u64::from(b);
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_matches_the_xz_check_value() {
        assert_eq!(crc64(b"123456789"), 0x995d_c9bb_df19_39fa);
        assert_eq!(crc64(b""), 0);
        assert_ne!(crc64(b"a"), crc64(b"b"));
    }

    #[test]
    fn crc64_detects_any_single_bit_flip() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let clean = crc64(&data);
        for bit in 0..data.len() * 8 {
            let mut flipped = data.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc64(&flipped), clean, "bit {bit} undetected");
        }
    }
}
