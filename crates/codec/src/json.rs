//! The canonical JSON reference form: minimal JSON tree, writer, and
//! parser shared by every layer that touches bytes.
//!
//! This module is the **single** canonical-JSON implementation in the
//! workspace — the engine's cache/journal, the cluster wire, and the
//! linter's artifact passes all re-export it, so "canonical bytes" means
//! exactly one thing everywhere. It is also the interchange form of the
//! binary format in [`crate::bval`]: every binary record decodes to a
//! [`Value`] whose JSON encoding is its debug/interchange representation.
//!
//! The workspace has no serde backend (see `vendor/README.md`), so all
//! JSON is written and read through this hand-rolled codec. Two
//! properties matter more than generality:
//!
//! * **Byte stability** — encoding is deterministic (object keys keep
//!   insertion order, floats print via Rust's shortest-roundtrip `{:?}`),
//!   so `encode(decode(bytes)) == bytes` for every file this crate writes.
//!   The engine's cache-hit contract ("a warm read returns exactly the
//!   bytes of the cold run") rests on this.
//! * **Lossless floats** — `{:?}` prints the shortest decimal that parses
//!   back to the identical `f64`, so round-tripping never perturbs a
//!   metric. Non-finite floats (never produced by a healthy run) are
//!   encoded as the strings `"NaN"`, `"inf"`, `"-inf"`.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order so encoding is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the only integer kind the cache needs).
    UInt(u64),
    /// A float; always printed with a `.` or exponent so it re-parses as
    /// [`Value::Float`].
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as `f64`. Accepts floats, integers, and the non-finite
    /// sentinels `"NaN"` / `"inf"` / `"-inf"`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::UInt(u) => Some(*u as f64),
            Value::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice of elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether the value is a number or a non-finite sentinel string
    /// (`"NaN"`, `"inf"`, `"-inf"`), i.e. decodes as `f64`.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::UInt(_) | Value::Float(_))
            || matches!(self, Value::Str(s) if s == "NaN" || s == "inf" || s == "-inf")
    }

    /// Encodes to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(f) => write_f64(*f, out),
            Value::Str(s) => write_str(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Encodes an `f64` float: shortest roundtrip decimal for finite values
/// (Rust's `{:?}`), string sentinels otherwise (JSON has no non-finite
/// numbers).
fn write_f64(f: f64, out: &mut String) {
    if f.is_nan() {
        out.push_str("\"NaN\"");
    } else if f == f64::INFINITY {
        out.push_str("\"inf\"");
    } else if f == f64::NEG_INFINITY {
        out.push_str("\"-inf\"");
    } else {
        let _ = write!(out, "{f:?}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error produced by [`parse`] (position plus message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("non-scalar \\u escape"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("malformed number"))?;
        if !is_float && !text.starts_with('-') {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_byte_stable() {
        let v = Value::object(vec![
            ("id", Value::Str("H-WordCount \"tricky\"\n".into())),
            ("count", Value::UInt(u64::MAX)),
            ("pi", Value::Float(std::f64::consts::PI)),
            ("tiny", Value::Float(1e-300)),
            ("neg_zero", Value::Float(-0.0)),
            ("flag", Value::Bool(true)),
            ("gap", Value::Null),
            (
                "curve",
                Value::Array(vec![Value::Float(0.5), Value::UInt(3)]),
            ),
        ]);
        let bytes = v.encode();
        let reparsed = parse(&bytes).unwrap();
        assert_eq!(reparsed, v);
        assert_eq!(reparsed.encode(), bytes, "encode∘decode must be identity");
    }

    #[test]
    fn floats_roundtrip_to_identical_bits() {
        for f in [
            0.1,
            1.0 / 3.0,
            6.02e23,
            5e-324,
            f64::MAX,
            -0.0,
            123_456_789.123_456_78,
        ] {
            let bytes = Value::Float(f).encode();
            let back = parse(&bytes).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} mangled via {bytes}");
        }
    }

    #[test]
    fn non_finite_floats_use_sentinels() {
        assert_eq!(Value::Float(f64::NAN).encode(), "\"NaN\"");
        assert_eq!(Value::Float(f64::INFINITY).encode(), "\"inf\"");
        let back = parse("\"-inf\"").unwrap().as_f64().unwrap();
        assert_eq!(back, f64::NEG_INFINITY);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , 2.5 ] , \"b\\u0041\" : \"x\\ty\" } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("bA").unwrap().as_str(), Some("x\ty"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn numeric_sentinels_recognized() {
        assert!(parse("\"NaN\"").unwrap().is_numeric());
        assert!(parse("3.5").unwrap().is_numeric());
        assert!(!parse("\"text\"").unwrap().is_numeric());
    }
}
