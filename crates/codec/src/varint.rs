//! LEB128 varints and zigzag mapping — the integer primitives of the
//! binary columnar format.
//!
//! Encoding is canonical: the encoder never emits an overlong form, and
//! the decoder rejects one, so `encode(decode(bytes)) == bytes` holds at
//! the primitive layer too (the byte-stability contract the golden
//! fixtures pin).

use crate::CodecError;

/// Appends `value` as an LEB128 varint (1–10 bytes).
pub fn write_varint(value: u64, out: &mut Vec<u8>) {
    let mut v = value;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `bytes[*pos..]`, advancing `pos`.
///
/// Rejects truncation, >10-byte forms, bits beyond the 64th, and
/// non-canonical (overlong) encodings.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos).ok_or(CodecError::Truncated { at: *pos })?;
        *pos += 1;
        let chunk = u64::from(byte & 0x7f);
        if shift == 63 && chunk > 1 {
            return Err(CodecError::Malformed(format!(
                "varint overflows u64 at byte {}",
                *pos - 1
            )));
        }
        value |= chunk << shift;
        if byte & 0x80 == 0 {
            if byte == 0 && shift != 0 {
                return Err(CodecError::Malformed(format!(
                    "non-canonical varint at byte {}",
                    *pos - 1
                )));
            }
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Malformed(format!(
                "varint longer than 10 bytes at byte {}",
                *pos - 1
            )));
        }
    }
}

/// Zigzag-maps a signed delta into an unsigned varint-friendly value.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_and_stays_canonical() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX / 2, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len(), "no trailing bytes for {v}");
        }
    }

    #[test]
    fn varint_rejects_truncation_overlong_and_overflow() {
        let mut pos = 0;
        assert!(read_varint(&[0x80], &mut pos).is_err(), "truncated");
        pos = 0;
        assert!(read_varint(&[0x80, 0x00], &mut pos).is_err(), "overlong 0");
        pos = 0;
        assert!(
            read_varint(&[0xff; 10], &mut pos).is_err(),
            "bits beyond the 64th"
        );
        pos = 0;
        assert!(read_varint(&[0xff; 11], &mut pos).is_err(), ">10 bytes");
    }

    #[test]
    fn zigzag_is_a_bijection() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
