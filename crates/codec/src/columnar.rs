//! Columnar trace-chunk records: the compression workhorse of the
//! binary format.
//!
//! A trace chunk is four parallel columns (`pc`, `arg`, `kind`, `aux`)
//! straight out of `TraceBuffer`'s structure-of-arrays layout. Program
//! counters and data addresses are strongly local, so delta + zigzag +
//! varint collapses them to ~1–2 bytes each; kind/aux bytes run in long
//! streaks, so run-length encoding collapses them further. This is where
//! the ≥10x frame-size win over canonical JSON comes from.
//!
//! ```text
//! payload := varint n-events, column(pc) column(arg) column(kind) column(aux)
//! column  := u8 column-id, u8 encoding, varint byte-len, byte-len × byte
//! ```
//!
//! Columns appear in fixed id order (0..=3), so the payload is canonical.
//! Encodings:
//!
//! * `0` plain — u64 columns as `n × 8` LE bytes, u8 columns as `n`
//!   bytes. Plain sections are read zero-copy from the borrowed payload
//!   ([`TraceChunkView`]), byte-at-a-time via `from_le_bytes`, so they
//!   are alignment-safe on a memory-mapped file.
//! * `1` delta — u64 only: zigzag varints of successive differences
//!   (first value is its own delta from 0).
//! * `2` rle — u8 only: `(varint run-length ≥ 1, u8 value)` pairs
//!   covering exactly `n` entries.
//! * `3` streams — the `arg` column only: `(varint zero-gap, zigzag
//!   varint delta)` pairs, one per **non-zero** value, in index order.
//!   The gap counts zero entries since the previous pair; positions
//!   after the last pair are zero. Each delta is against the previous
//!   non-zero value with the *same kind byte*, so the interleaved
//!   per-stream address sequences (loads, stores, branch targets) each
//!   keep their own locality instead of destroying each other's deltas.
//!   Zero args (the compute ops) cost nothing.
//! * `4` packed — u8 only: `u8 dict-len, dict-len × u8 dictionary (in
//!   first-occurrence order), ⌈n·bits/8⌉ bytes of LSB-first bit-packed
//!   dictionary indices` where `bits = ⌈log2(dict-len)⌉` (zero for a
//!   single-symbol column). Mixed kind/aux streams that defeat RLE
//!   still pack to a fraction of a byte per event.
//!
//! The encoder computes every candidate and keeps the smallest (first
//! wins ties, in the order plain, delta/rle, streams/packed), so the
//! choice is deterministic in the data.

use crate::varint::{read_varint, unzigzag, write_varint, zigzag};
use crate::{decode_record_of, encode_record, json, CodecError, RecordKind};

const ENC_PLAIN: u8 = 0;
const ENC_DELTA: u8 = 1;
const ENC_RLE: u8 = 2;
const ENC_STREAMS: u8 = 3;
const ENC_PACKED: u8 = 4;

/// Owned trace-chunk columns (the decode target, and the JSON
/// interchange shape).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceChunkColumns {
    /// Program counter per event.
    pub pc: Vec<u64>,
    /// Primary argument (address or operand) per event.
    pub arg: Vec<u64>,
    /// Micro-op kind code per event.
    pub kind: Vec<u8>,
    /// Auxiliary byte per event.
    pub aux: Vec<u8>,
}

impl TraceChunkColumns {
    /// Number of events in the chunk.
    pub fn len(&self) -> usize {
        self.pc.len()
    }

    /// Whether the chunk holds no events.
    pub fn is_empty(&self) -> bool {
        self.pc.is_empty()
    }
}

/// Encodes four parallel columns as a complete BDBC `TraceChunk` record.
pub fn encode_trace_chunk(
    pc: &[u64],
    arg: &[u64],
    kind: &[u8],
    aux: &[u8],
) -> Result<Vec<u8>, CodecError> {
    let n = pc.len();
    if arg.len() != n || kind.len() != n || aux.len() != n {
        return Err(CodecError::Malformed(format!(
            "column lengths diverge: pc {n}, arg {}, kind {}, aux {}",
            arg.len(),
            kind.len(),
            aux.len()
        )));
    }
    let mut payload = Vec::new();
    write_varint(n as u64, &mut payload);
    write_u64_column(0, pc, None, &mut payload);
    write_u64_column(1, arg, Some(kind), &mut payload);
    write_u8_column(2, kind, &mut payload);
    write_u8_column(3, aux, &mut payload);
    Ok(encode_record(RecordKind::TraceChunk, &payload))
}

fn write_u64_column(id: u8, values: &[u64], streams_key: Option<&[u8]>, out: &mut Vec<u8>) {
    let mut delta = Vec::new();
    let mut prev = 0u64;
    for &v in values {
        write_varint(zigzag(v.wrapping_sub(prev) as i64), &mut delta);
        prev = v;
    }
    let mut best = (ENC_DELTA, delta);
    if best.1.len() >= values.len() * 8 {
        let mut plain = Vec::with_capacity(values.len() * 8);
        for &v in values {
            plain.extend_from_slice(&v.to_le_bytes());
        }
        best = (ENC_PLAIN, plain);
    }
    if let Some(keys) = streams_key {
        let streams = encode_streams(values, keys);
        if streams.len() < best.1.len() {
            best = (ENC_STREAMS, streams);
        }
    }
    write_section(id, best.0, &best.1, out);
}

/// The `streams` candidate: one `(zero-gap, per-stream zigzag delta)`
/// pair per non-zero value, deltas keyed by the parallel kind byte.
fn encode_streams(values: &[u64], keys: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut prevs = [0u64; 256];
    let mut zeros = 0u64;
    for (&v, &k) in values.iter().zip(keys) {
        if v == 0 {
            zeros += 1;
            continue;
        }
        write_varint(zeros, &mut out);
        zeros = 0;
        let prev = prevs[usize::from(k)];
        write_varint(zigzag(v.wrapping_sub(prev) as i64), &mut out);
        prevs[usize::from(k)] = v;
    }
    out
}

fn write_u8_column(id: u8, values: &[u8], out: &mut Vec<u8>) {
    let mut rle = Vec::new();
    let mut run = values.iter().copied();
    if let Some(mut current) = run.next() {
        let mut count = 1u64;
        for b in run {
            if b == current {
                count += 1;
            } else {
                write_varint(count, &mut rle);
                rle.push(current);
                current = b;
                count = 1;
            }
        }
        write_varint(count, &mut rle);
        rle.push(current);
    }
    let mut best = if rle.len() < values.len() {
        (ENC_RLE, rle)
    } else {
        (ENC_PLAIN, values.to_vec())
    };
    let packed = encode_packed(values);
    if packed.len() < best.1.len() {
        best = (ENC_PACKED, packed);
    }
    write_section(id, best.0, &best.1, out);
}

/// The `packed` candidate: dictionary (first-occurrence order) plus
/// LSB-first bit-packed indices at `⌈log2(dict len)⌉` bits each.
fn encode_packed(values: &[u8]) -> Vec<u8> {
    let mut dict: Vec<u8> = Vec::new();
    let mut index = [0u8; 256];
    for &v in values {
        if !dict.contains(&v) {
            if dict.len() == 255 {
                // No u8 slot for a 256th symbol — and at 8 bits per
                // index the candidate can never beat plain anyway.
                return values.to_vec();
            }
            index[usize::from(v)] = dict.len() as u8;
            dict.push(v);
        }
    }
    let bits = packed_bits(dict.len());
    let mut out = vec![dict.len() as u8];
    out.extend_from_slice(&dict);
    if bits > 0 {
        let mut acc = 0u32;
        let mut filled = 0u32;
        for &v in values {
            acc |= u32::from(index[usize::from(v)]) << filled;
            filled += bits;
            while filled >= 8 {
                out.push((acc & 0xff) as u8);
                acc >>= 8;
                filled -= 8;
            }
        }
        if filled > 0 {
            out.push((acc & 0xff) as u8);
        }
    }
    out
}

/// Bits per packed index for a dictionary of `len` symbols (0 when one
/// symbol covers the whole column).
fn packed_bits(len: usize) -> u32 {
    match len {
        0 | 1 => 0,
        n => (usize::BITS - (n - 1).leading_zeros()).max(1),
    }
}

fn write_section(id: u8, encoding: u8, data: &[u8], out: &mut Vec<u8>) {
    out.push(id);
    out.push(encoding);
    write_varint(data.len() as u64, out);
    out.extend_from_slice(data);
}

/// A zero-copy, alignment-safe view over a trace-chunk *payload* (the
/// container must already be unwrapped via [`crate::decode_record`]).
/// Column sections stay borrowed; iteration decodes lazily.
#[derive(Debug, Clone, Copy)]
pub struct TraceChunkView<'a> {
    n: usize,
    pc: Section<'a>,
    arg: Section<'a>,
    kind: Section<'a>,
    aux: Section<'a>,
}

#[derive(Debug, Clone, Copy)]
struct Section<'a> {
    encoding: u8,
    data: &'a [u8],
}

impl<'a> TraceChunkView<'a> {
    /// Parses and fully validates a trace-chunk payload. After `parse`
    /// succeeds, every iterator below yields exactly `len()` items.
    pub fn parse(payload: &'a [u8]) -> Result<Self, CodecError> {
        let mut pos = 0usize;
        let n64 = read_varint(payload, &mut pos)?;
        let n = usize::try_from(n64).map_err(|_| CodecError::Truncated { at: pos })?;
        let pc = read_section(payload, &mut pos, 0)?;
        let arg = read_section(payload, &mut pos, 1)?;
        let kind = read_section(payload, &mut pos, 2)?;
        let aux = read_section(payload, &mut pos, 3)?;
        if pos != payload.len() {
            return Err(CodecError::TrailingBytes { at: pos });
        }
        let view = TraceChunkView {
            n,
            pc,
            arg,
            kind,
            aux,
        };
        view.validate()?;
        Ok(view)
    }

    fn validate(&self) -> Result<(), CodecError> {
        for (name, section) in [("pc", self.pc), ("arg", self.arg)] {
            match section.encoding {
                ENC_PLAIN if section.data.len() == self.n * 8 => {}
                ENC_PLAIN => {
                    return Err(CodecError::Malformed(format!(
                        "plain {name} column holds {} bytes for {} events",
                        section.data.len(),
                        self.n
                    )))
                }
                ENC_DELTA => {
                    let mut pos = 0usize;
                    for _ in 0..self.n {
                        read_varint(section.data, &mut pos)?;
                    }
                    if pos != section.data.len() {
                        return Err(CodecError::TrailingBytes { at: pos });
                    }
                }
                ENC_STREAMS if name == "arg" => {
                    // Pairs must parse, land on strictly increasing
                    // positions inside the chunk, and consume exactly
                    // the section.
                    let mut pos = 0usize;
                    let mut covered = 0u64;
                    while pos < section.data.len() {
                        let gap = read_varint(section.data, &mut pos)?;
                        read_varint(section.data, &mut pos)?;
                        covered = covered
                            .checked_add(gap)
                            .and_then(|c| c.checked_add(1))
                            .ok_or(CodecError::Malformed(
                                "arg stream pairs overflow the chunk".to_owned(),
                            ))?;
                    }
                    if covered > self.n as u64 {
                        return Err(CodecError::Malformed(format!(
                            "arg stream pairs cover {covered} of {} events",
                            self.n
                        )));
                    }
                }
                other => {
                    return Err(CodecError::Malformed(format!(
                        "u64 column {name} has unknown encoding {other}"
                    )))
                }
            }
        }
        for (name, section) in [("kind", self.kind), ("aux", self.aux)] {
            match section.encoding {
                ENC_PLAIN if section.data.len() == self.n => {}
                ENC_PLAIN => {
                    return Err(CodecError::Malformed(format!(
                        "plain {name} column holds {} bytes for {} events",
                        section.data.len(),
                        self.n
                    )))
                }
                ENC_RLE => {
                    let mut pos = 0usize;
                    let mut covered = 0u64;
                    while pos < section.data.len() {
                        let run = read_varint(section.data, &mut pos)?;
                        if run == 0 {
                            return Err(CodecError::Malformed(format!(
                                "zero-length run in {name} column"
                            )));
                        }
                        if section.data.get(pos).is_none() {
                            return Err(CodecError::Truncated { at: pos });
                        }
                        pos += 1;
                        covered = covered.saturating_add(run);
                    }
                    if covered != self.n as u64 {
                        return Err(CodecError::Malformed(format!(
                            "{name} runs cover {covered} of {} events",
                            self.n
                        )));
                    }
                }
                ENC_PACKED => {
                    let &dict_len = section
                        .data
                        .first()
                        .ok_or(CodecError::Truncated { at: 0 })?;
                    let dict_len = usize::from(dict_len);
                    if dict_len == 0 && self.n > 0 {
                        return Err(CodecError::Malformed(format!(
                            "packed {name} column has an empty dictionary"
                        )));
                    }
                    let bits = packed_bits(dict_len) as usize;
                    let expected = 1 + dict_len + (self.n * bits).div_ceil(8);
                    if section.data.len() != expected {
                        return Err(CodecError::Malformed(format!(
                            "packed {name} column holds {} bytes where {expected} \
                             were expected",
                            section.data.len()
                        )));
                    }
                    if bits > 0 {
                        let packed = &section.data[1 + dict_len..];
                        for i in 0..self.n {
                            if usize::from(read_packed_index(packed, i, bits as u32)) >= dict_len {
                                return Err(CodecError::Malformed(format!(
                                    "packed {name} index out of dictionary range"
                                )));
                            }
                        }
                    }
                }
                other => {
                    return Err(CodecError::Malformed(format!(
                        "u8 column {name} has unknown encoding {other}"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Number of events in the chunk.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the chunk holds no events.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Lazy iterator over the `pc` column.
    pub fn pc(&self) -> U64Column<'a> {
        U64Column::new(self.pc, self.n, None)
    }

    /// Lazy iterator over the `arg` column. A stream-encoded `arg`
    /// column is keyed by the kind column, so this iterator walks both
    /// in lockstep (still lazy, still borrowed).
    pub fn arg(&self) -> U64Column<'a> {
        let keys = (self.arg.encoding == ENC_STREAMS).then(|| U8Column::new(self.kind, self.n));
        U64Column::new(self.arg, self.n, keys)
    }

    /// Lazy iterator over the `kind` column.
    pub fn kind(&self) -> U8Column<'a> {
        U8Column::new(self.kind, self.n)
    }

    /// Lazy iterator over the `aux` column.
    pub fn aux(&self) -> U8Column<'a> {
        U8Column::new(self.aux, self.n)
    }

    /// Materializes all four columns.
    pub fn to_columns(&self) -> TraceChunkColumns {
        TraceChunkColumns {
            pc: self.pc().collect(),
            arg: self.arg().collect(),
            kind: self.kind().collect(),
            aux: self.aux().collect(),
        }
    }
}

/// Lazy decoder for one u64 column (validated at parse time, so
/// iteration is infallible).
pub struct U64Column<'a> {
    section: Section<'a>,
    pos: usize,
    acc: u64,
    remaining: usize,
    /// Stream-encoded columns only: the parallel kind column, walked in
    /// lockstep, plus one delta accumulator per stream key and the
    /// count of zeros still owed before the next stored pair (`None`
    /// once the pairs are exhausted).
    keys: Option<U8Column<'a>>,
    prevs: Vec<u64>,
    gap: Option<u64>,
}

impl<'a> U64Column<'a> {
    fn new(section: Section<'a>, n: usize, keys: Option<U8Column<'a>>) -> Self {
        let mut column = U64Column {
            section,
            pos: 0,
            acc: 0,
            remaining: n,
            keys,
            prevs: Vec::new(),
            gap: None,
        };
        if section.encoding == ENC_STREAMS {
            column.prevs = vec![0u64; 256];
            if !section.data.is_empty() {
                column.gap = read_varint(section.data, &mut column.pos).ok();
            }
        }
        column
    }
}

impl Iterator for U64Column<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        match self.section.encoding {
            ENC_PLAIN => {
                let end = self.pos + 8;
                let chunk = self.section.data.get(self.pos..end)?;
                self.pos = end;
                let mut raw = [0u8; 8];
                raw.copy_from_slice(chunk);
                Some(u64::from_le_bytes(raw))
            }
            ENC_STREAMS => {
                let key = usize::from(self.keys.as_mut()?.next()?);
                match self.gap.as_mut() {
                    None => Some(0),
                    Some(0) => {
                        let delta = read_varint(self.section.data, &mut self.pos).ok()?;
                        let value = self.prevs[key].wrapping_add(unzigzag(delta) as u64);
                        self.prevs[key] = value;
                        self.gap = if self.pos < self.section.data.len() {
                            Some(read_varint(self.section.data, &mut self.pos).ok()?)
                        } else {
                            None
                        };
                        Some(value)
                    }
                    Some(zeros) => {
                        *zeros -= 1;
                        Some(0)
                    }
                }
            }
            _ => {
                let delta = read_varint(self.section.data, &mut self.pos).ok()?;
                self.acc = self.acc.wrapping_add(unzigzag(delta) as u64);
                Some(self.acc)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Lazy decoder for one u8 column (validated at parse time, so iteration
/// is infallible).
pub struct U8Column<'a> {
    section: Section<'a>,
    pos: usize,
    run_value: u8,
    run_left: u64,
    /// Packed columns only: the next index position in the bit stream.
    idx: usize,
    remaining: usize,
}

impl<'a> U8Column<'a> {
    fn new(section: Section<'a>, n: usize) -> Self {
        U8Column {
            section,
            pos: 0,
            run_value: 0,
            run_left: 0,
            idx: 0,
            remaining: n,
        }
    }
}

impl Iterator for U8Column<'_> {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        match self.section.encoding {
            ENC_PLAIN => {
                let b = self.section.data.get(self.pos).copied()?;
                self.pos += 1;
                Some(b)
            }
            ENC_PACKED => {
                let data = self.section.data;
                let dict_len = usize::from(*data.first()?);
                let bits = packed_bits(dict_len);
                if bits == 0 {
                    return data.get(1).copied();
                }
                let dict = data.get(1..1 + dict_len)?;
                let packed = data.get(1 + dict_len..)?;
                let index = read_packed_index(packed, self.idx, bits);
                self.idx += 1;
                dict.get(usize::from(index)).copied()
            }
            _ => {
                if self.run_left == 0 {
                    self.run_left = read_varint(self.section.data, &mut self.pos).ok()?;
                    self.run_value = self.section.data.get(self.pos).copied()?;
                    self.pos += 1;
                }
                self.run_left -= 1;
                Some(self.run_value)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Reads the `i`-th `bits`-wide LSB-first index from a packed bit
/// stream (`bits` ≤ 8, so the window spans at most two bytes).
fn read_packed_index(packed: &[u8], i: usize, bits: u32) -> u8 {
    let bit = i * bits as usize;
    let byte = bit / 8;
    let shift = (bit % 8) as u32;
    let mut word = u32::from(packed.get(byte).copied().unwrap_or(0));
    word |= u32::from(packed.get(byte + 1).copied().unwrap_or(0)) << 8;
    ((word >> shift) & ((1u32 << bits) - 1)) as u8
}

fn read_section<'a>(
    payload: &'a [u8],
    pos: &mut usize,
    expected_id: u8,
) -> Result<Section<'a>, CodecError> {
    let &id = payload
        .get(*pos)
        .ok_or(CodecError::Truncated { at: *pos })?;
    if id != expected_id {
        return Err(CodecError::Malformed(format!(
            "column id {id} where {expected_id} was expected"
        )));
    }
    let &encoding = payload
        .get(*pos + 1)
        .ok_or(CodecError::Truncated { at: *pos + 1 })?;
    *pos += 2;
    let len = read_varint(payload, pos)?;
    let len = usize::try_from(len).map_err(|_| CodecError::Truncated { at: *pos })?;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= payload.len())
        .ok_or(CodecError::Truncated { at: *pos })?;
    let data = &payload[*pos..end];
    *pos = end;
    Ok(Section { encoding, data })
}

/// Decodes a complete BDBC `TraceChunk` record into owned columns.
pub fn decode_trace_chunk(record: &[u8]) -> Result<TraceChunkColumns, CodecError> {
    let payload = decode_record_of(RecordKind::TraceChunk, record)?;
    Ok(TraceChunkView::parse(payload)?.to_columns())
}

/// The JSON interchange form of a trace chunk:
/// `{"n":…,"pc":[…],"arg":[…],"kind":[…],"aux":[…]}`.
pub fn trace_chunk_to_json(columns: &TraceChunkColumns) -> json::Value {
    let uints = |v: &[u64]| json::Value::Array(v.iter().map(|&x| json::Value::UInt(x)).collect());
    let bytes =
        |v: &[u8]| json::Value::Array(v.iter().map(|&x| json::Value::UInt(u64::from(x))).collect());
    json::Value::object(vec![
        ("n", json::Value::UInt(columns.len() as u64)),
        ("pc", uints(&columns.pc)),
        ("arg", uints(&columns.arg)),
        ("kind", bytes(&columns.kind)),
        ("aux", bytes(&columns.aux)),
    ])
}

/// Inverse of [`trace_chunk_to_json`], validating lengths and ranges.
pub fn trace_chunk_from_json(value: &json::Value) -> Result<TraceChunkColumns, CodecError> {
    let n = value
        .get("n")
        .and_then(json::Value::as_u64)
        .ok_or_else(|| CodecError::Malformed("trace chunk needs an `n` count".to_owned()))?;
    let u64s = |key: &str| -> Result<Vec<u64>, CodecError> {
        let items = value
            .get(key)
            .and_then(json::Value::as_array)
            .ok_or_else(|| CodecError::Malformed(format!("trace chunk needs a `{key}` array")))?;
        items
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| CodecError::Malformed(format!("non-integer in `{key}`")))
            })
            .collect()
    };
    let columns = TraceChunkColumns {
        pc: u64s("pc")?,
        arg: u64s("arg")?,
        kind: u64s("kind")?
            .into_iter()
            .map(|v| {
                u8::try_from(v).map_err(|_| CodecError::Malformed("kind byte > 255".to_owned()))
            })
            .collect::<Result<_, _>>()?,
        aux: u64s("aux")?
            .into_iter()
            .map(|v| {
                u8::try_from(v).map_err(|_| CodecError::Malformed("aux byte > 255".to_owned()))
            })
            .collect::<Result<_, _>>()?,
    };
    if columns.len() as u64 != n
        || columns.arg.len() != columns.len()
        || columns.kind.len() != columns.len()
        || columns.aux.len() != columns.len()
    {
        return Err(CodecError::Malformed(
            "trace chunk column lengths disagree with `n`".to_owned(),
        ));
    }
    Ok(columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceChunkColumns {
        // Locality-shaped data: pc walks forward in small steps, args hit
        // a strided buffer, kind/aux run in streaks — like a real trace.
        let n = 1000usize;
        let mut columns = TraceChunkColumns::default();
        for i in 0..n {
            columns.pc.push(0x40_0000 + (i as u64) * 4);
            columns.arg.push(0x7f00_0000 + (i as u64) * 8);
            columns.kind.push((i / 100) as u8);
            columns.aux.push(8);
        }
        columns
    }

    fn encode(columns: &TraceChunkColumns) -> Vec<u8> {
        encode_trace_chunk(&columns.pc, &columns.arg, &columns.kind, &columns.aux).unwrap()
    }

    #[test]
    fn roundtrip_through_binary_and_json_is_lossless() {
        let columns = sample();
        let record = encode(&columns);
        assert_eq!(decode_trace_chunk(&record).unwrap(), columns);
        let via_json = trace_chunk_from_json(&trace_chunk_to_json(&columns)).unwrap();
        assert_eq!(
            encode(&via_json),
            record,
            "binary → JSON → binary must reproduce identical bytes"
        );
    }

    #[test]
    fn columnar_beats_json_by_an_order_of_magnitude() {
        let columns = sample();
        let record = encode(&columns);
        let json_len = trace_chunk_to_json(&columns).encode().len();
        assert!(
            record.len() * 10 <= json_len,
            "need ≥10x: binary {} vs JSON {json_len}",
            record.len()
        );
    }

    #[test]
    fn zero_copy_view_iterates_without_materializing() {
        let columns = sample();
        let record = encode(&columns);
        let payload = crate::decode_record_of(RecordKind::TraceChunk, &record).unwrap();
        let view = TraceChunkView::parse(payload).unwrap();
        assert_eq!(view.len(), columns.len());
        assert!(view.pc().eq(columns.pc.iter().copied()));
        assert!(view.arg().eq(columns.arg.iter().copied()));
        assert!(view.kind().eq(columns.kind.iter().copied()));
        assert!(view.aux().eq(columns.aux.iter().copied()));
    }

    #[test]
    fn incompressible_columns_fall_back_to_plain() {
        // Pseudo-random data defeats delta and RLE; the encoder must
        // still round-trip via the plain sections.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 256usize;
        let mut columns = TraceChunkColumns::default();
        for _ in 0..n {
            columns.pc.push(next());
            columns.arg.push(next());
            columns.kind.push((next() & 0xff) as u8);
            columns.aux.push((next() & 0xff) as u8);
        }
        let record = encode(&columns);
        assert_eq!(decode_trace_chunk(&record).unwrap(), columns);
    }

    #[test]
    fn empty_chunk_roundtrips() {
        let columns = TraceChunkColumns::default();
        let record = encode(&columns);
        assert_eq!(decode_trace_chunk(&record).unwrap(), columns);
    }

    #[test]
    fn mismatched_column_lengths_are_rejected() {
        assert!(encode_trace_chunk(&[1, 2], &[1], &[0, 0], &[0, 0]).is_err());
    }

    #[test]
    fn truncation_and_bit_flips_never_panic() {
        let record = encode(&sample());
        for cut in 0..record.len() {
            let _ = decode_trace_chunk(&record[..cut]);
        }
        for bit in (0..record.len() * 8).step_by(7) {
            let mut damaged = record.clone();
            damaged[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode_trace_chunk(&damaged).is_err(),
                "bit {bit} flip must be detected"
            );
        }
    }
}
