//! Binary encoding of the canonical JSON tree ([`crate::json::Value`]).
//!
//! A bval payload is a string table followed by a tag-prefixed value
//! tree. Strings (object keys and string values) are interned in
//! first-use order, so repeated keys — the dominant cost of JSON record
//! streams — are written once and referenced by varint index.
//!
//! ```text
//! payload := string-table value
//! string-table := varint count, count × (varint len, len × utf8 byte)
//! value := 0x00                          null
//!        | 0x01 | 0x02                   false | true
//!        | 0x03 varint                   unsigned integer
//!        | 0x04 8×byte                   f64 (LE bit pattern, finite)
//!        | 0x05 varint                   string (table index)
//!        | 0x06 varint count, values     array
//!        | 0x07 varint count,
//!          count × (varint key, value)   object (insertion order)
//! ```
//!
//! The encoding is bijective with the canonical JSON form: non-finite
//! floats are normalized to the same sentinel strings (`"NaN"`, `"inf"`,
//! `"-inf"`) the JSON writer emits, so `binary → JSON → binary` always
//! reproduces the identical bytes.

use crate::json::Value;
use crate::varint::{read_varint, write_varint};
use crate::CodecError;

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_UINT: u8 = 0x03;
const TAG_FLOAT: u8 = 0x04;
const TAG_STR: u8 = 0x05;
const TAG_ARRAY: u8 = 0x06;
const TAG_OBJECT: u8 = 0x07;

/// Nesting bound: deep enough for any real record, shallow enough that
/// hostile input cannot overflow the decoder's stack.
const MAX_DEPTH: usize = 256;

/// Non-finite floats encode as their JSON sentinel string, keeping the
/// two forms bijective.
fn float_sentinel(f: f64) -> Option<&'static str> {
    if f.is_nan() {
        Some("NaN")
    } else if f == f64::INFINITY {
        Some("inf")
    } else if f == f64::NEG_INFINITY {
        Some("-inf")
    } else {
        None
    }
}

/// Encodes `value` as a bval payload (string table + tree).
pub fn encode_value(value: &Value) -> Vec<u8> {
    let mut strings: Vec<&str> = Vec::new();
    collect_strings(value, &mut strings);
    let mut out = Vec::new();
    write_varint(strings.len() as u64, &mut out);
    for s in &strings {
        write_varint(s.len() as u64, &mut out);
        out.extend_from_slice(s.as_bytes());
    }
    write_tree(value, &strings, &mut out);
    out
}

fn intern<'a>(s: &'a str, strings: &mut Vec<&'a str>) {
    if !strings.contains(&s) {
        strings.push(s);
    }
}

fn collect_strings<'a>(value: &'a Value, strings: &mut Vec<&'a str>) {
    match value {
        Value::Null | Value::Bool(_) | Value::UInt(_) => {}
        Value::Float(f) => {
            if let Some(sentinel) = float_sentinel(*f) {
                intern(sentinel, strings);
            }
        }
        Value::Str(s) => intern(s, strings),
        Value::Array(items) => {
            for item in items {
                collect_strings(item, strings);
            }
        }
        Value::Object(pairs) => {
            for (k, v) in pairs {
                intern(k, strings);
                collect_strings(v, strings);
            }
        }
    }
}

fn string_index(s: &str, strings: &[&str]) -> u64 {
    // The collection pass interned every string, so the lookup always
    // succeeds; 0 is unreachable fallback, not a sentinel.
    strings.iter().position(|&t| t == s).unwrap_or(0) as u64
}

fn write_tree(value: &Value, strings: &[&str], out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::UInt(u) => {
            out.push(TAG_UINT);
            write_varint(*u, out);
        }
        Value::Float(f) => match float_sentinel(*f) {
            Some(sentinel) => {
                out.push(TAG_STR);
                write_varint(string_index(sentinel, strings), out);
            }
            None => {
                out.push(TAG_FLOAT);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
        },
        Value::Str(s) => {
            out.push(TAG_STR);
            write_varint(string_index(s, strings), out);
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            write_varint(items.len() as u64, out);
            for item in items {
                write_tree(item, strings, out);
            }
        }
        Value::Object(pairs) => {
            out.push(TAG_OBJECT);
            write_varint(pairs.len() as u64, out);
            for (k, v) in pairs {
                write_varint(string_index(k, strings), out);
                write_tree(v, strings, out);
            }
        }
    }
}

/// Decodes a bval payload, requiring it to be consumed exactly.
pub fn decode_value(bytes: &[u8]) -> Result<Value, CodecError> {
    let mut pos = 0usize;
    let count = read_varint(bytes, &mut pos)?;
    let count = usize::try_from(count).map_err(|_| CodecError::Truncated { at: pos })?;
    // Each table entry costs at least one length byte, so `count` can
    // never legitimately exceed the remaining input.
    if count > bytes.len().saturating_sub(pos) {
        return Err(CodecError::Truncated { at: pos });
    }
    let mut strings = Vec::with_capacity(count);
    for _ in 0..count {
        let len = read_varint(bytes, &mut pos)?;
        let len = usize::try_from(len).map_err(|_| CodecError::Truncated { at: pos })?;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or(CodecError::Truncated { at: pos })?;
        let s = std::str::from_utf8(&bytes[pos..end])
            .map_err(|_| CodecError::Malformed(format!("non-UTF-8 string at byte {pos}")))?;
        strings.push(s.to_owned());
        pos = end;
    }
    let value = read_tree(bytes, &mut pos, &strings, 0)?;
    if pos != bytes.len() {
        return Err(CodecError::TrailingBytes { at: pos });
    }
    Ok(value)
}

fn read_tree(
    bytes: &[u8],
    pos: &mut usize,
    strings: &[String],
    depth: usize,
) -> Result<Value, CodecError> {
    if depth > MAX_DEPTH {
        return Err(CodecError::Malformed(format!(
            "nesting deeper than {MAX_DEPTH}"
        )));
    }
    let &tag = bytes.get(*pos).ok_or(CodecError::Truncated { at: *pos })?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_UINT => Ok(Value::UInt(read_varint(bytes, pos)?)),
        TAG_FLOAT => {
            let end = pos
                .checked_add(8)
                .filter(|&e| e <= bytes.len())
                .ok_or(CodecError::Truncated { at: *pos })?;
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&bytes[*pos..end]);
            *pos = end;
            let f = f64::from_bits(u64::from_le_bytes(raw));
            if !f.is_finite() {
                return Err(CodecError::Malformed(
                    "non-finite float must use its string sentinel".to_owned(),
                ));
            }
            Ok(Value::Float(f))
        }
        TAG_STR => {
            let idx = read_varint(bytes, pos)?;
            let s = usize::try_from(idx)
                .ok()
                .and_then(|i| strings.get(i))
                .ok_or_else(|| {
                    CodecError::Malformed(format!("string index {idx} out of table range"))
                })?;
            Ok(Value::Str(s.clone()))
        }
        TAG_ARRAY => {
            let count = read_varint(bytes, pos)?;
            let count = usize::try_from(count).map_err(|_| CodecError::Truncated { at: *pos })?;
            if count > bytes.len().saturating_sub(*pos) {
                return Err(CodecError::Truncated { at: *pos });
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(read_tree(bytes, pos, strings, depth + 1)?);
            }
            Ok(Value::Array(items))
        }
        TAG_OBJECT => {
            let count = read_varint(bytes, pos)?;
            let count = usize::try_from(count).map_err(|_| CodecError::Truncated { at: *pos })?;
            if count > bytes.len().saturating_sub(*pos) {
                return Err(CodecError::Truncated { at: *pos });
            }
            let mut pairs = Vec::with_capacity(count);
            for _ in 0..count {
                let idx = read_varint(bytes, pos)?;
                let key = usize::try_from(idx)
                    .ok()
                    .and_then(|i| strings.get(i))
                    .ok_or_else(|| {
                        CodecError::Malformed(format!("key index {idx} out of table range"))
                    })?;
                pairs.push((key.clone(), read_tree(bytes, pos, strings, depth + 1)?));
            }
            Ok(Value::Object(pairs))
        }
        other => Err(CodecError::Malformed(format!(
            "unknown value tag 0x{other:02x} at byte {}",
            *pos - 1
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> Value {
        Value::object(vec![
            ("id", Value::Str("H-WordCount".into())),
            ("count", Value::UInt(u64::MAX)),
            ("pi", Value::Float(std::f64::consts::PI)),
            ("neg_zero", Value::Float(-0.0)),
            ("flag", Value::Bool(true)),
            ("gap", Value::Null),
            (
                "nested",
                Value::Array(vec![
                    Value::object(vec![("id", Value::Str("H-WordCount".into()))]),
                    Value::Float(f64::NAN),
                    Value::UInt(0),
                ]),
            ),
        ])
    }

    #[test]
    fn binary_json_binary_is_lossless() {
        let binary = encode_value(&sample());
        let decoded = decode_value(&binary).unwrap();
        let via_json = json::parse(&decoded.encode()).unwrap();
        assert_eq!(
            encode_value(&via_json),
            binary,
            "binary → JSON → binary must reproduce identical bytes"
        );
    }

    #[test]
    fn repeated_keys_are_interned_once() {
        let wide = Value::Array(
            (0..64)
                .map(|i| Value::object(vec![("instructions", Value::UInt(i))]))
                .collect(),
        );
        let binary = encode_value(&wide);
        let json_len = wide.encode().len();
        assert!(
            binary.len() * 3 < json_len,
            "interning should beat JSON by >3x on key-heavy streams \
             ({} vs {json_len})",
            binary.len()
        );
        assert_eq!(decode_value(&binary).unwrap(), wide);
    }

    #[test]
    fn truncation_at_every_offset_is_a_clean_error() {
        let binary = encode_value(&sample());
        for cut in 0..binary.len() {
            assert!(
                decode_value(&binary[..cut]).is_err(),
                "cut at {cut} must fail cleanly"
            );
        }
    }

    #[test]
    fn hostile_payloads_fail_without_panicking() {
        // Unknown tag, bad string index, huge declared counts, deep
        // nesting, raw non-finite float — all clean errors.
        assert!(decode_value(&[0x00, 0xff]).is_err());
        assert!(decode_value(&[0x00, TAG_STR, 0x05]).is_err());
        assert!(decode_value(&[0x00, TAG_ARRAY, 0xff, 0xff, 0x7f]).is_err());
        let mut deep = vec![0x00];
        deep.extend(std::iter::repeat_n([TAG_ARRAY, 0x01], 400).flatten());
        deep.push(TAG_NULL);
        assert!(decode_value(&deep).is_err());
        let mut raw_nan = vec![0x00, TAG_FLOAT];
        raw_nan.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(decode_value(&raw_nan).is_err());
    }
}
