//! Zipfian sampling over a finite rank space.
//!
//! Word frequencies in natural-language corpora and key popularity in
//! key-value services both follow Zipf-like laws; this module provides the
//! shared sampler. Implemented in-crate (rather than pulling `rand_distr`)
//! so the whole workspace stays within the small allowed dependency set.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Sampling uses inverse-CDF lookup over precomputed cumulative weights,
/// which is exact and `O(log n)` per sample.
///
/// # Examples
///
/// ```
/// use bdb_datagen::zipf::Zipf;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(1000, 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf rank space must be non-empty");
        assert!(
            s.is_finite() && s >= 0.0,
            "zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point drift on the final bucket.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of ranks in the distribution.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the rank space is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..self.len()`; rank 0 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen::<f64>();
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.len()`.
    pub fn pmf(&self, rank: usize) -> f64 {
        let hi = self.cdf[rank];
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let z = Zipf::new(100, 1.2);
        for w in z.cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = Zipf::new(50, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
    }

    #[test]
    fn samples_are_in_range_and_skewed() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut head = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            let r = z.sample(&mut rng);
            assert!(r < 1000);
            if r < 10 {
                head += 1;
            }
        }
        // With s=1 over 1000 ranks, the top-10 ranks carry ~39% of the mass.
        let frac = head as f64 / N as f64;
        assert!(frac > 0.30 && frac < 0.50, "head fraction {frac}");
    }

    #[test]
    fn uniform_exponent_zero() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let z = Zipf::new(100, 0.9);
        let draw = |seed| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            (0..32).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
