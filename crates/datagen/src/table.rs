//! Relational table generators — the stand-ins for the e-commerce
//! transaction tables (Table 1 rows 5) and the ProfSearch résumé set
//! (Table 1 row 6).

use crate::relational::{Field, FieldKind, Row, Schema, Table};
use crate::zipf::Zipf;
use rand::{Rng, SeedableRng};

/// Generates the e-commerce `orders` table.
///
/// Mirrors the paper's "Table 1: 4 columns" order table: order id, buyer id,
/// date, and total amount. Buyer popularity is Zipf-skewed.
///
/// # Examples
///
/// ```
/// let t = bdb_datagen::table::ecommerce_orders(100, 42);
/// assert_eq!(t.len(), 100);
/// assert_eq!(t.schema().arity(), 4);
/// ```
pub fn ecommerce_orders(n_rows: usize, seed: u64) -> Table {
    let schema = Schema::new([
        ("order_id", FieldKind::I64),
        ("buyer_id", FieldKind::I64),
        ("date", FieldKind::I64),
        ("amount", FieldKind::F64),
    ]);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let buyers = Zipf::new(4_096.max(n_rows / 8).max(1), 0.9);
    let rows = (0..n_rows)
        .map(|i| {
            vec![
                Field::I64(i as i64),
                Field::I64(buyers.sample(&mut rng) as i64),
                Field::I64(20_130_101 + rng.gen_range(0..365)),
                Field::F64((rng.gen_range(100..1_000_000) as f64) / 100.0),
            ]
        })
        .collect();
    Table::from_rows(schema, rows)
}

/// Generates the e-commerce `order_items` table.
///
/// Mirrors the paper's "Table 2: 6 columns" item table: item id, order id,
/// goods id, quantity, price, and category. Roughly `items_per_order` items
/// reference each order in `orders`.
///
/// # Panics
///
/// Panics if `orders` is empty or `items_per_order == 0`.
pub fn ecommerce_items(orders: &Table, items_per_order: usize, seed: u64) -> Table {
    assert!(!orders.is_empty(), "orders table must be non-empty");
    assert!(items_per_order > 0, "need at least one item per order");
    let schema = Schema::new([
        ("item_id", FieldKind::I64),
        ("order_id", FieldKind::I64),
        ("goods_id", FieldKind::I64),
        ("quantity", FieldKind::I64),
        ("price", FieldKind::F64),
        ("category", FieldKind::Str),
    ]);
    const CATEGORIES: [&str; 8] = [
        "books", "media", "apparel", "garden", "toys", "sports", "office", "grocery",
    ];
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let goods = Zipf::new(2_048, 1.0);
    let mut rows = Vec::new();
    let mut item_id = 0i64;
    for order in orders.rows() {
        // bdb-lint: allow(panic-hygiene): column 0 is I64 by construction above.
        let order_id = order[0].as_i64().expect("order_id is i64");
        let n = 1 + rng.gen_range(0..2 * items_per_order);
        for _ in 0..n {
            rows.push(vec![
                Field::I64(item_id),
                Field::I64(order_id),
                Field::I64(goods.sample(&mut rng) as i64),
                Field::I64(rng.gen_range(1..6)),
                Field::F64((rng.gen_range(99..50_000) as f64) / 100.0),
                Field::Str(CATEGORIES[rng.gen_range(0..CATEGORIES.len())].to_owned()),
            ]);
            item_id += 1;
        }
    }
    Table::from_rows(schema, rows)
}

/// Generates the ProfSearch-like résumé table.
///
/// Each record is a fixed-layout person résumé (the paper uses 1128-byte
/// key-value records); we keep id, name, institution, field, and seniority.
pub fn profsearch_resumes(n_rows: usize, seed: u64) -> Table {
    let schema = Schema::new([
        ("person_id", FieldKind::I64),
        ("name", FieldKind::Str),
        ("institution", FieldKind::Str),
        ("field", FieldKind::Str),
        ("years", FieldKind::I64),
    ]);
    const FIELDS: [&str; 10] = [
        "architecture",
        "systems",
        "databases",
        "networking",
        "theory",
        "ml",
        "security",
        "hci",
        "graphics",
        "bioinformatics",
    ];
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let inst = Zipf::new(512, 1.1);
    let rows = (0..n_rows)
        .map(|i| {
            vec![
                Field::I64(i as i64),
                Field::Str(format!("person-{i:08}")),
                Field::Str(format!("institute-{:04}", inst.sample(&mut rng))),
                Field::Str(FIELDS[rng.gen_range(0..FIELDS.len())].to_owned()),
                Field::I64(rng.gen_range(0..40)),
            ]
        })
        .collect();
    Table::from_rows(schema, rows)
}

/// Generates a numeric sample matrix for the clustering/classification
/// kernels (K-means, Naive Bayes): `n` points of `dim` features drawn from
/// `k` Gaussian-ish blobs, plus the blob label of each point.
///
/// The Box–Muller transform is implemented inline to avoid a `rand_distr`
/// dependency.
///
/// # Panics
///
/// Panics if `dim == 0` or `k == 0`.
pub fn sample_points(n: usize, dim: usize, k: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
    assert!(
        dim > 0 && k > 0,
        "dimension and cluster count must be positive"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect())
        .collect();
    let gaussian = |rng: &mut rand::rngs::StdRng| -> f64 {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % k;
        points.push(centers[c].iter().map(|&m| m + gaussian(&mut rng)).collect());
        labels.push(c);
    }
    (points, labels)
}

/// Generates Amazon-review-like labelled documents for Naive Bayes:
/// each document is a bag of word ids plus a class label (e.g. star rating
/// bucket), with class-conditional word distributions.
pub fn labelled_documents(
    n_docs: usize,
    vocab: usize,
    n_classes: usize,
    seed: u64,
) -> (Vec<Vec<u32>>, Vec<usize>) {
    assert!(
        vocab > 0 && n_classes > 0,
        "vocab and classes must be positive"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Each class gets its own Zipf over a rotated vocabulary so classes are
    // separable but overlapping.
    let zipf = Zipf::new(vocab, 1.0);
    let mut docs = Vec::with_capacity(n_docs);
    let mut labels = Vec::with_capacity(n_docs);
    for i in 0..n_docs {
        let class = i % n_classes;
        let rotation = (class * vocab) / n_classes;
        let len = 30 + rng.gen_range(0..70);
        let doc = (0..len)
            .map(|_| ((zipf.sample(&mut rng) + rotation) % vocab) as u32)
            .collect();
        docs.push(doc);
        labels.push(class);
    }
    (docs, labels)
}

/// Row helper: extracts column `idx` as `i64`.
///
/// # Panics
///
/// Panics if the column is missing or not an integer.
pub fn col_i64(row: &Row, idx: usize) -> i64 {
    // bdb-lint: allow(panic-hygiene): documented panic; schema misuse.
    row[idx].as_i64().expect("column is i64")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_deterministic_and_valid() {
        let a = ecommerce_orders(200, 5);
        let b = ecommerce_orders(200, 5);
        assert_eq!(a, b);
        assert!(a.rows().iter().all(|r| a.schema().validates(r)));
    }

    #[test]
    fn items_reference_existing_orders() {
        let orders = ecommerce_orders(50, 1);
        let items = ecommerce_items(&orders, 3, 2);
        let max_order = orders.len() as i64;
        assert!(items.rows().iter().all(|r| col_i64(r, 1) < max_order));
        assert!(items.len() >= 50);
    }

    #[test]
    fn resumes_have_fixed_arity() {
        let t = profsearch_resumes(64, 9);
        assert_eq!(t.schema().arity(), 5);
        assert_eq!(t.len(), 64);
    }

    #[test]
    fn sample_points_shape() {
        let (pts, labels) = sample_points(90, 4, 3, 11);
        assert_eq!(pts.len(), 90);
        assert_eq!(labels.len(), 90);
        assert!(pts.iter().all(|p| p.len() == 4));
        assert!(labels.iter().all(|&l| l < 3));
    }

    #[test]
    fn labelled_documents_classes_cycle() {
        let (docs, labels) = labelled_documents(10, 100, 4, 3);
        assert_eq!(docs.len(), 10);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[5], 1);
        assert!(docs.iter().all(|d| d.iter().all(|&w| (w as usize) < 100)));
    }

    #[test]
    fn buyer_popularity_is_skewed() {
        let t = ecommerce_orders(5_000, 13);
        let mut counts = std::collections::HashMap::new();
        for r in t.rows() {
            *counts.entry(col_i64(r, 1)).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        let mean = t.len() / counts.len().max(1);
        assert!(max > 4 * mean, "max {max} mean {mean}");
    }
}
