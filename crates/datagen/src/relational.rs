//! Minimal relational data model shared by the table generators, the SQL
//! engine in `bdb-stacks`, and the interactive-analytics workloads.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldKind {
    /// 64-bit signed integer.
    I64,
    /// 64-bit float.
    F64,
    /// UTF-8 string.
    Str,
}

/// A single cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Field {
    /// 64-bit signed integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// UTF-8 string.
    Str(String),
}

impl Field {
    /// The kind of this value.
    pub fn kind(&self) -> FieldKind {
        match self {
            Field::I64(_) => FieldKind::I64,
            Field::F64(_) => FieldKind::F64,
            Field::Str(_) => FieldKind::Str,
        }
    }

    /// Integer value, if this is an [`Field::I64`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Field::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Float value, if this is an [`Field::F64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Field::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this is a [`Field::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Field::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Approximate encoded size in bytes (used for I/O accounting).
    pub fn byte_size(&self) -> usize {
        match self {
            Field::I64(_) | Field::F64(_) => 8,
            Field::Str(s) => s.len(),
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::I64(v) => write!(f, "{v}"),
            Field::F64(v) => write!(f, "{v:.4}"),
            Field::Str(v) => f.write_str(v),
        }
    }
}

/// A row is a vector of cells matching a [`Schema`].
pub type Row = Vec<Field>;

/// Column names and kinds of a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<(String, FieldKind)>,
}

impl Schema {
    /// Builds a schema from `(name, kind)` pairs.
    pub fn new<I, S>(columns: I) -> Self
    where
        I: IntoIterator<Item = (S, FieldKind)>,
        S: Into<String>,
    {
        Self {
            columns: columns.into_iter().map(|(n, k)| (n.into(), k)).collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Name of column `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.arity()`.
    pub fn column_name(&self, i: usize) -> &str {
        &self.columns[i].0
    }

    /// Kind of column `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.arity()`.
    pub fn column_kind(&self, i: usize) -> FieldKind {
        self.columns[i].1
    }

    /// Iterator over `(name, kind)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, FieldKind)> {
        self.columns.iter().map(|(n, k)| (n.as_str(), *k))
    }

    /// Checks that `row` matches this schema.
    pub fn validates(&self, row: &Row) -> bool {
        row.len() == self.arity()
            && row
                .iter()
                .zip(&self.columns)
                .all(|(f, (_, k))| f.kind() == *k)
    }
}

/// An in-memory table: a schema plus rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
        }
    }

    /// Creates a table from rows, validating each against the schema.
    ///
    /// # Panics
    ///
    /// Panics if any row does not match the schema.
    pub fn from_rows(schema: Schema, rows: Vec<Row>) -> Self {
        for (i, row) in rows.iter().enumerate() {
            assert!(schema.validates(row), "row {i} does not match schema");
        }
        Self { schema, rows }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows of the table.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row does not match the schema.
    pub fn push(&mut self, row: Row) {
        assert!(self.schema.validates(&row), "row does not match schema");
        self.rows.push(row);
    }

    /// Approximate encoded size in bytes.
    pub fn byte_size(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().map(Field::byte_size).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new([
            ("id", FieldKind::I64),
            ("name", FieldKind::Str),
            ("score", FieldKind::F64),
        ])
    }

    #[test]
    fn schema_lookup() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.column_name(2), "score");
        assert_eq!(s.column_kind(0), FieldKind::I64);
    }

    #[test]
    fn validation_accepts_matching_rows() {
        let s = schema();
        assert!(s.validates(&vec![
            Field::I64(1),
            Field::Str("a".into()),
            Field::F64(0.5)
        ]));
        assert!(!s.validates(&vec![Field::I64(1), Field::I64(2), Field::F64(0.5)]));
        assert!(!s.validates(&vec![Field::I64(1)]));
    }

    #[test]
    #[should_panic(expected = "does not match schema")]
    fn push_rejects_bad_row() {
        let mut t = Table::new(schema());
        t.push(vec![Field::Str("oops".into())]);
    }

    #[test]
    fn byte_size_sums_fields() {
        let mut t = Table::new(schema());
        t.push(vec![
            Field::I64(1),
            Field::Str("abcd".into()),
            Field::F64(1.0),
        ]);
        assert_eq!(t.byte_size(), 8 + 4 + 8);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn field_accessors() {
        assert_eq!(Field::I64(3).as_i64(), Some(3));
        assert_eq!(Field::F64(2.5).as_f64(), Some(2.5));
        assert_eq!(Field::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Field::I64(3).as_str(), None);
        assert_eq!(Field::Str("x".into()).kind(), FieldKind::Str);
        assert_eq!(format!("{}", Field::I64(7)), "7");
    }
}
