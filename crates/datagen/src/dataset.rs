//! The data-set catalog reproducing the paper's Table 1.
//!
//! Seven data sets feed the seventeen representative workloads; each entry
//! records the original source, our synthetic generator, and the default
//! scale used in the reproduction.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one of the seven source data sets (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataSetId {
    /// Row 1: Wikipedia entries (4.3 M English articles) → Zipf text.
    Wikipedia,
    /// Row 2: Amazon movie reviews (7.9 M reviews) → labelled Zipf text.
    AmazonReviews,
    /// Row 3: Google web graph (875 713 nodes, 5 105 039 edges) → power-law graph.
    GoogleWebGraph,
    /// Row 4: Facebook social network (4 039 nodes, 88 234 edges) → power-law graph.
    FacebookSocial,
    /// Row 5: E-commerce transactions (order + item tables) → relational tables.
    EcommerceTransactions,
    /// Row 6: ProfSearch person résumés (278 956 résumés) → relational table.
    ProfSearchResumes,
    /// Row 7: TPC-DS web tables (26 tables; we model the 4 the queries touch).
    TpcdsWeb,
}

impl DataSetId {
    /// All seven data sets in Table 1 order.
    pub const ALL: [DataSetId; 7] = [
        DataSetId::Wikipedia,
        DataSetId::AmazonReviews,
        DataSetId::GoogleWebGraph,
        DataSetId::FacebookSocial,
        DataSetId::EcommerceTransactions,
        DataSetId::ProfSearchResumes,
        DataSetId::TpcdsWeb,
    ];
}

impl fmt::Display for DataSetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataSetId::Wikipedia => "Wikipedia Entries",
            DataSetId::AmazonReviews => "Amazon Movie Reviews",
            DataSetId::GoogleWebGraph => "Google Web Graph",
            DataSetId::FacebookSocial => "Facebook Social Network",
            DataSetId::EcommerceTransactions => "E-commerce Transaction Data",
            DataSetId::ProfSearchResumes => "ProfSearch Person Resumes",
            DataSetId::TpcdsWeb => "TPC-DS WebTable Data",
        };
        f.write_str(name)
    }
}

/// One row of the reproduced Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataSetDescriptor {
    /// Which data set.
    pub id: DataSetId,
    /// The paper's description of the original data.
    pub original: &'static str,
    /// The generator standing in for BDGS.
    pub generator: &'static str,
    /// Default record count at reproduction scale.
    pub default_records: usize,
}

/// The catalog of all seven data sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataSetCatalog;

impl DataSetCatalog {
    /// Creates the catalog.
    pub fn new() -> Self {
        Self
    }

    /// Descriptor for one data set.
    pub fn descriptor(&self, id: DataSetId) -> DataSetDescriptor {
        let (original, generator, default_records) = match id {
            DataSetId::Wikipedia => (
                "4,300,000 English articles",
                "Zipf text generator (text::TextGen)",
                4_000,
            ),
            DataSetId::AmazonReviews => (
                "7,911,684 reviews",
                "labelled Zipf text (table::labelled_documents)",
                4_000,
            ),
            DataSetId::GoogleWebGraph => (
                "875,713 nodes, 5,105,039 edges",
                "preferential attachment (graph::GraphGen)",
                8_000,
            ),
            DataSetId::FacebookSocial => (
                "4,039 nodes, 88,234 edges",
                "preferential attachment (graph::GraphGen)",
                4_039,
            ),
            DataSetId::EcommerceTransactions => (
                "orders: 4 cols x 38,658 rows; items: 6 cols x 242,735 rows",
                "table::ecommerce_orders + table::ecommerce_items",
                8_000,
            ),
            DataSetId::ProfSearchResumes => ("278,956 resumes", "table::profsearch_resumes", 6_000),
            DataSetId::TpcdsWeb => ("26 tables (DSGen)", "tpcds::generate (star schema)", 20_000),
        };
        DataSetDescriptor {
            id,
            original,
            generator,
            default_records,
        }
    }

    /// Iterator over all descriptors in Table 1 order.
    pub fn iter(&self) -> impl Iterator<Item = DataSetDescriptor> + '_ {
        DataSetId::ALL.iter().map(|&id| self.descriptor(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_seven_rows() {
        let c = DataSetCatalog::new();
        assert_eq!(c.iter().count(), 7);
    }

    #[test]
    fn descriptors_are_consistent() {
        let c = DataSetCatalog::new();
        for d in c.iter() {
            assert_eq!(c.descriptor(d.id), d);
            assert!(d.default_records > 0);
            assert!(!d.original.is_empty());
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(DataSetId::TpcdsWeb.to_string(), "TPC-DS WebTable Data");
        assert_eq!(DataSetId::Wikipedia.to_string(), "Wikipedia Entries");
    }
}
