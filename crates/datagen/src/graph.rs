//! Power-law directed graphs — the stand-in for the Google web graph and
//! the Facebook social-network data sets.
//!
//! Generation uses a seeded preferential-attachment process, which yields
//! the heavy-tailed in-degree distribution that web and social graphs share.
//! Graphs are stored in CSR (compressed sparse row) form, the layout the
//! PageRank and connected-components kernels traverse.

use rand::{Rng, SeedableRng};

/// A directed graph in CSR form.
///
/// Out-edges of vertex `v` are `edges[offsets[v]..offsets[v + 1]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<u32>,
    edges: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an edge list over `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edge_list: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u32; n];
        for &(src, dst) in edge_list {
            assert!(
                (src as usize) < n && (dst as usize) < n,
                "edge endpoint out of range"
            );
            degree[src as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut edges = vec![0u32; edge_list.len()];
        for &(src, dst) in edge_list {
            let c = &mut cursor[src as usize];
            edges[*c as usize] = dst;
            *c += 1;
        }
        Self { offsets, edges }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Out-neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.vertex_count()`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.edges[lo..hi]
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.vertex_count()`.
    pub fn out_degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Iterator over all `(src, dst)` edges.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.vertex_count() as u32)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&d| (v, d)))
    }
}

/// Configuration for [`GraphGen`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphGenConfig {
    /// Mean out-degree (edges per vertex added during attachment).
    pub mean_degree: usize,
    /// Fraction of edges attached uniformly instead of preferentially;
    /// higher values flatten the degree distribution.
    pub uniform_fraction: f64,
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        Self {
            mean_degree: 6,
            uniform_fraction: 0.15,
        }
    }
}

/// Seeded preferential-attachment graph generator.
///
/// # Examples
///
/// ```
/// use bdb_datagen::graph::{GraphGen, GraphGenConfig};
///
/// let g = GraphGen::new(GraphGenConfig::default(), 5).generate(1_000);
/// assert_eq!(g.vertex_count(), 1_000);
/// assert!(g.edge_count() > 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct GraphGen {
    config: GraphGenConfig,
    seed: u64,
}

impl GraphGen {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `mean_degree == 0` or `uniform_fraction` is outside `[0, 1]`.
    pub fn new(config: GraphGenConfig, seed: u64) -> Self {
        assert!(config.mean_degree > 0, "mean degree must be positive");
        assert!(
            (0.0..=1.0).contains(&config.uniform_fraction),
            "uniform fraction must lie in [0, 1]"
        );
        Self { config, seed }
    }

    /// Generates a graph with `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn generate(&self, n: usize) -> Graph {
        assert!(n >= 2, "graph needs at least two vertices");
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        // `targets` is the multiset of past edge endpoints; sampling from it
        // uniformly implements preferential attachment.
        let mut targets: Vec<u32> = vec![0, 1];
        let mut edge_list: Vec<(u32, u32)> = vec![(1, 0)];
        for v in 2..n as u32 {
            let m = self.config.mean_degree.min(v as usize);
            for _ in 0..m {
                let dst = if rng.gen::<f64>() < self.config.uniform_fraction {
                    rng.gen_range(0..v)
                } else {
                    targets[rng.gen_range(0..targets.len())]
                };
                if dst != v {
                    edge_list.push((v, dst));
                    targets.push(dst);
                    targets.push(v);
                }
            }
        }
        Graph::from_edges(n, &edge_list)
    }
}

/// In-degree histogram helper used by tests and the data-set reports.
pub fn in_degrees(g: &Graph) -> Vec<u32> {
    let mut deg = vec![0u32; g.vertex_count()];
    for (_, dst) in g.iter_edges() {
        deg[dst as usize] += 1;
    }
    deg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_roundtrip() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (2, 3), (3, 0)]);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.out_degree(2), 1);
        let all: Vec<_> = g.iter_edges().collect();
        assert_eq!(all, vec![(0, 1), (0, 2), (2, 3), (3, 0)]);
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = GraphGen::new(GraphGenConfig::default(), 77);
        assert_eq!(gen.generate(500), gen.generate(500));
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = GraphGen::new(GraphGenConfig::default(), 3).generate(5_000);
        let mut deg = in_degrees(&g);
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = deg.iter().map(|&d| d as u64).sum();
        let top1pct: u64 = deg[..50].iter().map(|&d| d as u64).sum();
        // In a power-law graph the top 1% of vertices attract a large share
        // of edges; in a uniform random graph they would hold ~1%.
        assert!(
            top1pct as f64 / total as f64 > 0.10,
            "top share {}",
            top1pct as f64 / total as f64
        );
    }

    #[test]
    fn no_self_loops_from_generator() {
        let g = GraphGen::new(GraphGenConfig::default(), 8).generate(300);
        assert!(g.iter_edges().all(|(s, d)| s != d));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let _ = Graph::from_edges(2, &[(0, 5)]);
    }
}
