//! Seeded synthetic data generators — the reproduction's analog of BDGS
//! (Big Data Generator Suite) shipped with BigDataBench.
//!
//! The paper's seven source data sets (Table 1) are replaced by scalable
//! synthetic equivalents that preserve the distributional properties that
//! matter micro-architecturally:
//!
//! * [`text`] — Zipf-distributed word streams standing in for the Wikipedia
//!   entries and Amazon movie reviews corpora,
//! * [`graph`] — power-law directed graphs standing in for the Google web
//!   graph and the Facebook social network,
//! * [`table`] — relational rows standing in for the e-commerce transaction
//!   tables and the ProfSearch résumé set,
//! * [`tpcds`] — a miniature star schema standing in for the TPC-DS web
//!   tables used by the three TPC-DS queries.
//!
//! Every generator is driven by an explicit `u64` seed and is fully
//! deterministic: the same seed always produces byte-identical data, so every
//! table in the reproduction is replayable.
//!
//! # Examples
//!
//! ```
//! use bdb_datagen::text::{TextGen, TextGenConfig};
//!
//! let corpus = TextGen::new(TextGenConfig::default(), 42).generate(100);
//! assert_eq!(corpus.docs.len(), 100);
//! assert!(corpus.total_words() > 0);
//! ```

pub mod dataset;
pub mod graph;
pub mod relational;
pub mod table;
pub mod text;
pub mod tpcds;
pub mod zipf;

pub use dataset::{DataSetCatalog, DataSetDescriptor, DataSetId};
pub use relational::{Field, FieldKind, Row, Schema, Table};
