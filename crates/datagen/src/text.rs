//! Zipfian text corpora — the stand-in for the Wikipedia entries and the
//! Amazon movie reviews data sets.
//!
//! A [`Corpus`] stores documents as sequences of interned word identifiers
//! plus the vocabulary that maps them back to strings. Word frequencies are
//! Zipf-distributed, which is what drives the hash-table skew in WordCount
//! and the match-rate behaviour of Grep in the workloads crate.

use crate::zipf::Zipf;
use rand::{Rng, SeedableRng};

/// Interned word identifier. Index into [`Corpus::vocab`].
pub type WordId = u32;

/// Configuration for [`TextGen`].
#[derive(Debug, Clone, PartialEq)]
pub struct TextGenConfig {
    /// Vocabulary size (distinct words).
    pub vocab_size: usize,
    /// Zipf exponent of the word-frequency distribution.
    pub zipf_exponent: f64,
    /// Mean words per document.
    pub mean_doc_len: usize,
    /// Minimum words per document.
    pub min_doc_len: usize,
}

impl Default for TextGenConfig {
    fn default() -> Self {
        Self {
            vocab_size: 8_192,
            zipf_exponent: 1.0,
            mean_doc_len: 128,
            min_doc_len: 8,
        }
    }
}

/// A generated corpus: documents of interned words plus the vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub struct Corpus {
    /// Vocabulary; `vocab[w as usize]` is the surface form of word `w`.
    pub vocab: Vec<String>,
    /// Documents as sequences of word ids.
    pub docs: Vec<Vec<WordId>>,
}

impl Corpus {
    /// Total number of word occurrences across all documents.
    pub fn total_words(&self) -> usize {
        self.docs.iter().map(Vec::len).sum()
    }

    /// Total size of the corpus in bytes if laid out as space-separated text.
    pub fn byte_size(&self) -> usize {
        self.docs
            .iter()
            .map(|d| {
                d.iter()
                    .map(|&w| self.vocab[w as usize].len() + 1)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Surface form of `word`.
    ///
    /// # Panics
    ///
    /// Panics if `word` is not in the vocabulary.
    pub fn word(&self, word: WordId) -> &str {
        &self.vocab[word as usize]
    }
}

/// Seeded generator of Zipfian text corpora.
///
/// # Examples
///
/// ```
/// use bdb_datagen::text::{TextGen, TextGenConfig};
///
/// let gen = TextGen::new(TextGenConfig::default(), 1);
/// let corpus = gen.generate(10);
/// assert_eq!(corpus.docs.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct TextGen {
    config: TextGenConfig,
    seed: u64,
}

impl TextGen {
    /// Creates a generator with the given configuration and seed.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size == 0` or `min_doc_len == 0`.
    pub fn new(config: TextGenConfig, seed: u64) -> Self {
        assert!(config.vocab_size > 0, "vocabulary must be non-empty");
        assert!(config.min_doc_len > 0, "documents must be non-empty");
        Self { config, seed }
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &TextGenConfig {
        &self.config
    }

    /// Generates `n_docs` documents.
    pub fn generate(&self, n_docs: usize) -> Corpus {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.config.vocab_size, self.config.zipf_exponent);
        let vocab = synth_vocab(self.config.vocab_size);
        let spread = self
            .config
            .mean_doc_len
            .saturating_sub(self.config.min_doc_len);
        let docs = (0..n_docs)
            .map(|_| {
                let len = self.config.min_doc_len + rng.gen_range(0..=2 * spread.max(1));
                (0..len).map(|_| zipf.sample(&mut rng) as WordId).collect()
            })
            .collect();
        Corpus { vocab, docs }
    }
}

/// Builds a deterministic vocabulary of `n` pronounceable pseudo-words.
///
/// Words are unique: the syllable sequence encodes the word index in a
/// mixed-radix system, with a numeric suffix to break residual collisions.
fn synth_vocab(n: usize) -> Vec<String> {
    const SYLLABLES: [&str; 16] = [
        "da", "ta", "ben", "ch", "ma", "re", "du", "ce", "spa", "rk", "ha", "do", "op", "key",
        "val", "zip",
    ];
    (0..n)
        .map(|i| {
            let mut word = String::new();
            let mut x = i;
            loop {
                word.push_str(SYLLABLES[x % SYLLABLES.len()]);
                x /= SYLLABLES.len();
                if x == 0 {
                    break;
                }
            }
            // Two- and three-syllable words can collide with one-syllable
            // words of other indices; the index suffix guarantees uniqueness.
            word.push_str(&i.to_string());
            word
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn vocab_is_unique() {
        let v = synth_vocab(5000);
        let set: HashSet<_> = v.iter().collect();
        assert_eq!(set.len(), v.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let g = TextGen::new(TextGenConfig::default(), 99);
        assert_eq!(g.generate(20), g.generate(20));
    }

    #[test]
    fn different_seeds_differ() {
        let c1 = TextGen::new(TextGenConfig::default(), 1).generate(5);
        let c2 = TextGen::new(TextGenConfig::default(), 2).generate(5);
        assert_ne!(c1, c2);
    }

    #[test]
    fn doc_lengths_respect_minimum() {
        let cfg = TextGenConfig {
            min_doc_len: 5,
            mean_doc_len: 9,
            ..Default::default()
        };
        let c = TextGen::new(cfg, 3).generate(200);
        assert!(c.docs.iter().all(|d| d.len() >= 5));
    }

    #[test]
    fn word_frequencies_are_skewed() {
        let cfg = TextGenConfig {
            vocab_size: 1000,
            ..Default::default()
        };
        let c = TextGen::new(cfg, 11).generate(500);
        let mut counts = vec![0usize; 1000];
        for d in &c.docs {
            for &w in d {
                counts[w as usize] += 1;
            }
        }
        let head: usize = counts[..10].iter().sum();
        let total: usize = counts.iter().sum();
        assert!(head as f64 / total as f64 > 0.25);
    }

    #[test]
    fn byte_size_counts_separators() {
        let c = Corpus {
            vocab: vec!["ab".into(), "c".into()],
            docs: vec![vec![0, 1, 0]],
        };
        assert_eq!(c.byte_size(), 3 + 2 + 3);
        assert_eq!(c.total_words(), 3);
        assert_eq!(c.word(1), "c");
    }
}
