//! Cross-generator property tests: determinism, scaling monotonicity, and
//! structural invariants that every seeded generator must uphold.

use bdb_datagen::graph::{GraphGen, GraphGenConfig};
use bdb_datagen::text::{TextGen, TextGenConfig};
use bdb_datagen::{table, tpcds};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn text_deterministic_and_prefix_stable(seed in 0u64..5000, n in 1usize..100) {
        let gen = TextGen::new(TextGenConfig::default(), seed);
        let a = gen.generate(n);
        let b = gen.generate(n);
        prop_assert_eq!(&a, &b);
        // Word ids always index into the vocabulary.
        for doc in &a.docs {
            for &w in doc {
                prop_assert!((w as usize) < a.vocab.len());
            }
        }
    }

    #[test]
    fn graph_edges_scale_with_vertices(seed in 0u64..2000, n in 8usize..400) {
        let g = GraphGen::new(GraphGenConfig::default(), seed).generate(n);
        prop_assert_eq!(g.vertex_count(), n);
        // Preferential attachment adds ~mean_degree edges per vertex.
        prop_assert!(g.edge_count() >= n / 2);
        prop_assert!(g.edge_count() <= n * 8);
        // CSR is internally consistent.
        let total: usize = (0..n as u32).map(|v| g.out_degree(v)).sum();
        prop_assert_eq!(total, g.edge_count());
    }

    #[test]
    fn ecommerce_rows_validate_against_schema(seed in 0u64..2000, n in 1usize..200) {
        let orders = table::ecommerce_orders(n, seed);
        prop_assert_eq!(orders.len(), n);
        for row in orders.rows() {
            prop_assert!(orders.schema().validates(row));
        }
        let items = table::ecommerce_items(&orders, 2, seed ^ 1);
        for row in items.rows() {
            prop_assert!(items.schema().validates(row));
            let order_id = row[1].as_i64().expect("order id");
            prop_assert!((order_id as usize) < n);
        }
    }

    #[test]
    fn tpcds_keys_always_resolve(seed in 0u64..1000) {
        let cfg = tpcds::TpcdsConfig { sales_rows: 200, items: 20, customers: 30, days: 50 };
        let d = tpcds::generate(cfg, seed);
        for row in d.store_sales.rows() {
            prop_assert!(row[0].as_i64().expect("date") < 50);
            prop_assert!(row[1].as_i64().expect("item") < 20);
            prop_assert!(row[2].as_i64().expect("customer") < 30);
        }
    }

    #[test]
    fn sample_points_respect_dimensions(n in 1usize..200, dim in 1usize..12, k in 1usize..8, seed in 0u64..1000) {
        let (pts, labels) = table::sample_points(n, dim, k, seed);
        prop_assert_eq!(pts.len(), n);
        prop_assert!(pts.iter().all(|p| p.len() == dim));
        prop_assert!(labels.iter().all(|&l| l < k));
        prop_assert!(pts.iter().flatten().all(|x| x.is_finite()));
    }
}
