//! An item-level Rust parser on top of the [`crate::lexer`] scanner.
//!
//! The interprocedural rules need more than token streams: they need to
//! know *which function* a call or a panic site lives in, and what the
//! call's target path is, so the graph layer can stitch files into a
//! workspace call graph. This parser extracts exactly that — modules,
//! `use` imports, `fn` items with body spans, call expressions, and the
//! primitive sites the reachability rules treat as sources or sinks —
//! while staying deliberately lightweight: it tracks brace depth over the
//! lexer's stripped code stream and classifies each opened block from the
//! statement prefix in front of it.
//!
//! Known limits (documented in DESIGN.md §16): trait-object and other
//! method calls resolve by name only; turbofish paths (`f::<T>(..)`) and
//! macro-generated items are not resolved; closures attribute their calls
//! to the enclosing `fn`. All of these make the graph *miss* edges, never
//! invent spurious ones beyond same-name method candidates — the
//! conservative direction for a lint that must stay quiet when clean.

use crate::lexer::{self, ScannedFile};
use std::path::{Path, PathBuf};

/// What kind of target a source file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/` (subject to every source rule).
    Lib,
    /// Binary code under `src/bin/` or `src/main.rs` (graph roots live
    /// here, but the per-line library rules skip it).
    Bin,
    /// Integration tests and benches (scanned only for env-knob reads).
    TestOrBench,
}

/// One call expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `a::b::f(..)` or bare `f(..)` — the path segments as written.
    Path(Vec<String>),
    /// `.m(..)` — a method or trait-object call, name only.
    Method(String),
    /// `self.m(..)` — a method call on `self`, resolvable within the
    /// enclosing `impl` type first.
    SelfMethod(String),
}

/// A call site: where it is and what it names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// 1-indexed source line.
    pub line: usize,
    /// The named target.
    pub callee: Callee,
}

/// Primitive operations the reachability rules recognise inside bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prim {
    /// `Instant` / `SystemTime` / `UNIX_EPOCH` wall-clock reads.
    WallClock,
    /// `ThreadId` / `thread::current` / `current_thread_index`.
    ThreadIdentity,
    /// `HashMap` / `HashSet` — iteration order varies run to run.
    UnorderedCollection,
    /// `.unwrap()` / `.expect(..)` / `panic!` / `unreachable!` / etc.
    Panic,
    /// Slice or collection indexing with a non-literal index.
    Indexing,
    /// `format!` / `vec!` / `.to_string()` / `Box::new` — heap traffic.
    Alloc,
    /// `std::env::var` / `var_os` reads.
    EnvRead,
    /// Direct `std::fs` filesystem calls.
    BlockingFs,
}

/// One primitive site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimSite {
    /// 1-indexed source line.
    pub line: usize,
    /// Which primitive fired.
    pub prim: Prim,
    /// The token that matched, for diagnostics.
    pub token: String,
}

/// One `fn` item with everything the graph layer needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Qualification inside the file: inline modules, then the `impl` /
    /// `trait` type name if any. The file's own module path is *not*
    /// included (the graph layer prepends it).
    pub qual: Vec<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// 1-indexed inclusive body span (from the opening `{` line to the
    /// closing `}` line).
    pub body: (usize, usize),
    /// Whether the item sits in `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
    /// Call expressions in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Primitive sites in the body, in source order.
    pub prims: Vec<PrimSite>,
}

/// One env-var read site (`std::env::var*("BDB_…")`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnobRead {
    /// 1-indexed source line.
    pub line: usize,
    /// The knob name, e.g. `BDB_THREADS`.
    pub knob: String,
}

/// A fully parsed source file.
#[derive(Debug, Clone)]
pub struct ParsedFile {
    /// Path relative to the workspace root.
    pub rel: PathBuf,
    /// Owning crate's directory name (`engine`, `lint`, …) or the root
    /// package name.
    pub krate: String,
    /// Module path of the file within its crate (`[]` for `lib.rs`).
    pub module: Vec<String>,
    /// Library, binary, or test/bench code.
    pub kind: FileKind,
    /// The underlying line scan (shared with the per-line passes).
    pub scanned: ScannedFile,
    /// Every `fn` item found.
    pub fns: Vec<FnItem>,
    /// `use` aliases: local name → full path segments.
    pub imports: Vec<(String, Vec<String>)>,
    /// `use a::b::*` glob imports — base path segments.
    pub globs: Vec<Vec<String>>,
    /// `BDB_*` env-var reads (collected from raw line text, since the
    /// lexer blanks string literals in the code stream).
    pub knob_reads: Vec<KnobRead>,
}

/// Parses one file. `module` is the file's module path within `krate`
/// (derived from its location by the workspace loader).
pub fn parse_file(
    rel: &Path,
    krate: &str,
    module: &[String],
    kind: FileKind,
    text: &str,
) -> ParsedFile {
    let scanned = lexer::scan(text);
    let mut p = Parser {
        fns: Vec::new(),
        imports: Vec::new(),
        globs: Vec::new(),
        stack: Vec::new(),
        prefix: String::new(),
        prefix_line: 0,
        in_use: false,
        use_depth: 0,
        use_text: String::new(),
    };
    for (idx, line) in scanned.lines.iter().enumerate() {
        p.line(&line.code, idx + 1);
    }
    // Close any unterminated bodies at EOF so spans stay well-formed on
    // truncated or mid-edit sources.
    let last = scanned.lines.len();
    for frame in p.stack.drain(..).rev() {
        if let Block::Fn(i) = frame {
            if let Some(f) = p.fns.get_mut(i) {
                f.body.1 = last;
            }
        }
    }
    let mut fns = p.fns;
    for f in &mut fns {
        f.in_test = scanned
            .lines
            .get(f.line.saturating_sub(1))
            .is_some_and(|l| l.in_test);
    }
    // Assign each body line to its *innermost* owning fn (nested fns and
    // test helpers must not leak their calls into the enclosing item),
    // then collect calls and primitive sites per line.
    let mut owner: Vec<Option<usize>> = vec![None; scanned.lines.len()];
    for (i, f) in fns.iter().enumerate() {
        for lineno in f.body.0..=f.body.1.min(scanned.lines.len()) {
            let slot = &mut owner[lineno - 1];
            let tighter = match *slot {
                None => true,
                Some(prev) => span_len(&fns[prev]) > span_len(f),
            };
            if tighter {
                *slot = Some(i);
            }
        }
    }
    for (idx, line) in scanned.lines.iter().enumerate() {
        if let Some(i) = owner[idx] {
            collect_calls(&line.code, idx + 1, &mut fns[i].calls);
            collect_prims(&line.code, idx + 1, &mut fns[i].prims);
        }
    }
    let knob_reads = scan_knob_reads(&scanned, text);
    ParsedFile {
        rel: rel.to_path_buf(),
        krate: krate.to_owned(),
        module: module.to_vec(),
        kind,
        scanned,
        fns,
        imports: p.imports,
        globs: p.globs,
        knob_reads,
    }
}

fn span_len(f: &FnItem) -> usize {
    f.body.1.saturating_sub(f.body.0)
}

/// One entry on the block stack.
#[derive(Debug, Clone)]
enum Block {
    Mod(String),
    Impl(String),
    Fn(usize),
    Other,
}

struct Parser {
    fns: Vec<FnItem>,
    imports: Vec<(String, Vec<String>)>,
    globs: Vec<Vec<String>>,
    stack: Vec<Block>,
    /// Statement text accumulated since the last `{`, `}`, or `;`.
    prefix: String,
    /// 1-indexed line the current prefix started on.
    prefix_line: usize,
    /// Inside a `use …;` item (whose `{…}` groups are not blocks).
    in_use: bool,
    use_depth: i32,
    use_text: String,
}

impl Parser {
    fn line(&mut self, code: &str, lineno: usize) {
        for ch in code.chars() {
            if self.in_use {
                self.use_text.push(ch);
                match ch {
                    '{' => self.use_depth += 1,
                    '}' => self.use_depth -= 1,
                    ';' if self.use_depth <= 0 => self.finish_use(),
                    _ => {}
                }
                continue;
            }
            match ch {
                '{' => {
                    if is_use_prefix(&self.prefix) {
                        self.in_use = true;
                        self.use_depth = 1;
                        self.use_text = std::mem::take(&mut self.prefix);
                        self.use_text.push('{');
                        continue;
                    }
                    let block = self.classify_prefix(lineno);
                    self.stack.push(block);
                    self.prefix.clear();
                }
                '}' => {
                    if let Some(Block::Fn(i)) = self.stack.pop() {
                        if let Some(f) = self.fns.get_mut(i) {
                            f.body.1 = lineno;
                        }
                    }
                    self.prefix.clear();
                }
                ';' => {
                    if is_use_prefix(&self.prefix) {
                        let text = std::mem::take(&mut self.prefix);
                        parse_use(&text, &mut self.imports, &mut self.globs);
                    }
                    self.prefix.clear();
                }
                _ => {
                    if self.prefix.trim().is_empty() && !ch.is_whitespace() {
                        self.prefix_line = lineno;
                    }
                    self.prefix.push(ch);
                }
            }
        }
        // A statement spanning lines keeps accumulating; add a separator
        // so tokens on adjacent lines don't fuse.
        if self.in_use {
            self.use_text.push(' ');
        } else if !self.prefix.is_empty() {
            self.prefix.push(' ');
        }
    }

    /// Classifies the block opened by a `{` from the statement prefix in
    /// front of it, registering a new `FnItem` for `fn` headers.
    fn classify_prefix(&mut self, lineno: usize) -> Block {
        let prefix = strip_attrs(&self.prefix);
        let mut tokens = keyword_tokens(&prefix);
        while let Some(
            "pub" | "const" | "unsafe" | "async" | "extern" | "default" | "crate" | "super" | "in"
            | "\"\"",
        ) = tokens.first().map(String::as_str)
        {
            tokens.remove(0);
        }
        match tokens.first().map(String::as_str) {
            Some("mod") => Block::Mod(tokens.get(1).cloned().unwrap_or_default()),
            Some("trait") => Block::Impl(tokens.get(1).cloned().unwrap_or_default()),
            Some("impl") => Block::Impl(impl_type_name(&prefix)),
            Some("fn") => {
                let name = tokens.get(1).cloned().unwrap_or_default();
                let qual: Vec<String> = self
                    .stack
                    .iter()
                    .filter_map(|b| match b {
                        Block::Mod(m) => Some(m.clone()),
                        Block::Impl(t) => Some(t.clone()),
                        _ => None,
                    })
                    .filter(|s| !s.is_empty())
                    .collect();
                let item = FnItem {
                    name,
                    qual,
                    line: self.prefix_line.max(1),
                    body: (lineno, lineno),
                    in_test: false, // set from the scan in parse_file's caller pass
                    calls: Vec::new(),
                    prims: Vec::new(),
                };
                self.fns.push(item);
                Block::Fn(self.fns.len() - 1)
            }
            _ => Block::Other,
        }
    }

    fn finish_use(&mut self) {
        let text = std::mem::take(&mut self.use_text);
        self.in_use = false;
        self.use_depth = 0;
        self.prefix.clear();
        parse_use(&text, &mut self.imports, &mut self.globs);
    }
}

/// Whether the statement prefix begins a `use` item (`use …`,
/// `pub use …`, `pub(crate) use …`).
fn is_use_prefix(prefix: &str) -> bool {
    let t = prefix.trim_start();
    let rest = t.strip_prefix("pub").map(str::trim_start).unwrap_or(t);
    let rest = if let Some(stripped) = rest.strip_prefix('(') {
        match stripped.find(')') {
            Some(end) => stripped[end + 1..].trim_start(),
            None => return false,
        }
    } else {
        rest
    };
    rest == "use" || rest.starts_with("use ")
}

/// Drops `#[…]` attributes from a statement prefix.
fn strip_attrs(prefix: &str) -> String {
    let mut out = String::with_capacity(prefix.len());
    let mut chars = prefix.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '#' && chars.peek() == Some(&'[') {
            let mut depth = 0i32;
            for c in chars.by_ref() {
                match c {
                    '[' => depth += 1,
                    ']' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Splits a prefix into coarse tokens (identifiers, `""` markers for
/// blanked strings, everything else dropped) for header classification.
fn keyword_tokens(prefix: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut chars = prefix.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_alphanumeric() || c == '_' {
            current.push(c);
        } else {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            if c == '"' && chars.peek() == Some(&'"') {
                chars.next();
                tokens.push("\"\"".to_owned());
            }
            if c == '<' {
                // Skip balanced generics so `impl<T: Ord> Foo<T>` tokenises
                // as `impl Foo`.
                let mut depth = 1i32;
                for c in chars.by_ref() {
                    match c {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Extracts the implementing type name from an `impl` header: the last
/// path segment after `for` when present, otherwise the first type after
/// `impl`. Generics and references are stripped.
fn impl_type_name(prefix: &str) -> String {
    let tokens = keyword_tokens(prefix);
    let impl_at = tokens.iter().position(|t| t == "impl");
    let for_at = tokens.iter().rposition(|t| t == "for");
    let where_at = tokens
        .iter()
        .position(|t| t == "where")
        .unwrap_or(tokens.len());
    let segs: Vec<&String> = match (impl_at, for_at) {
        (Some(i), Some(f)) if f > i && f < where_at => tokens[f + 1..where_at].iter().collect(),
        (Some(i), _) => tokens[i + 1..where_at].iter().collect(),
        _ => Vec::new(),
    };
    // The type is a path — `fmt::Display` names the trait, `&'a Foo` has
    // lifetime tokens first; the type name is the last identifier that
    // starts uppercase, else the last identifier.
    segs.iter()
        .rev()
        .find(|t| t.chars().next().is_some_and(char::is_uppercase))
        .or_else(|| segs.last())
        .map(|t| (*t).clone())
        .unwrap_or_default()
}

/// Parses one `use …;` item into alias → path entries. Handles nested
/// groups (`use a::{b, c::{d as e}};`) and drops glob imports.
fn parse_use(text: &str, out: &mut Vec<(String, Vec<String>)>, globs: &mut Vec<Vec<String>>) {
    let text = text.trim().trim_end_matches(';');
    let Some(at) = lexer::find_word(text, "use", 0) else {
        return;
    };
    let path = text[at + 3..].trim();
    expand_use(path, &[], out, globs);
}

fn expand_use(
    path: &str,
    base: &[String],
    out: &mut Vec<(String, Vec<String>)>,
    globs: &mut Vec<Vec<String>>,
) {
    let path = path.trim();
    // Split off a trailing group `prefix::{…}`.
    if let Some(open) = path.find('{') {
        let prefix = path[..open].trim().trim_end_matches("::");
        let inner = path[open + 1..].trim_end().trim_end_matches('}');
        let mut new_base = base.to_vec();
        new_base.extend(segments(prefix));
        for part in split_top_level(inner) {
            expand_use(&part, &new_base, out, globs);
        }
        return;
    }
    let (path, alias) = match lexer::find_word(path, "as", 0) {
        Some(at) => (path[..at].trim(), Some(path[at + 2..].trim().to_owned())),
        None => (path, None),
    };
    if path.ends_with('*') {
        let mut full = base.to_vec();
        full.extend(segments(path));
        if !full.is_empty() {
            globs.push(full);
        }
        return;
    }
    let mut full = base.to_vec();
    full.extend(segments(path));
    if path == "self" {
        full.retain(|s| s != "self");
        if let (Some(name), true) = (full.last().cloned(), alias.is_none()) {
            out.push((name, full));
            return;
        }
    }
    let name = alias.or_else(|| full.last().cloned());
    if let Some(name) = name {
        if !name.is_empty() && !full.is_empty() {
            out.push((name, full));
        }
    }
}

/// Splits a use-group body on top-level commas (`a, b::{c, d}` → two).
fn split_top_level(inner: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for c in inner.chars() {
        match c {
            '{' => {
                depth += 1;
                current.push(c);
            }
            '}' => {
                depth -= 1;
                current.push(c);
            }
            ',' if depth == 0 => parts.push(std::mem::take(&mut current)),
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    parts
}

/// Path text → identifier segments, dropping empties and generics.
fn segments(path: &str) -> Vec<String> {
    path.split("::")
        .map(|s| s.trim())
        .filter(|s| !s.is_empty() && *s != "self" && !s.starts_with('<'))
        .map(|s| s.trim_end_matches('*').trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Collects call sites on one stripped code line.
fn collect_calls(code: &str, lineno: usize, out: &mut Vec<CallSite>) {
    let bytes = code.as_bytes();
    for (at, _) in code.char_indices().filter(|&(_, c)| c == '(') {
        // Walk backward over the callee path: identifiers and `::`.
        let mut end = at;
        while end > 0 && bytes[end - 1] == b' ' {
            end -= 1;
        }
        let mut start = end;
        loop {
            let mut s = start;
            while s > 0 && is_ident_byte(bytes[s - 1]) {
                s -= 1;
            }
            if s == start {
                break;
            }
            start = s;
            if start >= 2 && bytes[start - 1] == b':' && bytes[start - 2] == b':' {
                start -= 2;
            } else {
                break;
            }
        }
        if start == end {
            continue;
        }
        let Some(path_text) = code.get(start..end) else {
            continue;
        };
        if path_text.starts_with("::") {
            continue;
        }
        let before = code[..start].trim_end();
        // `fn name(` is a definition; `name!(` is a macro; digits are not
        // callees.
        if before.ends_with("fn") || code[end..at].contains('!') {
            continue;
        }
        if path_text.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        let segs = segments(path_text);
        if segs.is_empty() {
            continue;
        }
        // Keywords in call position are control flow, not calls.
        if segs.len() == 1
            && matches!(
                segs[0].as_str(),
                "if" | "while"
                    | "for"
                    | "match"
                    | "return"
                    | "loop"
                    | "in"
                    | "as"
                    | "else"
                    | "move"
                    | "await"
                    | "let"
                    | "mut"
                    | "ref"
                    | "box"
                    | "unsafe"
            )
        {
            continue;
        }
        let callee = if before.ends_with('.') && segs.len() == 1 {
            let recv = before[..before.len() - 1].trim_end();
            if recv.ends_with("self")
                && !recv
                    .as_bytes()
                    .get(recv.len().wrapping_sub(5))
                    .is_some_and(|b| is_ident_byte(*b))
            {
                Callee::SelfMethod(segs[0].clone())
            } else {
                Callee::Method(segs[0].clone())
            }
        } else {
            Callee::Path(segs)
        };
        out.push(CallSite {
            line: lineno,
            callee,
        });
    }
}

/// Tokens marking wall-clock reads.
const WALL_CLOCK: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH"];
/// Tokens marking thread-identity queries.
const THREAD_IDENTITY: &[&str] = &["ThreadId", "current_thread_index"];
/// Tokens marking unordered collections.
const UNORDERED: &[&str] = &["HashMap", "HashSet"];
/// Macros that abort.
/// Macros that abort unconditionally when hit. `assert!` is deliberately
/// absent: an assert is a documented invariant check (the same stance
/// `panic-hygiene` takes), not an incidental abort path.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Allocation-bearing macros.
const ALLOC_MACROS: &[&str] = &["format", "vec"];
/// Allocation-bearing methods.
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec"];

/// Collects primitive sites on one stripped code line.
fn collect_prims(code: &str, lineno: usize, out: &mut Vec<PrimSite>) {
    let mut push = |prim: Prim, token: &str| {
        out.push(PrimSite {
            line: lineno,
            prim,
            token: token.to_owned(),
        })
    };
    for token in WALL_CLOCK {
        if lexer::contains_word(code, token) {
            push(Prim::WallClock, token);
        }
    }
    for token in THREAD_IDENTITY {
        if lexer::contains_word(code, token) {
            push(Prim::ThreadIdentity, token);
        }
    }
    if code.contains("thread::current") {
        push(Prim::ThreadIdentity, "thread::current");
    }
    for token in UNORDERED {
        if lexer::contains_word(code, token) {
            push(Prim::UnorderedCollection, token);
        }
    }
    for token in ["unwrap", "expect"] {
        for at in word_sites(code, token) {
            let after = at + token.len();
            if preceded_by_dot(code, at)
                && followed_by_paren(code, after)
                && !(token == "expect" && receiver_is_self(code, at))
            {
                push(Prim::Panic, &format!(".{token}()"));
            }
        }
    }
    for mac in PANIC_MACROS {
        for at in word_sites(code, mac) {
            if code[at + mac.len()..].starts_with('!') {
                push(Prim::Panic, &format!("{mac}!"));
            }
        }
    }
    for mac in ALLOC_MACROS {
        for at in word_sites(code, mac) {
            if code[at + mac.len()..].starts_with('!') {
                push(Prim::Alloc, &format!("{mac}!"));
            }
        }
    }
    for m in ALLOC_METHODS {
        for at in word_sites(code, m) {
            if preceded_by_dot(code, at) && followed_by_paren(code, at + m.len()) {
                push(Prim::Alloc, &format!(".{m}()"));
            }
        }
    }
    for path in ["String::from", "Box::new"] {
        if code.contains(path) {
            push(Prim::Alloc, path);
        }
    }
    if code.contains("env::var") {
        push(Prim::EnvRead, "env::var");
    }
    let raw_fs = word_sites(code, "fs")
        .into_iter()
        .any(|at| code[at + 2..].starts_with("::") || code[..at].ends_with("std::"));
    if raw_fs {
        push(Prim::BlockingFs, "std::fs");
    }
    collect_indexing(code, lineno, out);
}

/// Indexing sites `expr[i]` with a non-trivial index. Literal indexes
/// (`x[0]`), full-range slices (`x[..]`), and attribute/array syntax are
/// skipped — the rule targets data-dependent indexing that can panic on
/// malformed input.
fn collect_indexing(code: &str, lineno: usize, out: &mut Vec<PrimSite>) {
    let bytes = code.as_bytes();
    for (at, _) in code.char_indices().filter(|&(_, c)| c == '[') {
        // Indexing is written with the bracket flush against the
        // expression (`buf[i]`); a space before `[` means a slice type
        // (`&mut [u8]`) or an array literal (`for f in [a, b]`).
        let Some(&prev) = at.checked_sub(1).and_then(|i| bytes.get(i)) else {
            continue;
        };
        let prev = prev as char;
        if !(is_ident_byte(prev as u8) && prev != '_' || prev == ')' || prev == ']') {
            continue;
        }
        // Find the matching `]` on the same line.
        let mut depth = 0i32;
        let mut close = None;
        for (j, &byte) in bytes.iter().enumerate().skip(at) {
            match byte {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else {
            continue;
        };
        let Some(index) = code.get(at + 1..close) else {
            continue;
        };
        let trivial = index.trim().is_empty()
            || index.trim() == ".."
            || index.trim().chars().all(|c| c.is_ascii_digit() || c == '_');
        if !trivial {
            out.push(PrimSite {
                line: lineno,
                prim: Prim::Indexing,
                token: format!("[{}]", index.trim()),
            });
        }
    }
}

/// Finds `BDB_*` env-knob reads by pairing an `env::var` call on the
/// stripped code line with the knob literal from the raw source line
/// (the lexer blanks string contents).
fn scan_knob_reads(scanned: &ScannedFile, text: &str) -> Vec<KnobRead> {
    let mut reads = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let has_read = scanned
            .lines
            .get(idx)
            .is_some_and(|l| l.code.contains("env::var"));
        if !has_read {
            continue;
        }
        for knob in knob_names(raw) {
            reads.push(KnobRead {
                line: idx + 1,
                knob,
            });
        }
    }
    reads
}

/// Extracts `BDB_[A-Z0-9_]+` names from a text line.
pub fn knob_names(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut names = Vec::new();
    let mut from = 0;
    while let Some(pos) = text.get(from..).and_then(|t| t.find("BDB_")) {
        let at = from + pos;
        let bounded = at == 0 || !is_ident_byte(bytes[at - 1]);
        let mut end = at + 4;
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        if bounded && end > at + 4 {
            if let Some(name) = text.get(at..end) {
                names.push(name.trim_end_matches('_').to_owned());
            }
        }
        from = end.max(at + 4);
    }
    names
}

/// All word-boundary occurrences of `word` in `code`.
pub(crate) fn word_sites(code: &str, word: &str) -> Vec<usize> {
    let mut sites = Vec::new();
    let mut from = 0;
    while let Some(at) = lexer::find_word(code, word, from) {
        sites.push(at);
        from = at + word.len();
    }
    sites
}

pub(crate) fn preceded_by_dot(code: &str, at: usize) -> bool {
    code[..at].trim_end().ends_with('.')
}

pub(crate) fn followed_by_paren(code: &str, after: usize) -> bool {
    code[after..].trim_start().starts_with('(')
}

/// Whether the method receiver before the `.` at `at` is literally
/// `self` — a parser's own `self.expect(b'{')` is not `Result::expect`.
pub(crate) fn receiver_is_self(code: &str, at: usize) -> bool {
    let before = code[..at].trim_end();
    let before = before.strip_suffix('.').map(str::trim_end).unwrap_or("");
    before.ends_with("self")
        && !before
            .as_bytes()
            .get(before.len().wrapping_sub(5))
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file(
            Path::new("crates/x/src/lib.rs"),
            "x",
            &[],
            FileKind::Lib,
            src,
        )
    }

    #[test]
    fn fn_items_and_spans() {
        let src = "pub fn alpha() {\n    beta();\n}\n\nfn beta() {\n    let x = 1;\n}\n";
        let f = parse(src);
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "alpha");
        assert_eq!(f.fns[0].body, (1, 3));
        assert_eq!(f.fns[1].name, "beta");
        assert_eq!(f.fns[1].body, (5, 7));
    }

    #[test]
    fn impl_and_mod_qualification() {
        let src = "mod inner {\n    struct Engine;\n    impl Engine {\n        pub fn run(&self) { self.step(); }\n    }\n}\n";
        let f = parse(src);
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "run");
        assert_eq!(f.fns[0].qual, vec!["inner".to_owned(), "Engine".to_owned()]);
    }

    #[test]
    fn trait_impl_uses_target_type() {
        let src =
            "impl<T: Ord> fmt::Display for Wrapper<T> {\n    fn fmt(&self) { helper(); }\n}\n";
        let f = parse(src);
        assert_eq!(f.fns[0].qual, vec!["Wrapper".to_owned()]);
    }

    #[test]
    fn calls_are_classified() {
        let src = "fn f() {\n    a::b::target(1);\n    local(2);\n    obj.method(3);\n    mac!(nope);\n}\n";
        let f = parse(src);
        let calls = &f.fns[0].calls;
        assert!(calls.contains(&CallSite {
            line: 2,
            callee: Callee::Path(vec!["a".into(), "b".into(), "target".into()])
        }));
        assert!(calls.contains(&CallSite {
            line: 3,
            callee: Callee::Path(vec!["local".into()])
        }));
        assert!(calls.contains(&CallSite {
            line: 4,
            callee: Callee::Method("method".into())
        }));
        assert!(!calls
            .iter()
            .any(|c| matches!(&c.callee, Callee::Path(p) if p.last().is_some_and(|s| s == "mac"))));
    }

    #[test]
    fn use_groups_and_aliases() {
        let src = "use a::b::{c, d as e, f::g};\nuse h::i;\n";
        let f = parse(src);
        let get = |n: &str| {
            f.imports
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, p)| p.clone())
        };
        assert_eq!(get("c"), Some(vec!["a".into(), "b".into(), "c".into()]));
        assert_eq!(get("e"), Some(vec!["a".into(), "b".into(), "d".into()]));
        assert_eq!(
            get("g"),
            Some(vec!["a".into(), "b".into(), "f".into(), "g".into()])
        );
        assert_eq!(get("i"), Some(vec!["h".into(), "i".into()]));
    }

    #[test]
    fn prims_detected() {
        let src = "fn f(m: &HashMap<u32, u32>, xs: &[u32], i: usize) {\n    let t = Instant::now();\n    let v = xs[i];\n    let s = format!(\"x\");\n    let w = xs[0];\n    x.unwrap();\n}\n";
        let f = parse(src);
        let prims = &f.fns[0].prims;
        assert!(prims.iter().any(|p| p.prim == Prim::WallClock));
        assert!(prims
            .iter()
            .any(|p| p.prim == Prim::Indexing && p.line == 3));
        assert!(
            !prims
                .iter()
                .any(|p| p.prim == Prim::Indexing && p.line == 5),
            "literal index is not flagged"
        );
        assert!(prims.iter().any(|p| p.prim == Prim::Alloc));
        assert!(prims.iter().any(|p| p.prim == Prim::Panic));
        assert!(prims
            .iter()
            .any(|p| p.prim == Prim::UnorderedCollection && p.line == 1));
    }

    #[test]
    fn knob_reads_pair_env_var_with_literal() {
        let src = "fn f() {\n    let v = std::env::var(\"BDB_THREADS\");\n    let w = other(\"BDB_NOT_A_READ\");\n}\n";
        let f = parse(src);
        assert_eq!(
            f.knob_reads,
            vec![KnobRead {
                line: 2,
                knob: "BDB_THREADS".into()
            }]
        );
    }

    #[test]
    fn use_with_braces_does_not_derail_block_tracking() {
        let src = "use a::{b, c};\nfn f() {\n    b();\n}\n";
        let f = parse(src);
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].body, (2, 4));
    }
}
