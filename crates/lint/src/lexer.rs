//! A lightweight Rust source scanner.
//!
//! `bdb-lint` does not need a full parser: every source rule it enforces
//! is a token-level property ("this identifier must not appear outside
//! test code"). What it *does* need to get exactly right is the part
//! naive grep gets wrong — string literals, raw strings, char literals
//! vs. lifetimes, nested block comments, `#[cfg(test)]` regions — so the
//! scanner strips all of those while preserving line structure, and
//! records the comment text separately (suppression directives live in
//! comments).

/// One scanned source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line's code with comments removed and string/char literal
    /// contents blanked (quotes kept, so token boundaries survive).
    pub code: String,
    /// Concatenated text of comments that start or continue on this line.
    pub comment: String,
    /// Whether the line is inside `#[cfg(test)]` or `#[test]` code.
    pub in_test: bool,
}

/// One `bdb-lint: allow(<rule>)` directive found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 0-indexed line the directive's comment is on.
    pub line_idx: usize,
    /// The rule id named inside `allow(..)`.
    pub rule: String,
}

/// A scanned file: line records plus the suppression directives found.
#[derive(Debug, Clone, Default)]
pub struct ScannedFile {
    /// 0-indexed line records (`lines[0]` is source line 1).
    pub lines: Vec<Line>,
    /// Every allow directive in the file, in line order.
    pub directives: Vec<AllowDirective>,
    /// Indexes into `directives` that suppressed at least one finding —
    /// filled in by [`ScannedFile::suppressed`] as the passes run, and
    /// read back by the `stale-allow` rule.
    used: std::cell::RefCell<std::collections::BTreeSet<usize>>,
}

impl ScannedFile {
    /// Rules suppressed on 0-indexed line `idx` — a `bdb-lint:
    /// allow(<rule>)` comment suppresses diagnostics on its own line and
    /// on the line directly below it (so a standalone comment line can
    /// annotate the statement it precedes).
    pub fn allows(&self, idx: usize) -> Vec<String> {
        self.directive_sites(idx)
            .into_iter()
            .map(|i| self.directives[i].rule.clone())
            .collect()
    }

    /// Whether `rule` is suppressed on 0-indexed line `idx`.
    pub fn allowed(&self, idx: usize, rule: &str) -> bool {
        self.directive_sites(idx)
            .into_iter()
            .any(|i| self.directives[i].rule == rule)
    }

    /// Like [`ScannedFile::allowed`], but additionally marks the matching
    /// directive as *used*, so the `stale-allow` pass can report
    /// directives that never suppress anything. Passes must call this
    /// only when a finding would otherwise fire on line `idx`.
    pub fn suppressed(&self, idx: usize, rule: &str) -> bool {
        let mut hit = false;
        for i in self.directive_sites(idx) {
            if self.directives[i].rule == rule {
                self.used.borrow_mut().insert(i);
                hit = true;
            }
        }
        hit
    }

    /// Directives that suppressed nothing across every pass that ran.
    pub fn stale_directives(&self) -> Vec<&AllowDirective> {
        let used = self.used.borrow();
        self.directives
            .iter()
            .enumerate()
            .filter(|(i, _)| !used.contains(i))
            .map(|(_, d)| d)
            .collect()
    }

    /// Directive indexes applying to 0-indexed line `idx` (own line or
    /// the line directly above).
    fn directive_sites(&self, idx: usize) -> Vec<usize> {
        self.directives
            .iter()
            .enumerate()
            .filter(|(_, d)| d.line_idx == idx || idx > 0 && d.line_idx == idx - 1)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Parses `bdb-lint: allow(rule)` / `allow(rule-a, rule-b)` directives
/// out of one line's comment text. Doc comments never carry directives —
/// their text *describes* the syntax (this crate's own docs would
/// otherwise register as suppressions and trip the `stale-allow` audit).
fn collect_allow_rules(comment: &str, out: &mut Vec<String>) {
    // After `//` / `/*` are consumed, a doc comment's text starts with
    // the third marker char: `/` (`///`), `!` (`//!`, `/*!`), `*` (`/**`).
    if comment.starts_with(['/', '!', '*']) {
        return;
    }
    let mut rest = comment;
    while let Some(at) = rest.find("bdb-lint: allow(") {
        rest = &rest[at + "bdb-lint: allow(".len()..];
        if let Some(end) = rest.find(')') {
            for rule in rest[..end].split(',') {
                let rule = rule.trim();
                if !rule.is_empty() {
                    out.push(rule.to_owned());
                }
            }
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Scans Rust source into per-line code/comment records with test-region
/// marking. The scanner is conservative: if it cannot classify a
/// construct it keeps the text as code, which can only ever produce an
/// extra diagnostic (suppressible), never hide one.
pub fn scan(source: &str) -> ScannedFile {
    let stripped = strip(source);
    let test_lines = mark_test_regions(&stripped);
    let lines: Vec<Line> = stripped
        .into_iter()
        .zip(test_lines)
        .map(|((code, comment), in_test)| Line {
            code,
            comment,
            in_test,
        })
        .collect();
    let mut directives = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let mut rules = Vec::new();
        collect_allow_rules(&line.comment, &mut rules);
        for rule in rules {
            directives.push(AllowDirective {
                line_idx: idx,
                rule,
            });
        }
    }
    ScannedFile {
        lines,
        directives,
        used: Default::default(),
    }
}

/// Splits source into per-line `(code, comment)` strings with literals
/// blanked and comments removed from the code stream.
fn strip(source: &str) -> Vec<(String, String)> {
    let bytes = source.as_bytes();
    let mut out: Vec<(String, String)> = vec![(String::new(), String::new())];
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            out.push((String::new(), String::new()));
            i += 1;
            continue;
        }
        let line = match out.last_mut() {
            Some(line) => line,
            None => break, // unreachable: out starts non-empty
        };
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if b == b'"' {
                    line.0.push('"');
                    state = State::Str;
                    i += 1;
                } else if b == b'r' && raw_string_hashes(&bytes[i..]).is_some() {
                    let hashes = raw_string_hashes(&bytes[i..]).unwrap_or(0);
                    line.0.push_str("r\"");
                    state = State::RawStr(hashes);
                    i += 1 + hashes as usize + 1;
                } else if b == b'\'' {
                    // Char literal vs lifetime. A char literal is 'x',
                    // '\..', or '\u{..}'; a lifetime is '<ident> with no
                    // closing quote.
                    if let Some(len) = char_literal_len(&bytes[i..]) {
                        line.0.push_str("' '");
                        i += len;
                    } else {
                        line.0.push('\'');
                        i += 1;
                    }
                } else {
                    line.0.push(b as char);
                    i += 1;
                }
            }
            State::LineComment => {
                line.1.push(b as char);
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    line.1.push(b as char);
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' {
                    // Skip the escaped byte, but never consume a newline
                    // (line records must stay aligned with the source).
                    i += if bytes.get(i + 1) == Some(&b'\n') {
                        1
                    } else {
                        2
                    };
                } else if b == b'"' {
                    line.0.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' && closes_raw_string(&bytes[i..], hashes) {
                    line.0.push('"');
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
        }
    }
    out
}

/// If `bytes` starts a raw string (`r"`, `r#"`, `br##"` …), the number of
/// `#` marks; `None` otherwise. `bytes[0]` is `b'r'`.
fn raw_string_hashes(bytes: &[u8]) -> Option<u32> {
    let mut j = 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some(hashes)
}

fn closes_raw_string(bytes: &[u8], hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(k) == Some(&b'#'))
}

/// Length of the char literal starting at `bytes[0] == b'\''`, or `None`
/// if this is a lifetime.
fn char_literal_len(bytes: &[u8]) -> Option<usize> {
    match bytes.get(1)? {
        b'\\' => {
            // Escaped char: `bytes[2]` is the escaped character itself and
            // never closes the literal (`'\''` is the quote char), so the
            // scan for the closing quote starts after it (handles \u{...}).
            let mut j = 3;
            while j < bytes.len() && j < 12 {
                if bytes[j] == b'\'' {
                    return Some(j + 1);
                }
                j += 1;
            }
            None
        }
        b'\'' => None, // '' is not a char literal
        _ => {
            // A plain char literal closes immediately; a lifetime does
            // not. Multi-byte UTF-8 chars: find the next quote within
            // the max UTF-8 width.
            let mut j = 2;
            while j < bytes.len() && j <= 5 {
                if bytes[j] == b'\'' {
                    return Some(j + 1);
                }
                if bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' {
                    j += 1;
                } else {
                    break;
                }
            }
            None
        }
    }
}

/// Marks each line that sits inside `#[cfg(test)]`-gated or `#[test]`
/// code by tracking brace depth over the stripped code stream.
fn mark_test_regions(stripped: &[(String, String)]) -> Vec<bool> {
    let mut in_test = vec![false; stripped.len()];
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    let mut region_depths: Vec<i64> = Vec::new();
    for (idx, (code, _)) in stripped.iter().enumerate() {
        if !region_depths.is_empty() {
            in_test[idx] = true;
        }
        let bytes = code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'#' if bytes.get(i + 1) == Some(&b'[') => {
                    let (content, len) = attr_content(&bytes[i..]);
                    if attr_is_test(&content) {
                        pending_attr = true;
                        in_test[idx] = true;
                    }
                    i += len;
                }
                b'{' => {
                    depth += 1;
                    if pending_attr {
                        region_depths.push(depth);
                        pending_attr = false;
                        in_test[idx] = true;
                    }
                    i += 1;
                }
                b'}' => {
                    if region_depths.last() == Some(&depth) {
                        region_depths.pop();
                    }
                    depth -= 1;
                    i += 1;
                }
                b';' if pending_attr && region_depths.is_empty() => {
                    // `#[cfg(test)] mod tests;` — out-of-line test module;
                    // the attribute gates nothing further in this file.
                    pending_attr = false;
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }
    in_test
}

/// Extracts the bracketed content of an attribute starting at `#[` and
/// its byte length in the code stream.
fn attr_content(bytes: &[u8]) -> (String, usize) {
    let mut j = 2;
    let mut nest = 1;
    let mut content = String::new();
    while j < bytes.len() && nest > 0 {
        match bytes[j] {
            b'[' => nest += 1,
            b']' => nest -= 1,
            b => {
                if nest >= 1 {
                    content.push(b as char);
                }
            }
        }
        j += 1;
    }
    (content, j)
}

fn attr_is_test(content: &str) -> bool {
    let content = content.trim();
    content == "test"
        || content.ends_with("::test")
        || (content.starts_with("cfg")
            && contains_word(content, "test")
            && !content.contains("not("))
}

/// Whether `word` appears in `text` bounded by non-identifier chars.
pub fn contains_word(text: &str, word: &str) -> bool {
    find_word(text, word, 0).is_some()
}

/// Finds `word` in `text` at or after byte offset `from`, bounded by
/// non-identifier characters on both sides.
pub fn find_word(text: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut start = from;
    while let Some(pos) = text.get(start..).and_then(|t| t.find(word)) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let f = scan("let x = \"HashMap // not code\"; // HashMap in comment\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.contains("HashMap"));
    }

    #[test]
    fn raw_strings_are_stripped() {
        let f = scan("let x = r#\"unwrap() \"quoted\" inside\"#; x.real()\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("real"));
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let f = scan("let c = '\"'; let d: &'static str = \"x\"; panic!()\n");
        assert!(f.lines[0].code.contains("panic!"));
    }

    #[test]
    fn nested_block_comments_close() {
        let f = scan("/* a /* b */ still comment */ code_here()\n");
        assert!(f.lines[0].code.contains("code_here"));
        assert!(!f.lines[0].code.contains("still"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test, "attr line");
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn test_fn_region_is_marked() {
        let src = "#[test]\nfn works() {\n    boom();\n}\nfn lib() {}\n";
        let f = scan(src);
        assert!(f.lines[2].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn allow_applies_to_own_and_next_line() {
        let src = "// bdb-lint: allow(panic-hygiene): fine here\nx.unwrap();\ny.unwrap();\n";
        let f = scan(src);
        assert!(f.allowed(0, "panic-hygiene"));
        assert!(f.allowed(1, "panic-hygiene"));
        assert!(!f.allowed(2, "panic-hygiene"));
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(contains_word("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_word("MyHashMapLike", "HashMap"));
    }

    #[test]
    fn escaped_quote_char_literal_does_not_open_a_string() {
        // `'\''` used to be consumed short, leaving a stray `'` that could
        // swallow the rest of the line as a bogus literal.
        let f = scan("let q = '\\''; x.unwrap();\nlet n = '\\n'; y.unwrap();\n");
        assert!(f.lines[0].code.contains("unwrap"), "{:?}", f.lines[0]);
        assert!(f.lines[1].code.contains("unwrap"), "{:?}", f.lines[1]);
    }

    #[test]
    fn multiline_raw_string_with_hashes_keeps_line_numbers() {
        let src = "let s = r##\"first\nmid \"# not the end\nlast\"##; a.unwrap();\nb.unwrap();\n";
        let f = scan(src);
        assert_eq!(f.lines.len(), 5, "one record per source line + trailer");
        assert!(!f.lines[1].code.contains("not"), "raw body is blanked");
        assert!(
            f.lines[2].code.contains("unwrap"),
            "close detected in line 3"
        );
        assert!(f.lines[3].code.contains("unwrap"), "line 4 still aligned");
    }

    #[test]
    fn multiline_nested_block_comment_keeps_line_numbers() {
        let src = "/* outer\n/* inner */\nstill comment */ x.unwrap();\ny.unwrap();\n";
        let f = scan(src);
        assert!(!f.lines[2].code.contains("still"));
        assert!(f.lines[2].code.contains("unwrap"));
        assert!(f.lines[3].code.contains("unwrap"));
    }

    #[test]
    fn allow_lists_multiple_rules() {
        let src = "// bdb-lint: allow(panic-hygiene, panic-reachability): both fine\nx.unwrap();\n";
        let f = scan(src);
        assert!(f.allowed(1, "panic-hygiene"));
        assert!(f.allowed(1, "panic-reachability"));
        assert!(!f.allowed(1, "determinism"));
    }

    #[test]
    fn suppression_usage_feeds_stale_directive_audit() {
        let src = "// bdb-lint: allow(panic-hygiene): used\nx.unwrap();\n// bdb-lint: allow(determinism): never consulted\nlet y = 1;\n";
        let f = scan(src);
        assert!(f.suppressed(1, "panic-hygiene"));
        let stale = f.stale_directives();
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "determinism");
        assert_eq!(stale[0].line_idx, 2);
    }
}
