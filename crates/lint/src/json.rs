//! Canonical JSON for the artifact passes — a re-export of the
//! workspace's single reference implementation in [`bdb_codec::json`].
//!
//! The linter used to carry a deliberate byte-format mirror of the
//! engine's encoder; the two were deduplicated behind `bdb-codec` so the
//! codec has exactly one JSON reference form. Drift protection moved
//! with it: the golden binary fixtures under `contracts/fixtures/` (the
//! `binary-stability` pass) pin the reference form itself, and every
//! artifact pass still re-encodes checked-in JSON and compares bytes, so
//! a hand-edited, non-canonical artifact surfaces exactly as before.

pub use bdb_codec::json::{parse, ParseError, Value};
