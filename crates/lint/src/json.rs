//! Minimal JSON parser and canonical encoder for the artifact passes.
//!
//! Deliberately mirrors the byte format of `bdb_engine::json` (compact,
//! insertion-ordered objects, floats via Rust's shortest-roundtrip `{:?}`)
//! without depending on it: the linter re-encodes every checked-in JSON
//! artifact and compares bytes, so a drift between the two encoders — or
//! a hand-edited, non-canonical artifact — surfaces as a `cache-format`
//! or `bench-format` diagnostic.

use std::fmt::Write as _;

/// A parsed JSON value (objects preserve key order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is a number or a non-finite sentinel string
    /// (`"NaN"`, `"inf"`, `"-inf"`), i.e. decodes as `f64`.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::UInt(_) | Value::Float(_))
            || matches!(self, Value::Str(s) if s == "NaN" || s == "inf" || s == "-inf")
    }

    /// Canonical compact encoding (the byte format the engine writes).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(f) => {
                let _ = write!(out, "{f:?}");
            }
            Value::Str(s) => write_str(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> String {
        format!("{message} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("malformed number"))?;
        if !is_float && !text.starts_with('-') {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_byte_stable() {
        let text = r#"{"id":"H-CC","n":17,"x":0.125,"arr":[1,2.5,"inf"],"b":true,"z":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.encode(), text);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
    }

    #[test]
    fn numeric_sentinels_recognized() {
        assert!(parse("\"NaN\"").unwrap().is_numeric());
        assert!(parse("3.5").unwrap().is_numeric());
        assert!(!parse("\"text\"").unwrap().is_numeric());
    }
}
