//! `bdb-lint` — repo-native static analysis for the BigDataBench
//! reproduction.
//!
//! The engine's headline guarantee (bit-identical profiles at any thread
//! count, byte-stable cache files) and the paper's structural invariants
//! (77 workloads, 45 metrics, 17 clusters) are runtime-tested but easy to
//! silently regress. This crate enforces them at lint time with two pass
//! families:
//!
//! * **Source passes** run a lightweight Rust scanner ([`lexer`]) over
//!   every workspace crate:
//!   - `determinism` — no unordered-collection types (`HashMap` /
//!     `HashSet`), wall-clock reads (`Instant` / `SystemTime`), or
//!     thread-identity queries inside the profile-producing crates
//!     (`engine`, `sim`, `wcrt`, `trace`, `cluster`). Keyed-lookup-only
//!     uses are annotated with an explicit allowlist comment.
//!   - `panic-hygiene` — no `.unwrap()` / `.expect(..)` / `panic!` in
//!     library code outside tests.
//!   - `workspace-hygiene` — member crates resolve every dependency
//!     through `[workspace.dependencies]`, and the vendored shims stay
//!     unified (no stray path deps).
//!   - `batched-dispatch` — the trace-replay/sweep hot loops
//!     (`trace/src/buffer.rs`, `sim/src/fused.rs`) deliver events via
//!     `exec_batch`, never one virtual `TraceSink::exec` call per op.
//!   - `raw-fs` — engine sources outside `store.rs` never call
//!     `std::fs` directly; all disk I/O routes through the `CacheStore`
//!     abstraction so chaos injection and the crash-safety counters see
//!     every operation.
//!   - `endianness` — the binary columnar format (`crates/codec`) is
//!     little-endian by contract; big-endian and native-endian byte
//!     conversions are banned there so records stay portable.
//! * **Artifact passes** statically validate the checked-in contracts:
//!   the catalog spec (77 workloads), metric schema (45 metrics), the
//!   reduction config (17 clusters, weights summing to 77), the JSON
//!   schema / byte-stability of `results/cache` entries (both `.json`
//!   and binary `.bin` forms) and `BENCH_*.json`, and the golden binary
//!   fixtures under `contracts/fixtures/` (`binary-stability`).
//!
//! Diagnostics carry `file:line` and a rule id and are suppressible with
//! `// bdb-lint: allow(<rule>): <justification>` on the offending line or
//! the line above it.

pub mod graph;
pub mod json;
pub mod knobs;
pub mod lexer;
pub mod parse;
pub mod reach;
pub mod report;

mod artifact;
mod manifest;
mod source;

use std::fmt;
use std::path::{Path, PathBuf};

/// Paper invariant: the full catalog enumerates exactly 77 workloads.
pub const PAPER_WORKLOADS: usize = 77;
/// Paper invariant: the characterization vector has exactly 45 metrics.
pub const PAPER_METRICS: usize = 45;
/// Paper invariant: the reduction clusters 77 workloads into 17.
pub const PAPER_CLUSTERS: usize = 17;

/// Every rule id with a one-line description, in report order.
pub const RULES: &[(&str, &str)] = &[
    (
        "determinism",
        "no unordered collections, wall-clock reads, or thread-identity queries in profile-producing crates",
    ),
    (
        "panic-hygiene",
        "no unwrap()/expect()/panic! in library code outside tests",
    ),
    (
        "workspace-hygiene",
        "member crates resolve dependencies through [workspace.dependencies]; vendored shims stay unified",
    ),
    (
        "batched-dispatch",
        "no per-op TraceSink::exec calls inside trace-replay/sweep hot loops (deliver through exec_batch)",
    ),
    (
        "raw-fs",
        "engine disk I/O routes through CacheStore (store.rs); no direct std::fs calls elsewhere in the engine",
    ),
    (
        "catalog-spec",
        "contracts/catalog.tsv lists exactly 77 unique workloads covering every subclass",
    ),
    (
        "metric-schema",
        "contracts/metrics.txt lists exactly 45 unique metric names",
    ),
    (
        "reduction-config",
        "contracts/reduction.txt pins 17 clusters whose weights sum to 77",
    ),
    (
        "cache-format",
        "results/cache entries are schema-valid and byte-stable under canonical re-encoding",
    ),
    (
        "bench-format",
        "BENCH_*.json records are schema-valid and byte-stable under canonical re-encoding",
    ),
    (
        "binary-stability",
        "golden binary fixtures under contracts/fixtures/ decode, re-encode byte-identically, and match their JSON interchange sidecars",
    ),
    (
        "endianness",
        "the binary format is little-endian only: no to_be/from_be/to_ne/from_ne byte conversions inside crates/codec",
    ),
    (
        "nondeterminism-reachability",
        "no call path from a profile/trace/wire/cache serialization entry point to a nondeterminism source (unordered collections, wall clock, thread identity) anywhere in the workspace",
    ),
    (
        "panic-reachability",
        "no unwrap()/expect()/panic!/slice-indexing reachable from the cluster worker loop, bdb_clusterd main, journal replay, or store recovery",
    ),
    (
        "hot-loop-allocation",
        "no allocation, format!, env reads, or blocking fs calls reachable from the fused-sweep replay and exec_batch hot loops",
    ),
    (
        "dead-knob",
        "every BDB_* env read is listed in contracts/knobs.txt and documented; listed knobs are actually read",
    ),
    (
        "stale-allow",
        "every bdb-lint allow(...) comment suppresses at least one finding; stale suppressions must be removed",
    ),
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// File the finding is in, relative to the workspace root.
    pub file: PathBuf,
    /// 1-indexed source line; 0 for whole-file findings.
    pub line: usize,
    /// Rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// For reachability rules: the source→sink call chain, one
    /// `path (file:line)` entry per hop. Empty for per-line findings.
    pub chain: Vec<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(
                f,
                "{}: [{}] {}",
                self.file.display(),
                self.rule,
                self.message
            )?;
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file.display(),
                self.line,
                self.rule,
                self.message
            )?;
        }
        for (i, hop) in self.chain.iter().enumerate() {
            write!(
                f,
                "\n    {}{hop}",
                if i == 0 { "chain: " } else { "    -> " }
            )?;
        }
        Ok(())
    }
}

impl Diagnostic {
    fn new(file: &Path, line: usize, rule: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            file: file.to_path_buf(),
            line,
            rule,
            message: message.into(),
            chain: Vec::new(),
        }
    }

    /// Attaches a source→sink call chain to the finding.
    fn with_chain(mut self, chain: Vec<String>) -> Self {
        self.chain = chain;
        self
    }
}

/// Runs every pass over the workspace at `root`. `rules` filters to the
/// given rule ids (empty = all). Diagnostics come back sorted by
/// (file, line, rule) so output is deterministic.
pub fn run(root: &Path, rules: &[String]) -> Result<Vec<Diagnostic>, String> {
    let ws = graph::Workspace::load(root)?;
    let call_graph = graph::Graph::build(&ws);
    let mut diags = Vec::new();
    diags.extend(source::run(&ws));
    diags.extend(reach::run(&ws, &call_graph));
    diags.extend(knobs::run(&ws));
    diags.extend(manifest::run(root)?);
    diags.extend(artifact::run(root)?);
    // Last, after every pass has had its chance to consume a directive.
    diags.extend(reach::stale_allows(&ws));
    if !rules.is_empty() {
        diags.retain(|d| rules.iter().any(|r| r == d.rule));
    }
    for d in &mut diags {
        if let Ok(rel) = d.file.strip_prefix(root) {
            d.file = rel.to_path_buf();
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(diags)
}

/// Ascends from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Recursively lists `*.rs` files under `dir`, sorted for deterministic
/// diagnostic order. Missing directories yield an empty list.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    collect_rust_files(dir, &mut files);
    files.sort();
    files
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Sorted immediate subdirectories of `dir` (empty if `dir` is missing).
fn subdirs(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut dirs: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    dirs
}
