//! Source→sink reachability rules over the call graph.
//!
//! Each rule family pins a set of *root* functions (pipeline entry
//! points, fleet loops, recovery paths, hot loops) and a set of
//! *primitive* operations (wall-clock reads, panics, allocations, …)
//! that must not be reachable from them. A single BFS per family from
//! all roots yields, for every reachable function, the shortest call
//! chain back to the nearest root; diagnostics anchor at the offending
//! primitive's line and print that chain hop by hop.
//!
//! Roots are named by `(crate key, path suffix)` so the same specs
//! resolve against both the real workspace and the fixture
//! mini-workspaces used by the rule tests.

use crate::graph::{bfs, chain_to, Graph, Workspace};
use crate::parse::{FileKind, Prim};
use crate::Diagnostic;

/// A root function: crate key plus path suffix (fn name last).
struct RootSpec {
    krate: &'static str,
    suffix: &'static [&'static str],
}

/// One reachability rule family.
struct ReachRule {
    rule: &'static str,
    /// Per-line rule whose `allow(..)` justification also covers this
    /// family (the reachability rule subsumes the blanket rule, so one
    /// written justification serves both).
    also_allowed_as: Option<&'static str>,
    roots: &'static [RootSpec],
    /// What the roots are, for the diagnostic message.
    root_kind: &'static str,
    /// Which primitives this family bans, with a short description.
    prims: &'static [(Prim, &'static str)],
    /// If non-empty, [`Prim::Indexing`] findings are confined to these
    /// crates (kernel code indexes fixed-shape arrays constantly; the
    /// fleet/recovery crates are where a panic is expensive).
    indexing_crates: &'static [&'static str],
    /// Functions exempt from this family by name. Hot-loop rules skip
    /// constructors: allocation there is per-object setup amortised over
    /// the replay, not steady-state work.
    exempt_fns: &'static [&'static str],
}

const NONDET: ReachRule = ReachRule {
    rule: "nondeterminism-reachability",
    also_allowed_as: Some("determinism"),
    roots: &[
        RootSpec {
            krate: "engine",
            suffix: &["Engine", "profile"],
        },
        RootSpec {
            krate: "engine",
            suffix: &["Engine", "profile_all"],
        },
        RootSpec {
            krate: "engine",
            suffix: &["Engine", "sweep"],
        },
        RootSpec {
            krate: "engine",
            suffix: &["Engine", "run_task"],
        },
        RootSpec {
            krate: "cluster",
            suffix: &["run_worker"],
        },
        RootSpec {
            krate: "cluster",
            suffix: &["profile_all_distributed"],
        },
        RootSpec {
            krate: "cluster",
            suffix: &["profile_all_distributed_journaled"],
        },
        RootSpec {
            krate: "cluster",
            suffix: &["Coordinator", "run_elastic"],
        },
        RootSpec {
            krate: "wcrt",
            suffix: &["characterize"],
        },
        RootSpec {
            krate: "wcrt",
            suffix: &["reduce"],
        },
    ],
    root_kind: "profile/serialization entry",
    prims: &[
        (Prim::WallClock, "wall-clock read"),
        (Prim::ThreadIdentity, "thread-identity query"),
        (Prim::UnorderedCollection, "unordered collection"),
    ],
    indexing_crates: &[],
    exempt_fns: &[],
};

const PANIC: ReachRule = ReachRule {
    rule: "panic-reachability",
    also_allowed_as: Some("panic-hygiene"),
    roots: &[
        RootSpec {
            krate: "cluster",
            suffix: &["run_worker"],
        },
        RootSpec {
            krate: "cluster",
            suffix: &["bdb_clusterd", "main"],
        },
        RootSpec {
            krate: "serve",
            suffix: &["bdb_served", "main"],
        },
        RootSpec {
            krate: "engine",
            suffix: &["RunJournal", "open"],
        },
        RootSpec {
            krate: "engine",
            suffix: &["Engine", "admit"],
        },
        RootSpec {
            krate: "engine",
            suffix: &["reclaim_stale_tmp"],
        },
        RootSpec {
            krate: "engine",
            suffix: &["enforce_cache_cap"],
        },
    ],
    root_kind: "fleet/recovery path",
    prims: &[
        (Prim::Panic, "can panic"),
        (Prim::Indexing, "slice/array indexing can panic"),
    ],
    indexing_crates: &["cluster", "engine", "serve"],
    exempt_fns: &[],
};

const HOT_LOOP: ReachRule = ReachRule {
    rule: "hot-loop-allocation",
    also_allowed_as: None,
    roots: &[
        RootSpec {
            krate: "sim",
            suffix: &["fused_points"],
        },
        RootSpec {
            krate: "sim",
            suffix: &["fused_point"],
        },
        RootSpec {
            krate: "sim",
            suffix: &["fused_points_parallel"],
        },
        RootSpec {
            krate: "sim",
            suffix: &["ReplayLru", "replay_ifetch"],
        },
        RootSpec {
            krate: "sim",
            suffix: &["ReplayLru", "replay_data"],
        },
        RootSpec {
            krate: "sim",
            suffix: &["exec_batch"],
        },
        RootSpec {
            krate: "trace",
            suffix: &["exec_batch"],
        },
    ],
    root_kind: "hot loop",
    prims: &[
        (Prim::Alloc, "allocation"),
        (Prim::EnvRead, "environment read"),
        (Prim::BlockingFs, "blocking fs call"),
    ],
    indexing_crates: &[],
    exempt_fns: &["new", "with_capacity", "default"],
};

/// Runs all three reachability families over a built graph.
pub fn run(ws: &Workspace, graph: &Graph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for rule in [&NONDET, &PANIC, &HOT_LOOP] {
        run_rule(ws, graph, rule, &mut diags);
    }
    diags
}

fn run_rule(ws: &Workspace, graph: &Graph, rule: &ReachRule, diags: &mut Vec<Diagnostic>) {
    let mut roots = Vec::new();
    for spec in rule.roots {
        roots.extend(graph.find(ws, spec.krate, spec.suffix));
    }
    if roots.is_empty() {
        return;
    }
    let reached = bfs(graph, &roots);
    for (&node, _) in reached.iter() {
        let nref = graph.nodes[node];
        let pf = &ws.files[nref.file];
        let Some(f) = pf.fns.get(nref.item) else {
            continue;
        };
        if rule.exempt_fns.contains(&f.name.as_str()) {
            continue;
        }
        for prim in &f.prims {
            let Some((_, what)) = rule.prims.iter().find(|(p, _)| *p == prim.prim) else {
                continue;
            };
            if prim.prim == Prim::Indexing
                && !rule.indexing_crates.is_empty()
                && !rule.indexing_crates.contains(&pf.krate.as_str())
            {
                continue;
            }
            let idx = prim.line.saturating_sub(1);
            if pf.scanned.suppressed(idx, rule.rule) {
                continue;
            }
            if let Some(alias) = rule.also_allowed_as {
                if pf.scanned.suppressed(idx, alias) {
                    continue;
                }
            }
            let chain = chain_text(ws, graph, &reached, node, prim.line);
            let root_path = chain
                .first()
                .map(|h| h.split(' ').next().unwrap_or("").to_owned())
                .unwrap_or_default();
            diags.push(
                Diagnostic::new(
                    &ws.root.join(&pf.rel),
                    prim.line,
                    rule.rule,
                    format!(
                        "`{}` ({what}) is reachable from {} `{root_path}`",
                        prim.token, rule.root_kind
                    ),
                )
                .with_chain(chain),
            );
        }
    }
}

/// Renders a BFS chain as `path (file:line)` hops; the final hop points
/// at the primitive's own line.
fn chain_text(
    ws: &Workspace,
    graph: &Graph,
    reached: &std::collections::BTreeMap<usize, Option<(usize, usize)>>,
    node: usize,
    sink_line: usize,
) -> Vec<String> {
    chain_to(reached, node)
        .into_iter()
        .map(|(n, call_line)| {
            let file = &ws.files[graph.nodes[n].file];
            let line = call_line.unwrap_or(sink_line);
            format!("{} ({}:{line})", graph.display_path(n), file.rel.display())
        })
        .collect()
}

/// The `stale-allow` audit: every `bdb-lint: allow(..)` directive must
/// have suppressed at least one finding by the time all passes have run.
/// Must be called last.
pub fn stale_allows(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for pf in &ws.files {
        if pf.kind == FileKind::TestOrBench {
            // Test code is outside every source pass; directives there
            // are documentation, not suppressions.
            continue;
        }
        for d in pf.scanned.stale_directives() {
            if !crate::RULES.iter().any(|(r, _)| *r == d.rule) {
                diags.push(Diagnostic::new(
                    &ws.root.join(&pf.rel),
                    d.line_idx + 1,
                    "stale-allow",
                    format!("allow({}) names an unknown rule", d.rule),
                ));
                continue;
            }
            diags.push(Diagnostic::new(
                &ws.root.join(&pf.rel),
                d.line_idx + 1,
                "stale-allow",
                format!(
                    "allow({}) suppresses nothing — remove the stale directive",
                    d.rule
                ),
            ));
        }
    }
    diags
}
