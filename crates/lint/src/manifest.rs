//! The `workspace-hygiene` pass: every member crate's dependencies must
//! resolve through `[workspace.dependencies]` (so the offline vendored
//! shims stay unified at a single declaration site), and each vendored
//! shim the workspace declares must actually exist under `vendor/` with
//! a matching package name.
//!
//! The parser is a deliberately small line-based TOML subset — the repo's
//! manifests keep one dependency per line, and the pass diagnoses (rather
//! than mis-parses) anything fancier.

use crate::Diagnostic;
use std::path::Path;

const RULE: &str = "workspace-hygiene";

/// Runs the pass over the root manifest, member manifests, and vendor
/// shims.
pub fn run(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let mut diags = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    let Ok(root_text) = std::fs::read_to_string(&root_manifest) else {
        diags.push(Diagnostic::new(
            &root_manifest,
            0,
            RULE,
            "workspace root Cargo.toml is missing or unreadable",
        ));
        return Ok(diags);
    };

    let workspace_deps = section_entries(&root_text, "workspace.dependencies");
    if workspace_deps.is_empty() {
        diags.push(Diagnostic::new(
            &root_manifest,
            0,
            RULE,
            "no [workspace.dependencies] section — member crates have nothing to unify against",
        ));
    }
    let dep_names: Vec<&str> = workspace_deps.iter().map(|e| e.name.as_str()).collect();

    // Vendored shims named by the workspace must exist and match by name.
    for entry in &workspace_deps {
        if let Some(path) = &entry.path {
            if path.starts_with("vendor/") {
                check_vendor_shim(root, entry, path, &mut diags);
            }
        }
    }

    // The root package's own dependency sections follow the same rule.
    check_member_manifest(&root_manifest, &root_text, &dep_names, &mut diags);

    // Member crates under crates/.
    for dir in crate::subdirs(&root.join("crates")) {
        let manifest = dir.join("Cargo.toml");
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            diags.push(Diagnostic::new(
                &manifest,
                0,
                RULE,
                "member crate has no readable Cargo.toml",
            ));
            continue;
        };
        check_member_manifest(&manifest, &text, &dep_names, &mut diags);
    }

    // Vendor crates may depend on sibling shims by relative path (they sit
    // below the workspace-dependency layer), but nothing else.
    for dir in crate::subdirs(&root.join("vendor")) {
        let manifest = dir.join("Cargo.toml");
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            continue;
        };
        for (lineno, entry) in numbered_section_entries(&text, "dependencies") {
            match &entry.path {
                Some(p) if p.starts_with("../") => {}
                Some(p) => diags.push(Diagnostic::new(
                    &manifest,
                    lineno,
                    RULE,
                    format!(
                        "vendored shim dependency `{}` points outside vendor/ (path `{p}`)",
                        entry.name
                    ),
                )),
                None if !entry.workspace => diags.push(Diagnostic::new(
                    &manifest,
                    lineno,
                    RULE,
                    format!(
                        "vendored shim dependency `{}` must be a sibling path dep, not a registry dep",
                        entry.name
                    ),
                )),
                None => {}
            }
        }
    }

    Ok(diags)
}

fn check_vendor_shim(root: &Path, entry: &DepEntry, path: &str, diags: &mut Vec<Diagnostic>) {
    let shim_manifest = root.join(path).join("Cargo.toml");
    let Ok(text) = std::fs::read_to_string(&shim_manifest) else {
        diags.push(Diagnostic::new(
            &root.join("Cargo.toml"),
            0,
            RULE,
            format!(
                "[workspace.dependencies] `{}` points at `{path}` but no shim manifest exists there",
                entry.name
            ),
        ));
        return;
    };
    let package_name = section_entries(&text, "package")
        .into_iter()
        .find(|e| e.name == "name")
        .and_then(|e| e.value_string);
    if package_name.as_deref() != Some(entry.name.as_str()) {
        diags.push(Diagnostic::new(
            &shim_manifest,
            0,
            RULE,
            format!(
                "shim package name {:?} does not match workspace dependency `{}`",
                package_name.unwrap_or_default(),
                entry.name
            ),
        ));
    }
}

/// Checks one member manifest: every entry in a dependency section must
/// carry `workspace = true` and name a key that exists in
/// `[workspace.dependencies]`.
fn check_member_manifest(
    manifest: &Path,
    text: &str,
    workspace_deps: &[&str],
    diags: &mut Vec<Diagnostic>,
) {
    for section in ["dependencies", "dev-dependencies", "build-dependencies"] {
        for (lineno, entry) in numbered_section_entries(text, section) {
            if !entry.workspace {
                diags.push(Diagnostic::new(
                    manifest,
                    lineno,
                    RULE,
                    format!(
                        "dependency `{}` bypasses [workspace.dependencies] — use `{}.workspace = true`",
                        entry.name, entry.name
                    ),
                ));
            } else if !workspace_deps.contains(&entry.name.as_str()) {
                diags.push(Diagnostic::new(
                    manifest,
                    lineno,
                    RULE,
                    format!(
                        "dependency `{}` is not declared in [workspace.dependencies]",
                        entry.name
                    ),
                ));
            }
        }
    }
}

/// One `name = …` entry in a manifest section.
pub(crate) struct DepEntry {
    pub(crate) name: String,
    /// `true` if the entry resolves via `workspace = true`.
    pub(crate) workspace: bool,
    /// The `path = "…"` component, if any.
    pub(crate) path: Option<String>,
    /// The value when it is a plain string (`name = "1.0"`).
    pub(crate) value_string: Option<String>,
}

pub(crate) fn section_entries(text: &str, section: &str) -> Vec<DepEntry> {
    numbered_section_entries(text, section)
        .into_iter()
        .map(|(_, e)| e)
        .collect()
}

/// Parses `name = value` lines inside `[section]`, keeping 1-indexed line
/// numbers. Handles the dotted form `name.workspace = true` and inline
/// tables on a single line.
fn numbered_section_entries(text: &str, section: &str) -> Vec<(usize, DepEntry)> {
    let mut entries = Vec::new();
    let mut in_section = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_section = line == format!("[{section}]");
            continue;
        }
        if !in_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((lhs, rhs)) = line.split_once('=') else {
            continue;
        };
        let lhs = lhs.trim();
        let rhs = rhs.trim();
        let (name, dotted_key) = match lhs.split_once('.') {
            Some((n, k)) => (n.trim(), Some(k.trim())),
            None => (lhs, None),
        };
        let workspace = dotted_key == Some("workspace") && rhs == "true"
            || rhs.contains("workspace") && rhs.contains("true") && rhs.starts_with('{');
        let path = if dotted_key == Some("path") {
            Some(unquote(rhs))
        } else {
            inline_table_value(rhs, "path")
        };
        let value_string = (dotted_key.is_none() && rhs.starts_with('"')).then(|| unquote(rhs));
        entries.push((
            idx + 1,
            DepEntry {
                name: name.to_owned(),
                workspace,
                path,
                value_string,
            },
        ));
    }
    entries
}

/// Extracts `key = "value"` from a single-line inline table.
fn inline_table_value(rhs: &str, key: &str) -> Option<String> {
    if !rhs.starts_with('{') {
        return None;
    }
    let at = crate::lexer::find_word(rhs, key, 0)?;
    let rest = rhs[at + key.len()..].trim_start().strip_prefix('=')?;
    Some(unquote(rest.trim_start()))
}

fn unquote(value: &str) -> String {
    let value = value.trim();
    let value = value.strip_prefix('"').unwrap_or(value);
    match value.find('"') {
        Some(end) => value[..end].to_owned(),
        None => value.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_dotted_and_inline_entries() {
        let text = "[dependencies]\nserde.workspace = true\nrand = { workspace = true }\nlocal = { path = \"../x\" }\nplain = \"1.0\"\n";
        let entries = section_entries(text, "dependencies");
        assert_eq!(entries.len(), 4);
        assert!(entries[0].workspace);
        assert!(entries[1].workspace);
        assert_eq!(entries[2].path.as_deref(), Some("../x"));
        assert_eq!(entries[3].value_string.as_deref(), Some("1.0"));
    }

    #[test]
    fn flags_non_workspace_dep() {
        let mut diags = Vec::new();
        check_member_manifest(
            Path::new("crates/x/Cargo.toml"),
            "[dependencies]\nrand = \"0.8\"\n",
            &["rand"],
            &mut diags,
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "workspace-hygiene");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn accepts_workspace_dep() {
        let mut diags = Vec::new();
        check_member_manifest(
            Path::new("crates/x/Cargo.toml"),
            "[dependencies]\nrand.workspace = true\n",
            &["rand"],
            &mut diags,
        );
        assert!(diags.is_empty());
    }

    #[test]
    fn flags_unknown_workspace_key() {
        let mut diags = Vec::new();
        check_member_manifest(
            Path::new("crates/x/Cargo.toml"),
            "[dependencies]\nmystery.workspace = true\n",
            &["rand"],
            &mut diags,
        );
        assert_eq!(diags.len(), 1);
    }
}
