//! Machine-readable reports and the blessable baseline.
//!
//! The JSON report reuses the workspace's canonical encoder
//! ([`bdb_codec::json::Value::encode`]) so output is byte-stable:
//! findings are already sorted by `(file, line, rule)` when they reach
//! this module, object keys are written in fixed insertion order, and no
//! timestamps or absolute paths appear anywhere in the document.
//!
//! The baseline file (`contracts/lint_baseline.json`) records findings
//! by `(file, rule, message)` — deliberately *without* line numbers, so
//! unrelated edits that shift a blessed finding up or down the file do
//! not resurrect it. CI fails only on findings not in the baseline;
//! `scripts/lint_bless.sh` regenerates it.

use crate::json::Value;
use crate::Diagnostic;

/// Schema version of both the report and the baseline document.
pub const SCHEMA_VERSION: u64 = 1;

/// Encodes findings as the canonical JSON report.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let rules = crate::RULES
        .iter()
        .map(|(id, desc)| {
            Value::object(vec![
                ("id", Value::Str((*id).to_owned())),
                ("description", Value::Str((*desc).to_owned())),
            ])
        })
        .collect();
    let findings = diags.iter().map(finding_value).collect();
    let mut by_rule: Vec<(String, Value)> = Vec::new();
    for d in diags {
        match by_rule.iter_mut().find(|(r, _)| r == d.rule) {
            Some((_, Value::UInt(n))) => *n += 1,
            Some(_) => {}
            None => by_rule.push((d.rule.to_owned(), Value::UInt(1))),
        }
    }
    by_rule.sort_by(|a, b| a.0.cmp(&b.0));
    let doc = Value::object(vec![
        ("version", Value::UInt(SCHEMA_VERSION)),
        ("rules", Value::Array(rules)),
        ("findings", Value::Array(findings)),
        (
            "summary",
            Value::object(vec![
                ("total", Value::UInt(diags.len() as u64)),
                ("by_rule", Value::Object(by_rule)),
            ]),
        ),
    ]);
    let mut out = doc.encode();
    out.push('\n');
    out
}

fn finding_value(d: &Diagnostic) -> Value {
    Value::object(vec![
        ("file", Value::Str(d.file.display().to_string())),
        ("line", Value::UInt(d.line as u64)),
        ("rule", Value::Str(d.rule.to_owned())),
        ("message", Value::Str(d.message.clone())),
        (
            "chain",
            Value::Array(d.chain.iter().map(|h| Value::Str(h.clone())).collect()),
        ),
    ])
}

/// Encodes the baseline document for the given findings.
pub fn baseline_json(diags: &[Diagnostic]) -> String {
    let mut keys: Vec<(String, String, String)> = diags
        .iter()
        .map(|d| {
            (
                d.file.display().to_string(),
                d.rule.to_owned(),
                d.message.clone(),
            )
        })
        .collect();
    keys.sort();
    keys.dedup();
    let findings = keys
        .into_iter()
        .map(|(file, rule, message)| {
            Value::object(vec![
                ("file", Value::Str(file)),
                ("rule", Value::Str(rule)),
                ("message", Value::Str(message)),
            ])
        })
        .collect();
    let doc = Value::object(vec![
        ("version", Value::UInt(SCHEMA_VERSION)),
        ("findings", Value::Array(findings)),
    ]);
    let mut out = doc.encode();
    out.push('\n');
    out
}

/// Parses a baseline document into `(file, rule, message)` keys.
pub fn parse_baseline(text: &str) -> Result<Vec<(String, String, String)>, String> {
    let doc = crate::json::parse(text).map_err(|e| format!("baseline parse error: {e:?}"))?;
    let version = doc.get("version").and_then(Value::as_u64);
    if version != Some(SCHEMA_VERSION) {
        return Err(format!(
            "baseline schema version {version:?} (expected {SCHEMA_VERSION})"
        ));
    }
    let mut keys = Vec::new();
    for f in doc
        .get("findings")
        .and_then(Value::as_array)
        .ok_or("baseline has no findings array")?
    {
        let field = |k: &str| -> Result<String, String> {
            f.get(k)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("baseline finding missing `{k}`"))
        };
        keys.push((field("file")?, field("rule")?, field("message")?));
    }
    Ok(keys)
}

/// Drops findings present in the baseline, returning only new ones.
pub fn filter_new(
    diags: Vec<Diagnostic>,
    baseline: &[(String, String, String)],
) -> Vec<Diagnostic> {
    diags
        .into_iter()
        .filter(|d| {
            let key = (
                d.file.display().to_string(),
                d.rule.to_owned(),
                d.message.clone(),
            );
            !baseline.contains(&key)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn diag(file: &str, line: usize, rule: &'static str, msg: &str) -> Diagnostic {
        Diagnostic {
            file: PathBuf::from(file),
            line,
            rule,
            message: msg.to_owned(),
            chain: vec!["a::b (x.rs:1)".to_owned(), "c::d (y.rs:9)".to_owned()],
        }
    }

    #[test]
    fn report_is_byte_stable_and_schema_shaped() {
        let diags = vec![
            diag("a.rs", 3, "determinism", "m1"),
            diag("b.rs", 7, "panic-hygiene", "m2"),
        ];
        let one = to_json(&diags);
        let two = to_json(&diags);
        assert_eq!(one, two, "same findings must encode byte-identically");
        let doc = crate::json::parse(&one).expect("report re-parses");
        assert_eq!(doc.get("version").and_then(Value::as_u64), Some(1));
        assert_eq!(
            doc.get("summary")
                .and_then(|s| s.get("total"))
                .and_then(Value::as_u64),
            Some(2)
        );
        let findings = doc.get("findings").and_then(Value::as_array).unwrap();
        assert_eq!(findings.len(), 2);
        for (key, f) in [("file", &findings[0]), ("chain", &findings[0])] {
            assert!(f.get(key).is_some(), "finding carries `{key}`");
        }
        let chain = findings[0].get("chain").and_then(Value::as_array).unwrap();
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn baseline_round_trips_and_filters_without_lines() {
        let blessed = vec![diag("a.rs", 3, "determinism", "m1")];
        let text = baseline_json(&blessed);
        let keys = parse_baseline(&text).expect("baseline parses");
        // Same finding on a different line is still baselined.
        let moved = diag("a.rs", 99, "determinism", "m1");
        let fresh = diag("a.rs", 4, "determinism", "new message");
        let new = filter_new(vec![moved, fresh.clone()], &keys);
        assert_eq!(new, vec![fresh]);
    }

    #[test]
    fn baseline_rejects_wrong_version() {
        assert!(parse_baseline("{\"version\":2,\"findings\":[]}").is_err());
    }
}
