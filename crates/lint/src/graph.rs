//! The workspace model and cross-crate call graph.
//!
//! [`Workspace::load`] parses every workspace source file once (library,
//! binary, and test/bench code — the per-line passes and the graph both
//! read from this single scan, which is also what lets the `stale-allow`
//! audit see every suppression consult). [`Graph::build`] then resolves
//! call expressions into edges between `fn` nodes:
//!
//! * **Path calls** (`a::b::f(..)`) resolve by path-suffix match against
//!   every known item path, after normalising `crate`/`self`/`super`
//!   prefixes and splicing `use` aliases and glob imports. Suffix
//!   matching makes re-exports (`pub use buffer::TraceBuffer`) resolve
//!   without tracking the re-export chains themselves.
//! * **`self.m(..)` calls** resolve inside the enclosing `impl` type
//!   first, falling back to plain method resolution.
//! * **Method calls** (`.m(..)`) are where a name-level resolver must be
//!   conservative: they link to every same-named `fn` in the caller's
//!   crate or its workspace dependencies — which is how trait-object
//!   dispatch (e.g. `transport.send(..)` reaching every `Transport`
//!   impl) gets edges at all — except for a stoplist of ubiquitous
//!   std-shadowing names (`get`, `insert`, `next`, …) and names with
//!   more than [`METHOD_FANOUT_CAP`] candidates, which are dropped to
//!   keep the graph from collapsing into noise. The trade-off is
//!   documented in DESIGN.md §16.
//!
//! Everything is ordered (files sorted, nodes in file order, adjacency
//! sorted) so that graph traversals — and therefore diagnostics and the
//! JSON report — are byte-deterministic.

use crate::parse::{self, Callee, FileKind, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Method names never resolved by bare name: they shadow ubiquitous
/// std methods, so a name-level match would wire unrelated types
/// together.
const METHOD_STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "drop",
    "from",
    "into",
    "try_from",
    "try_into",
    "as_ref",
    "as_mut",
    "deref",
    "next",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "iter_mut",
    "into_iter",
    "contains",
    "contains_key",
    "extend",
    "clear",
    "write",
    "read",
    "flush",
    "map",
    "and_then",
    "min",
    "max",
    "sort",
    "split",
    "parse",
    "finish",
    "update",
    "to_string",
    "as_str",
    "as_bytes",
];

/// Method calls whose name matches more candidates than this are left
/// unresolved — past this point a name carries no signal.
const METHOD_FANOUT_CAP: usize = 8;

/// Every parsed source file plus crate metadata.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// Parsed files, sorted by relative path.
    pub files: Vec<ParsedFile>,
    /// Crate key (directory name, or root package name) → crate ident
    /// as written in Rust paths (`bdb-engine` → `bdb_engine`).
    pub idents: BTreeMap<String, String>,
    /// Crate key → workspace crates it depends on (by crate key).
    pub deps: BTreeMap<String, BTreeSet<String>>,
}

impl Workspace {
    /// Parses every source file in the workspace at `root`. Vendored
    /// shims are exempt (they mirror external APIs); lint-test fixture
    /// trees are skipped so deliberate violations stay out of real runs.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut files = Vec::new();
        let mut idents = BTreeMap::new();
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut package_to_key: BTreeMap<String, String> = BTreeMap::new();

        let mut crate_dirs: Vec<(String, PathBuf)> = vec![(root_package_key(), root.to_path_buf())];
        for dir in crate::subdirs(&root.join("crates")) {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            crate_dirs.push((name, dir));
        }

        for (key, dir) in &crate_dirs {
            let manifest = std::fs::read_to_string(dir.join("Cargo.toml")).unwrap_or_default();
            let package = crate::manifest::section_entries(&manifest, "package")
                .into_iter()
                .find(|e| e.name == "name")
                .and_then(|e| e.value_string)
                .unwrap_or_else(|| key.clone());
            idents.insert(key.clone(), package.replace('-', "_"));
            package_to_key.insert(package, key.clone());
            let mut dep_names = BTreeSet::new();
            for section in ["dependencies", "dev-dependencies"] {
                for e in crate::manifest::section_entries(&manifest, section) {
                    dep_names.insert(e.name);
                }
            }
            deps.insert(key.clone(), dep_names);
        }
        // Translate dependency package names to crate keys, dropping
        // external (vendored) deps.
        let deps = deps
            .into_iter()
            .map(|(key, names)| {
                let resolved = names
                    .into_iter()
                    .filter_map(|n| package_to_key.get(&n).cloned())
                    .collect();
                (key, resolved)
            })
            .collect();

        for (key, dir) in &crate_dirs {
            for (sub, kind_of) in [
                ("src", None),
                ("tests", Some(FileKind::TestOrBench)),
                ("benches", Some(FileKind::TestOrBench)),
                ("examples", Some(FileKind::TestOrBench)),
            ] {
                for file in crate::rust_files(&dir.join(sub)) {
                    let Ok(rel) = file.strip_prefix(root) else {
                        continue;
                    };
                    if rel.components().any(|c| c.as_os_str() == "fixtures") {
                        continue;
                    }
                    let Ok(in_crate) = file.strip_prefix(dir) else {
                        continue;
                    };
                    let kind = kind_of.unwrap_or_else(|| {
                        if in_crate.starts_with("src/bin") {
                            FileKind::Bin
                        } else {
                            FileKind::Lib
                        }
                    });
                    let module = module_path(in_crate, kind);
                    let text = std::fs::read_to_string(&file)
                        .map_err(|e| format!("read {}: {e}", file.display()))?;
                    files.push(parse::parse_file(rel, key, &module, kind, &text));
                }
            }
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            idents,
            deps,
        })
    }

    /// The Rust path ident for a crate key (`engine` → `bdb_engine`).
    pub fn ident<'a>(&'a self, key: &'a str) -> &'a str {
        self.idents.get(key).map(String::as_str).unwrap_or(key)
    }
}

/// The crate key used for the workspace's root package.
pub(crate) fn root_package_key() -> String {
    "bigdatabench-repro".to_owned()
}

/// Module path of a file within its crate from its location. A binary
/// target is really its own crate root; giving it its file stem as a
/// module (`bdb_clusterd::main`) keeps same-named bin fns apart.
fn module_path(in_crate: &Path, kind: FileKind) -> Vec<String> {
    if kind == FileKind::TestOrBench {
        return Vec::new();
    }
    if kind == FileKind::Bin {
        return in_crate
            .file_stem()
            .map(|s| vec![s.to_string_lossy().into_owned()])
            .unwrap_or_default();
    }
    let mut parts: Vec<String> = in_crate
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    if parts.first().map(String::as_str) == Some("src") {
        parts.remove(0);
    }
    let Some(last) = parts.pop() else {
        return Vec::new();
    };
    let stem = last.trim_end_matches(".rs");
    if stem != "lib" && stem != "main" && stem != "mod" {
        parts.push(stem.to_owned());
    }
    parts
}

/// One node in the call graph: a `fn` item in a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnRef {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's `fns`.
    pub item: usize,
}

/// The resolved cross-crate call graph.
#[derive(Debug)]
pub struct Graph {
    /// Nodes in (file, item) order.
    pub nodes: Vec<FnRef>,
    /// `edges[n]` — sorted, deduplicated `(callee, call line)` pairs.
    pub edges: Vec<Vec<(usize, usize)>>,
    /// fn name → node indexes.
    by_name: BTreeMap<String, Vec<usize>>,
    /// node → full path segments (`[bdb_engine, store, CacheStore, read]`).
    paths: Vec<Vec<String>>,
}

impl Graph {
    /// Builds the graph over every non-test `fn` in library and binary
    /// code.
    pub fn build(ws: &Workspace) -> Graph {
        let mut nodes = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut paths = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            if file.kind == FileKind::TestOrBench {
                continue;
            }
            for (ii, f) in file.fns.iter().enumerate() {
                if f.in_test || f.name.is_empty() {
                    continue;
                }
                let idx = nodes.len();
                nodes.push(FnRef { file: fi, item: ii });
                by_name.entry(f.name.clone()).or_default().push(idx);
                let mut path = vec![ws.ident(&file.krate).to_owned()];
                path.extend(file.module.iter().cloned());
                path.extend(f.qual.iter().cloned());
                path.push(f.name.clone());
                paths.push(path);
            }
        }
        let mut graph = Graph {
            nodes,
            edges: Vec::new(),
            by_name,
            paths,
        };
        let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); graph.nodes.len()];
        for (n, &FnRef { file, item }) in graph.nodes.iter().enumerate() {
            let pf = &ws.files[file];
            let Some(f) = pf.fns.get(item) else {
                continue;
            };
            for call in &f.calls {
                for target in graph.resolve(ws, file, item, &call.callee) {
                    if target != n {
                        edges[n].push((target, call.line));
                    }
                }
            }
            edges[n].sort_unstable();
            edges[n].dedup_by_key(|(t, _)| *t);
        }
        graph.edges = edges;
        graph
    }

    /// The node for `(file index, fn index)`, if in the graph.
    pub fn node_of(&self, file: usize, item: usize) -> Option<usize> {
        self.nodes
            .iter()
            .position(|r| r.file == file && r.item == item)
    }

    /// Full display path of a node (`bdb_sim::fused::fused_points`).
    pub fn display_path(&self, node: usize) -> String {
        self.paths
            .get(node)
            .map(|p| p.join("::"))
            .unwrap_or_default()
    }

    /// Nodes whose crate key is `krate` and whose path ends with the
    /// given suffix segments (fn name last).
    pub fn find(&self, ws: &Workspace, krate: &str, suffix: &[&str]) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&n| {
                let file = &ws.files[self.nodes[n].file];
                file.krate == krate && ends_with(&self.paths[n], suffix)
            })
            .collect()
    }

    /// Resolves one call expression to zero or more target nodes.
    fn resolve(&self, ws: &Workspace, file: usize, item: usize, callee: &Callee) -> Vec<usize> {
        match callee {
            Callee::Path(segs) => self.resolve_path(ws, file, segs),
            Callee::SelfMethod(name) => {
                let pf = &ws.files[file];
                let impl_type = pf.fns.get(item).and_then(|f| f.qual.last().cloned());
                if let Some(ty) = impl_type {
                    let targets = self.candidates_in_type(ws, &pf.krate, &ty, name);
                    if !targets.is_empty() {
                        return targets;
                    }
                }
                self.resolve_method(ws, file, name)
            }
            Callee::Method(name) => self.resolve_method(ws, file, name),
        }
    }

    fn resolve_path(&self, ws: &Workspace, file: usize, segs: &[String]) -> Vec<usize> {
        let pf = &ws.files[file];
        let Some(name) = segs.last() else {
            return Vec::new();
        };
        let mut prefix: Vec<String> = segs[..segs.len() - 1].to_vec();
        // Splice a leading `use` alias (`columnar::…` after
        // `use bdb_codec::columnar`). An alias for the full first segment
        // replaces it with the aliased path.
        if let Some(first) = prefix.first().cloned() {
            if let Some((_, full)) = pf.imports.iter().find(|(n, _)| *n == first) {
                let mut spliced = full.clone();
                spliced.extend(prefix[1..].iter().cloned());
                prefix = spliced;
            }
        } else if let Some((_, full)) = pf.imports.iter().find(|(n, _)| n == name) {
            // Bare call to an imported fn: `use a::b::f; … f(x)`.
            let mut candidates = self.suffix_candidates(name, full);
            if !candidates.is_empty() {
                candidates.sort_unstable();
                return candidates;
            }
        }
        // Normalise crate-relative prefixes.
        match prefix.first().map(String::as_str) {
            Some("crate") => {
                prefix[0] = ws.ident(&pf.krate).to_owned();
            }
            Some("super") => {
                let mut base = vec![ws.ident(&pf.krate).to_owned()];
                let keep = pf.module.len().saturating_sub(1);
                base.extend(pf.module[..keep].iter().cloned());
                base.extend(prefix[1..].iter().cloned());
                prefix = base;
            }
            _ => {}
        }
        if prefix.is_empty() {
            // Bare call: same file first, then glob imports.
            let same_file: Vec<usize> = self
                .by_name
                .get(name)
                .map(|nodes| {
                    nodes
                        .iter()
                        .copied()
                        .filter(|&n| self.nodes[n].file == file)
                        .collect()
                })
                .unwrap_or_default();
            if !same_file.is_empty() {
                return same_file;
            }
            for glob in &pf.globs {
                let mut full = glob.clone();
                full.push(name.clone());
                let found = self.suffix_candidates(name, &full);
                if !found.is_empty() {
                    return found;
                }
            }
            return Vec::new();
        }
        let mut full = prefix;
        full.push(name.clone());
        self.suffix_candidates(name, &full)
    }

    /// Nodes named `name` whose full path ends with `full`'s segments.
    fn suffix_candidates(&self, name: &str, full: &[String]) -> Vec<usize> {
        let suffix: Vec<&str> = full.iter().map(String::as_str).collect();
        self.by_name
            .get(name)
            .map(|nodes| {
                nodes
                    .iter()
                    .copied()
                    .filter(|&n| ends_with(&self.paths[n], &suffix))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Methods named `name` on impl type `ty` within crate `krate`.
    fn candidates_in_type(&self, ws: &Workspace, krate: &str, ty: &str, name: &str) -> Vec<usize> {
        self.by_name
            .get(name)
            .map(|nodes| {
                nodes
                    .iter()
                    .copied()
                    .filter(|&n| {
                        let r = self.nodes[n];
                        let f = &ws.files[r.file];
                        f.krate == krate
                            && f.fns
                                .get(r.item)
                                .is_some_and(|i| i.qual.last().is_some_and(|q| q == ty))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Conservative method-call resolution: every same-named fn in the
    /// caller's crate or its workspace dependencies, unless the name is
    /// stoplisted or matches too many candidates.
    fn resolve_method(&self, ws: &Workspace, file: usize, name: &str) -> Vec<usize> {
        if METHOD_STOPLIST.contains(&name) {
            return Vec::new();
        }
        let caller_crate = &ws.files[file].krate;
        let empty = BTreeSet::new();
        let deps = ws.deps.get(caller_crate).unwrap_or(&empty);
        let candidates: Vec<usize> = self
            .by_name
            .get(name)
            .map(|nodes| {
                nodes
                    .iter()
                    .copied()
                    .filter(|&n| {
                        let krate = &ws.files[self.nodes[n].file].krate;
                        krate == caller_crate || deps.contains(krate)
                    })
                    .collect()
            })
            .unwrap_or_default();
        if candidates.len() > METHOD_FANOUT_CAP {
            return Vec::new();
        }
        candidates
    }
}

/// Whether `path` ends with `suffix`, segment for segment.
fn ends_with(path: &[String], suffix: &[&str]) -> bool {
    suffix.len() <= path.len()
        && path[path.len() - suffix.len()..]
            .iter()
            .zip(suffix)
            .all(|(a, b)| a == b)
}

/// Breadth-first reachability from `roots`, returning for each reached
/// node the predecessor (`parent[n]`) and the call line used, so rules
/// can print the shortest call chain. Roots have no parent.
pub fn bfs(graph: &Graph, roots: &[usize]) -> BTreeMap<usize, Option<(usize, usize)>> {
    let mut seen: BTreeMap<usize, Option<(usize, usize)>> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut sorted_roots: Vec<usize> = roots.to_vec();
    sorted_roots.sort_unstable();
    for &r in &sorted_roots {
        if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(r) {
            e.insert(None);
            queue.push_back(r);
        }
    }
    while let Some(n) = queue.pop_front() {
        if let Some(adj) = graph.edges.get(n) {
            for &(m, line) in adj {
                if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(m) {
                    e.insert(Some((n, line)));
                    queue.push_back(m);
                }
            }
        }
    }
    seen
}

/// Reconstructs the root→node call chain from a [`bfs`] parent map.
pub fn chain_to(
    reached: &BTreeMap<usize, Option<(usize, usize)>>,
    node: usize,
) -> Vec<(usize, Option<usize>)> {
    // Entries are (node, line-of-call-into-next); the last entry has no
    // outgoing line.
    let mut rev = vec![(node, None)];
    let mut cur = node;
    let mut hops = 0;
    while let Some(Some((parent, line))) = reached.get(&cur) {
        rev.push((*parent, Some(*line)));
        cur = *parent;
        hops += 1;
        if hops > reached.len() {
            break; // defensive: cycles cannot occur in a parent map
        }
    }
    rev.reverse();
    rev
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_workspace() -> (tempdir::Dir, Workspace) {
        let dir = tempdir::Dir::new("bdb-lint-graph");
        dir.write(
            "Cargo.toml",
            "[workspace]\nmembers = [\"crates/*\"]\n[workspace.dependencies]\n",
        );
        dir.write(
            "crates/alpha/Cargo.toml",
            "[package]\nname = \"alpha\"\n[dependencies]\nbeta = { workspace = true }\n",
        );
        dir.write(
            "crates/alpha/src/lib.rs",
            "use beta::helper;\n\npub fn entry() {\n    helper();\n    local();\n}\n\nfn local() {}\n",
        );
        dir.write("crates/beta/Cargo.toml", "[package]\nname = \"beta\"\n");
        dir.write(
            "crates/beta/src/lib.rs",
            "pub fn helper() {\n    deep();\n}\n\nfn deep() {\n    let t = std::time::Instant::now();\n    let _ = t;\n}\n",
        );
        let ws = Workspace::load(dir.path()).expect("load");
        (dir, ws)
    }

    #[test]
    fn cross_crate_calls_resolve_and_bfs_reaches() {
        let (_dir, ws) = mini_workspace();
        let graph = Graph::build(&ws);
        let roots = graph.find(&ws, "alpha", &["entry"]);
        assert_eq!(roots.len(), 1);
        let reached = bfs(&graph, &roots);
        let deep = graph.find(&ws, "beta", &["deep"]);
        assert_eq!(deep.len(), 1);
        assert!(reached.contains_key(&deep[0]), "entry -> helper -> deep");
        let chain = chain_to(&reached, deep[0]);
        let names: Vec<String> = chain.iter().map(|(n, _)| graph.display_path(*n)).collect();
        assert_eq!(names, vec!["alpha::entry", "beta::helper", "beta::deep"]);
    }

    #[test]
    fn graph_build_is_deterministic() {
        let (_dir, ws) = mini_workspace();
        let a = Graph::build(&ws);
        let b = Graph::build(&ws);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.edges, b.edges);
    }

    /// Minimal scratch-dir helper (no tempfile dependency).
    mod tempdir {
        use std::path::{Path, PathBuf};

        pub struct Dir(PathBuf);

        impl Dir {
            pub fn new(tag: &str) -> Dir {
                let pid = std::process::id();
                let dir = std::env::temp_dir().join(format!("{tag}-{pid}"));
                let _ = std::fs::remove_dir_all(&dir);
                std::fs::create_dir_all(&dir).expect("create scratch dir");
                Dir(dir)
            }

            pub fn path(&self) -> &Path {
                &self.0
            }

            pub fn write(&self, rel: &str, text: &str) {
                let path = self.0.join(rel);
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent).expect("create parent");
                }
                std::fs::write(path, text).expect("write fixture");
            }
        }

        impl Drop for Dir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
    }
}
