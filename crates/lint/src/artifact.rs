//! Artifact passes: the checked-in paper contracts and the on-disk JSON
//! artifacts.
//!
//! * `catalog-spec` — `contracts/catalog.tsv` lists exactly 77 workloads
//!   with unique ids and full subclass coverage.
//! * `metric-schema` — `contracts/metrics.txt` lists exactly 45 unique
//!   metric names.
//! * `reduction-config` — `contracts/reduction.txt` pins 17 clusters
//!   whose representative weights sum to 77 and whose ids exist in the
//!   catalog spec.
//! * `cache-format` — every `results/cache/*.json` entry parses, matches
//!   the v3 cache schema (format version, CRC-64 content checksum,
//!   fingerprint-in-filename, 45-metric vector), and survives canonical
//!   re-encoding byte for byte; every `results/cache/*.bin` entry is a
//!   valid BDBC cache record whose canonical re-encoding is
//!   byte-identical.
//! * `bench-format` — every `BENCH_*.json` record at the repo root is a
//!   canonical single-line JSON object with a `bench` tag.
//! * `binary-stability` — the golden fixtures under `contracts/fixtures/`
//!   decode, re-encode byte-identically, and agree with their JSON
//!   interchange sidecars (the `binary → JSON → binary` contract), so
//!   accidental format drift fails the lint gate.
//!
//! The code contracts these artifacts mirror are enforced by the root
//! test-suite (`tests/contracts_sync.rs`), which regenerates the files
//! from `bdb-workloads` / `bdb-wcrt` and compares bytes.

use crate::json::{self, Value};
use crate::{Diagnostic, PAPER_CLUSTERS, PAPER_METRICS, PAPER_WORKLOADS};
use bdb_codec::{columnar, crc64, RecordKind};
use std::collections::BTreeSet;
use std::path::Path;

/// The three workload subclasses (paper §2) the catalog must cover.
const CATEGORIES: &[&str] = &["Service", "DataAnalysis", "InteractiveAnalysis"];

/// Runs every artifact pass.
pub fn run(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let mut diags = Vec::new();
    let catalog_ids = check_catalog(root, &mut diags);
    check_metrics(root, &mut diags);
    check_reduction(root, &catalog_ids, &mut diags);
    check_cache_dir(root, &mut diags);
    check_bench_files(root, &mut diags);
    check_fixtures(root, &mut diags);
    Ok(diags)
}

/// Non-comment, non-empty lines with their 1-indexed numbers.
fn data_lines(text: &str) -> Vec<(usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim_end()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .collect()
}

fn check_catalog(root: &Path, diags: &mut Vec<Diagnostic>) -> BTreeSet<String> {
    const RULE: &str = "catalog-spec";
    let path = root.join("contracts/catalog.tsv");
    let mut ids = BTreeSet::new();
    let Ok(text) = std::fs::read_to_string(&path) else {
        diags.push(Diagnostic::new(
            &path,
            0,
            RULE,
            format!("missing catalog spec (must list the {PAPER_WORKLOADS} workloads)"),
        ));
        return ids;
    };
    let rows = data_lines(&text);
    if rows.len() != PAPER_WORKLOADS {
        diags.push(Diagnostic::new(
            &path,
            0,
            RULE,
            format!(
                "catalog lists {} workloads; the paper's catalog has exactly {PAPER_WORKLOADS}",
                rows.len()
            ),
        ));
    }
    let mut categories_seen = BTreeSet::new();
    for (lineno, row) in rows {
        let fields: Vec<&str> = row.split('\t').collect();
        if fields.len() != 5 {
            diags.push(Diagnostic::new(
                &path,
                lineno,
                RULE,
                format!(
                    "expected 5 tab-separated fields (id, category, stack, kernel, dataset), got {}",
                    fields.len()
                ),
            ));
            continue;
        }
        let id = fields[0];
        if !ids.insert(id.to_owned()) {
            diags.push(Diagnostic::new(
                &path,
                lineno,
                RULE,
                format!("duplicate workload id `{id}`"),
            ));
        }
        if !CATEGORIES.contains(&fields[1]) {
            diags.push(Diagnostic::new(
                &path,
                lineno,
                RULE,
                format!("unknown category `{}` for `{id}`", fields[1]),
            ));
        }
        categories_seen.insert(fields[1].to_owned());
    }
    for category in CATEGORIES {
        if !categories_seen.contains(*category) {
            diags.push(Diagnostic::new(
                &path,
                0,
                RULE,
                format!("no workload covers the `{category}` subclass"),
            ));
        }
    }
    ids
}

fn check_metrics(root: &Path, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "metric-schema";
    let path = root.join("contracts/metrics.txt");
    let Ok(text) = std::fs::read_to_string(&path) else {
        diags.push(Diagnostic::new(
            &path,
            0,
            RULE,
            format!("missing metric schema (must list the {PAPER_METRICS} metrics)"),
        ));
        return;
    };
    let rows = data_lines(&text);
    if rows.len() != PAPER_METRICS {
        diags.push(Diagnostic::new(
            &path,
            0,
            RULE,
            format!(
                "schema lists {} metrics; the characterization vector has exactly {PAPER_METRICS}",
                rows.len()
            ),
        ));
    }
    let mut seen = BTreeSet::new();
    for (lineno, name) in rows {
        if !seen.insert(name.to_owned()) {
            diags.push(Diagnostic::new(
                &path,
                lineno,
                RULE,
                format!("duplicate metric name `{name}`"),
            ));
        }
        if !name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            diags.push(Diagnostic::new(
                &path,
                lineno,
                RULE,
                format!("metric name `{name}` is not snake_case"),
            ));
        }
    }
}

fn check_reduction(root: &Path, catalog_ids: &BTreeSet<String>, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "reduction-config";
    let path = root.join("contracts/reduction.txt");
    let Ok(text) = std::fs::read_to_string(&path) else {
        diags.push(Diagnostic::new(
            &path,
            0,
            RULE,
            format!("missing reduction config (must pin the {PAPER_CLUSTERS} clusters)"),
        ));
        return;
    };
    let mut clusters: Option<u64> = None;
    let mut reps: Vec<(usize, String, u64)> = Vec::new();
    for (lineno, line) in data_lines(&text) {
        if let Some(rhs) = line.strip_prefix("clusters") {
            let rhs = rhs.trim_start().strip_prefix('=').map(str::trim);
            match rhs.and_then(|v| v.parse().ok()) {
                Some(v) => clusters = Some(v),
                None => diags.push(Diagnostic::new(
                    &path,
                    lineno,
                    RULE,
                    "malformed `clusters = <n>` line",
                )),
            }
        } else if let Some((id, weight)) = line.split_once('\t') {
            match weight.trim().parse() {
                Ok(w) => reps.push((lineno, id.to_owned(), w)),
                Err(_) => diags.push(Diagnostic::new(
                    &path,
                    lineno,
                    RULE,
                    format!("malformed weight for representative `{id}`"),
                )),
            }
        } else {
            diags.push(Diagnostic::new(
                &path,
                lineno,
                RULE,
                "expected `clusters = <n>` or `<representative>\\t<weight>`",
            ));
        }
    }
    if clusters != Some(PAPER_CLUSTERS as u64) {
        diags.push(Diagnostic::new(
            &path,
            0,
            RULE,
            format!(
                "reduction pins {clusters:?} clusters; the paper reduces 77 → {PAPER_CLUSTERS}"
            ),
        ));
    }
    if reps.len() != PAPER_CLUSTERS {
        diags.push(Diagnostic::new(
            &path,
            0,
            RULE,
            format!(
                "{} representatives listed; one per cluster means exactly {PAPER_CLUSTERS}",
                reps.len()
            ),
        ));
    }
    let total: u64 = reps.iter().map(|(_, _, w)| w).sum();
    if total != PAPER_WORKLOADS as u64 {
        diags.push(Diagnostic::new(
            &path,
            0,
            RULE,
            format!("representative weights sum to {total}, not {PAPER_WORKLOADS}"),
        ));
    }
    let mut seen = BTreeSet::new();
    for (lineno, id, _) in &reps {
        if !seen.insert(id.clone()) {
            diags.push(Diagnostic::new(
                &path,
                *lineno,
                RULE,
                format!("duplicate representative `{id}`"),
            ));
        }
        if !catalog_ids.is_empty() && !catalog_ids.contains(id) {
            diags.push(Diagnostic::new(
                &path,
                *lineno,
                RULE,
                format!("representative `{id}` is not in the catalog spec"),
            ));
        }
    }
}

fn check_cache_dir(root: &Path, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "cache-format";
    let dir = root.join("results/cache");
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return; // no cache directory is fine — nothing persisted yet
    };
    let mut files: Vec<_> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json" || e == "bin"))
        .collect();
    files.sort();
    for file in files {
        if file.extension().is_some_and(|e| e == "bin") {
            let Ok(bytes) = std::fs::read(&file) else {
                diags.push(Diagnostic::new(&file, 0, RULE, "unreadable cache entry"));
                continue;
            };
            check_cache_entry_binary(&file, &bytes, diags);
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&file) else {
            diags.push(Diagnostic::new(&file, 0, RULE, "unreadable cache entry"));
            continue;
        };
        check_cache_entry(&file, &text, diags);
    }
}

/// Validates one binary (BDBC) cache entry: container integrity, a
/// fingerprint that matches the filename, canonical byte-stability, and
/// the same profile schema the JSON pass enforces.
fn check_cache_entry_binary(file: &Path, bytes: &[u8], diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "cache-format";
    let mut emit = |message: String| diags.push(Diagnostic::new(file, 0, RULE, message));
    let payload = match bdb_codec::decode_record_of(RecordKind::CacheEntry, bytes) {
        Ok(p) => p,
        Err(e) => {
            emit(format!("binary cache entry does not decode: {e}"));
            return;
        }
    };
    let (fingerprint, profile) = match bdb_codec::decode_cache_payload(payload) {
        Ok(pair) => pair,
        Err(e) => {
            emit(format!("binary cache payload does not decode: {e}"));
            return;
        }
    };
    let reencoded = bdb_codec::encode_record(
        RecordKind::CacheEntry,
        &bdb_codec::encode_cache_payload(fingerprint, &profile),
    );
    if reencoded != bytes {
        emit("binary cache entry is not byte-stable: canonical re-encoding differs".into());
    }
    let stem = file
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let hex = format!("{fingerprint:016x}");
    if !stem.ends_with(&format!("-{hex}")) {
        emit(format!(
            "filename fingerprint does not match the embedded fingerprint `{hex}`"
        ));
    }
    check_profile_shape(&profile, &hex, &stem, &mut emit);
}

fn check_cache_entry(file: &Path, text: &str, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "cache-format";
    let mut emit = |message: String| diags.push(Diagnostic::new(file, 0, RULE, message));
    if !text.ends_with('\n') || text.ends_with("\n\n") || text.contains('\r') {
        emit("cache entry must be one line terminated by a single newline".into());
    }
    let body = text.trim_end_matches('\n');
    let value = match json::parse(body) {
        Ok(v) => v,
        Err(e) => {
            emit(format!("cache entry is not valid JSON: {e}"));
            return;
        }
    };
    if value.encode() != body {
        emit("cache entry is not byte-stable: canonical re-encoding differs from the file".into());
    }
    if value.get("format").and_then(Value::as_u64) != Some(3) {
        emit("cache entry `format` must be the integer 3 (checksummed v3 schema)".into());
    }
    let crc = value
        .get("crc64")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_owned();
    if crc.len() != 16 || !crc.bytes().all(|b| b.is_ascii_hexdigit()) {
        emit(format!("`crc64` must be 16 hex digits, got {crc:?}"));
    } else if let Some(profile) = value.get("profile") {
        let actual = format!("{:016x}", crc64(profile.encode().as_bytes()));
        if !actual.eq_ignore_ascii_case(&crc) {
            emit(format!(
                "`crc64` is {crc} but the profile body hashes to {actual} — entry content was altered"
            ));
        }
    }
    let stem = file
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let fingerprint = value
        .get("fingerprint")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_owned();
    if fingerprint.len() != 16 || !fingerprint.bytes().all(|b| b.is_ascii_hexdigit()) {
        emit(format!(
            "`fingerprint` must be 16 hex digits, got {fingerprint:?}"
        ));
    } else if !stem.ends_with(&format!("-{fingerprint}")) {
        emit(format!(
            "filename fingerprint does not match the `fingerprint` field `{fingerprint}`"
        ));
    }
    let Some(profile) = value.get("profile") else {
        emit("cache entry has no `profile` object".into());
        return;
    };
    check_profile_shape(profile, &fingerprint, &stem, &mut emit);
}

/// Profile-schema checks shared by the JSON and binary cache passes.
fn check_profile_shape(
    profile: &Value,
    fingerprint: &str,
    stem: &str,
    emit: &mut dyn FnMut(String),
) {
    for key in ["spec", "report", "system", "metrics"] {
        if profile.get(key).is_none() {
            emit(format!("profile is missing the `{key}` field"));
        }
    }
    if let Some(id) = profile
        .get("spec")
        .and_then(|s| s.get("id"))
        .and_then(Value::as_str)
    {
        let safe: String = id
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        if !fingerprint.is_empty() && stem != format!("{safe}-{fingerprint}") {
            emit(format!(
                "filename does not encode the workload id `{id}` (expected `{safe}-{fingerprint}`)"
            ));
        }
    }
    match profile.get("metrics").and_then(Value::as_array) {
        Some(metrics) => {
            if metrics.len() != PAPER_METRICS {
                emit(format!(
                    "profile carries {} metrics; the characterization vector has exactly {PAPER_METRICS}",
                    metrics.len()
                ));
            }
            if let Some(bad) = metrics.iter().position(|m| !m.is_numeric()) {
                emit(format!("metric #{bad} is not numeric"));
            }
        }
        None => emit("profile `metrics` must be an array".into()),
    }
}

/// The `binary-stability` pass: every golden fixture under
/// `contracts/fixtures/` must decode, re-encode to the identical bytes,
/// and agree with its JSON interchange sidecar — the `binary → JSON →
/// binary` contract, pinned in CI so format drift cannot land silently.
fn check_fixtures(root: &Path, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "binary-stability";
    let dir = root.join("contracts/fixtures");
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return; // fixtures are optional until the format ships entries
    };
    let mut files: Vec<_> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "bin"))
        .collect();
    files.sort();
    for file in files {
        let Ok(bytes) = std::fs::read(&file) else {
            diags.push(Diagnostic::new(&file, 0, RULE, "unreadable fixture"));
            continue;
        };
        check_one_fixture(&file, &bytes, diags);
    }
}

fn check_one_fixture(file: &Path, bytes: &[u8], diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "binary-stability";
    let mut emit = |message: String| diags.push(Diagnostic::new(file, 0, RULE, message));
    let (kind, payload) = match bdb_codec::decode_record(bytes) {
        Ok(pair) => pair,
        Err(e) => {
            emit(format!("fixture does not decode: {e}"));
            return;
        }
    };
    // Decode to the interchange Value (or columns), re-encode the binary
    // record from it, and render the JSON sidecar form.
    let (reencoded, interchange) = match kind {
        RecordKind::TraceChunk => {
            let columns = match columnar::TraceChunkView::parse(payload) {
                Ok(view) => view.to_columns(),
                Err(e) => {
                    emit(format!("trace-chunk payload does not parse: {e}"));
                    return;
                }
            };
            let rebuilt = match columnar::encode_trace_chunk(
                &columns.pc,
                &columns.arg,
                &columns.kind,
                &columns.aux,
            ) {
                Ok(r) => r,
                Err(e) => {
                    emit(format!("trace-chunk re-encode failed: {e}"));
                    return;
                }
            };
            (rebuilt, columnar::trace_chunk_to_json(&columns))
        }
        RecordKind::CacheEntry => {
            let (fingerprint, profile) = match bdb_codec::decode_cache_payload(payload) {
                Ok(pair) => pair,
                Err(e) => {
                    emit(format!("cache payload does not decode: {e}"));
                    return;
                }
            };
            let rebuilt = bdb_codec::encode_record(
                kind,
                &bdb_codec::encode_cache_payload(fingerprint, &profile),
            );
            let interchange = Value::object(vec![
                ("fingerprint", Value::Str(format!("{fingerprint:016x}"))),
                ("profile", profile),
            ]);
            (rebuilt, interchange)
        }
        RecordKind::JournalRecord
        | RecordKind::WireMessage
        | RecordKind::ServeRequest
        | RecordKind::ServeDelta => {
            let value = match bdb_codec::bval::decode_value(payload) {
                Ok(v) => v,
                Err(e) => {
                    emit(format!("bval payload does not decode: {e}"));
                    return;
                }
            };
            let rebuilt = bdb_codec::encode_record(kind, &bdb_codec::bval::encode_value(&value));
            (rebuilt, value)
        }
    };
    if reencoded != bytes {
        emit("fixture is not byte-stable: canonical re-encoding differs".into());
    }
    let sidecar = file.with_extension("json");
    match std::fs::read_to_string(&sidecar) {
        Ok(text) => {
            let expected = format!("{}\n", interchange.encode());
            if text != expected {
                emit(
                    "JSON sidecar disagrees with the decoded fixture — \
                     the binary → JSON → binary contract is broken"
                        .into(),
                );
            }
        }
        Err(_) => emit(format!(
            "fixture has no JSON interchange sidecar `{}`",
            sidecar.display()
        )),
    }
}

fn check_bench_files(root: &Path, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "bench-format";
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut files: Vec<_> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .map(|n| n.to_string_lossy())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    for file in files {
        let Ok(text) = std::fs::read_to_string(&file) else {
            diags.push(Diagnostic::new(&file, 0, RULE, "unreadable bench record"));
            continue;
        };
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            match json::parse(line) {
                Ok(value) => {
                    if value.get("bench").and_then(Value::as_str).is_none() {
                        diags.push(Diagnostic::new(
                            &file,
                            lineno,
                            RULE,
                            "bench record has no string `bench` tag",
                        ));
                    }
                    if value.encode() != line {
                        diags.push(Diagnostic::new(
                            &file,
                            lineno,
                            RULE,
                            "bench record is not byte-stable: canonical re-encoding differs",
                        ));
                    }
                }
                Err(e) => diags.push(Diagnostic::new(
                    &file,
                    lineno,
                    RULE,
                    format!("bench record is not valid JSON: {e}"),
                )),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bdb-lint-art-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("contracts")).unwrap();
        dir
    }

    fn catalog_text(n: usize) -> String {
        let mut out = String::from("# id\tcategory\tstack\tkernel\tdataset\n");
        for i in 0..n {
            let category = CATEGORIES[i % CATEGORIES.len()];
            out.push_str(&format!("W-{i}\t{category}\tHadoop\tSort\tWikipedia\n"));
        }
        out
    }

    #[test]
    fn short_catalog_is_rejected() {
        let root = scratch("catalog76");
        std::fs::write(root.join("contracts/catalog.tsv"), catalog_text(76)).unwrap();
        let mut diags = Vec::new();
        check_catalog(&root, &mut diags);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "catalog-spec" && d.message.contains("76")),
            "{diags:?}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn full_catalog_is_accepted() {
        let root = scratch("catalog77");
        std::fs::write(root.join("contracts/catalog.tsv"), catalog_text(77)).unwrap();
        let mut diags = Vec::new();
        let ids = check_catalog(&root, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(ids.len(), 77);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn short_metric_schema_is_rejected() {
        let root = scratch("metrics44");
        let names: Vec<String> = (0..44).map(|i| format!("metric_{i}")).collect();
        std::fs::write(root.join("contracts/metrics.txt"), names.join("\n") + "\n").unwrap();
        let mut diags = Vec::new();
        check_metrics(&root, &mut diags);
        assert!(diags
            .iter()
            .any(|d| d.rule == "metric-schema" && d.message.contains("44")));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn byte_unstable_cache_entry_is_rejected() {
        let mut diags = Vec::new();
        // Extra whitespace: parses fine, re-encodes differently.
        check_cache_entry(
            Path::new("X-1234567890abcdef.json"),
            "{ \"format\": 2 }\n",
            &mut diags,
        );
        assert!(diags.iter().any(|d| d.message.contains("byte-stable")));
    }

    #[test]
    fn crc64_matches_the_engine_check_value() {
        assert_eq!(crc64(b"123456789"), 0x995dc9bbdf1939fa);
    }

    #[test]
    fn legacy_format_2_entry_is_rejected() {
        let mut diags = Vec::new();
        check_cache_entry(
            Path::new("X-1234567890abcdef.json"),
            "{\"format\":2,\"fingerprint\":\"1234567890abcdef\"}\n",
            &mut diags,
        );
        assert!(
            diags.iter().any(|d| d.message.contains("integer 3")),
            "{diags:?}"
        );
    }

    #[test]
    fn checksum_mismatch_is_rejected_and_match_accepted() {
        let profile = "{\"x\":1}";
        let good = format!("{:016x}", crc64(profile.as_bytes()));
        let entry = |crc: &str| {
            format!("{{\"format\":3,\"crc64\":\"{crc}\",\"fingerprint\":\"1234567890abcdef\",\"profile\":{profile}}}\n")
        };
        let mut diags = Vec::new();
        check_cache_entry(
            Path::new("X-1234567890abcdef.json"),
            &entry("0000000000000000"),
            &mut diags,
        );
        assert!(
            diags.iter().any(|d| d.message.contains("altered")),
            "{diags:?}"
        );
        let mut diags = Vec::new();
        check_cache_entry(
            Path::new("X-1234567890abcdef.json"),
            &entry(&good),
            &mut diags,
        );
        assert!(
            !diags.iter().any(|d| d.message.contains("altered")),
            "{diags:?}"
        );
    }

    #[test]
    fn binary_cache_entry_is_validated_and_bit_flips_detected() {
        let profile = Value::object(vec![
            ("spec", Value::object(vec![("id", Value::Str("X".into()))])),
            ("report", Value::object(vec![])),
            ("system", Value::object(vec![])),
            ("metrics", Value::Array(vec![Value::UInt(1); PAPER_METRICS])),
        ]);
        let fp = 0x1234_5678_90ab_cdefu64;
        let bytes = bdb_codec::encode_record(
            RecordKind::CacheEntry,
            &bdb_codec::encode_cache_payload(fp, &profile),
        );
        let mut diags = Vec::new();
        check_cache_entry_binary(Path::new("X-1234567890abcdef.bin"), &bytes, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        let mut damaged = bytes.clone();
        damaged[bytes.len() / 2] ^= 1;
        let mut diags = Vec::new();
        check_cache_entry_binary(Path::new("X-1234567890abcdef.bin"), &damaged, &mut diags);
        assert!(!diags.is_empty(), "bit flip must surface a diagnostic");
    }

    #[test]
    fn fixture_sidecar_mismatch_is_flagged() {
        let root = scratch("fixtures");
        std::fs::create_dir_all(root.join("contracts/fixtures")).unwrap();
        let value = json::parse("{\"kind\":\"task\",\"n\":3}").unwrap();
        let record = bdb_codec::encode_record(
            RecordKind::JournalRecord,
            &bdb_codec::bval::encode_value(&value),
        );
        let sidecar = root.join("contracts/fixtures/journal_record.json");
        std::fs::write(root.join("contracts/fixtures/journal_record.bin"), &record).unwrap();
        std::fs::write(&sidecar, format!("{}\n", value.encode())).unwrap();
        let mut diags = Vec::new();
        check_fixtures(&root, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        std::fs::write(&sidecar, "{\"kind\":\"other\"}\n").unwrap();
        let mut diags = Vec::new();
        check_fixtures(&root, &mut diags);
        assert!(
            diags.iter().any(|d| d.rule == "binary-stability"),
            "{diags:?}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
