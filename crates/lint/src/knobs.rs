//! The `dead-knob` audit: the `BDB_*` environment-knob surface must
//! agree across three places — the code that reads a knob, the
//! checked-in inventory `contracts/knobs.txt`, and the user-facing docs
//! (README.md plus the shared `--help` renderer in
//! `crates/bench/src/lib.rs::help_text`). Four drift directions flag:
//!
//! * a knob read in code but missing from `contracts/knobs.txt`
//! * a knob listed in `contracts/knobs.txt` but never read (a dead knob)
//! * a knob read in code but absent from both docs sources
//! * a knob named in the docs but never read anywhere
//!
//! Reads are collected by the parser from *all* file kinds — test and
//! bench knobs (`BDB_BLESS`, `BDB_CHAOS_SEEDS`, `BDB_BENCH_SCALE`) are
//! part of the user surface too. `scripts/lint_bless.sh` regenerates
//! the inventory via [`knobs_txt`].

use crate::graph::Workspace;
use crate::parse::knob_names;
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

const RULE: &str = "dead-knob";

/// Relative path of the knob inventory.
pub const KNOBS_TXT: &str = "contracts/knobs.txt";

/// Every `BDB_*` read in the workspace: knob → sorted read sites.
pub fn reads(ws: &Workspace) -> BTreeMap<String, Vec<(PathBuf, usize)>> {
    let mut map: BTreeMap<String, Vec<(PathBuf, usize)>> = BTreeMap::new();
    for pf in &ws.files {
        for r in &pf.knob_reads {
            map.entry(r.knob.clone())
                .or_default()
                .push((pf.rel.clone(), r.line));
        }
    }
    for sites in map.values_mut() {
        sites.sort();
    }
    map
}

/// Renders the canonical `contracts/knobs.txt` for the workspace: a
/// header comment plus one sorted knob name per line.
pub fn knobs_txt(ws: &Workspace) -> String {
    let mut out = String::from(
        "# Every BDB_* environment knob the workspace reads, one per line,\n\
         # sorted. Regenerate with scripts/lint_bless.sh (or\n\
         # BDB_BLESS_CONTRACTS=1 cargo test -p bdb-lint knobs_sync).\n",
    );
    for knob in reads(ws).keys() {
        out.push_str(knob);
        out.push('\n');
    }
    out
}

/// Runs the audit.
pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let reads = reads(ws);

    // The checked-in inventory.
    let knobs_path = ws.root.join(KNOBS_TXT);
    let mut listed: BTreeMap<String, usize> = BTreeMap::new();
    match std::fs::read_to_string(&knobs_path) {
        Ok(text) => {
            for (idx, raw) in text.lines().enumerate() {
                let line = raw.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                if listed.insert(line.to_owned(), idx + 1).is_some() {
                    diags.push(Diagnostic::new(
                        &knobs_path,
                        idx + 1,
                        RULE,
                        format!("`{line}` is listed twice in {KNOBS_TXT}"),
                    ));
                }
            }
        }
        Err(_) => {
            diags.push(Diagnostic::new(
                &knobs_path,
                0,
                RULE,
                format!("{KNOBS_TXT} is missing — run scripts/lint_bless.sh to generate it"),
            ));
        }
    }

    // The documentation surface: README.md plus the body of
    // `help_text` in the bench crate (the one `--help` renderer).
    let mut documented: BTreeMap<String, (PathBuf, usize)> = BTreeMap::new();
    let readme = ws.root.join("README.md");
    if let Ok(text) = std::fs::read_to_string(&readme) {
        collect_doc_mentions(&text, 0, &readme, &mut documented);
    }
    for pf in &ws.files {
        let Some(f) = pf.fns.iter().find(|f| f.name == "help_text") else {
            continue;
        };
        let Ok(text) = std::fs::read_to_string(ws.root.join(&pf.rel)) else {
            continue;
        };
        let body: String = text
            .lines()
            .skip(f.body.0.saturating_sub(1))
            .take(f.body.1.saturating_sub(f.body.0) + 1)
            .collect::<Vec<_>>()
            .join("\n");
        collect_doc_mentions(
            &body,
            f.body.0.saturating_sub(1),
            &ws.root.join(&pf.rel),
            &mut documented,
        );
    }

    // Reads must be listed and documented.
    for (knob, sites) in &reads {
        let Some((file, line)) = sites.first() else {
            continue;
        };
        let abs = ws.root.join(file);
        let suppressed = ws
            .files
            .iter()
            .find(|pf| &pf.rel == file)
            .is_some_and(|pf| pf.scanned.suppressed(line.saturating_sub(1), RULE));
        if suppressed {
            continue;
        }
        if !listed.contains_key(knob) {
            diags.push(Diagnostic::new(
                &abs,
                *line,
                RULE,
                format!("`{knob}` is read here but not listed in {KNOBS_TXT}"),
            ));
        }
        if !documented.contains_key(knob) {
            diags.push(Diagnostic::new(
                &abs,
                *line,
                RULE,
                format!("`{knob}` is read here but documented in neither README.md nor help_text"),
            ));
        }
    }

    // Listed knobs must be read.
    for (knob, line) in &listed {
        if !reads.contains_key(knob) {
            diags.push(Diagnostic::new(
                &knobs_path,
                *line,
                RULE,
                format!("`{knob}` is listed in {KNOBS_TXT} but never read — dead knob"),
            ));
        }
    }

    // Documented knobs must be read.
    for (knob, (file, line)) in &documented {
        if !reads.contains_key(knob) {
            diags.push(Diagnostic::new(
                file,
                *line,
                RULE,
                format!("`{knob}` is documented but never read — dead knob"),
            ));
        }
    }

    diags
}

/// Records the first mention line of every knob name in a docs text.
/// `line_base` is added to 1-indexed line numbers (for fn-body slices).
fn collect_doc_mentions(
    text: &str,
    line_base: usize,
    file: &std::path::Path,
    out: &mut BTreeMap<String, (PathBuf, usize)>,
) {
    let mut seen: BTreeSet<String> = out.keys().cloned().collect();
    for (idx, raw) in text.lines().enumerate() {
        for knob in knob_names(raw) {
            if seen.insert(knob.clone()) {
                out.insert(knob, (file.to_path_buf(), line_base + idx + 1));
            }
        }
    }
}
