//! The `bdb-lint` command-line driver.
//!
//! ```text
//! bdb-lint [--deny-warnings] [--root <dir>] [--rule <id>]... [--list-rules]
//! ```
//!
//! Diagnostics print as `file:line: [rule] message`. Exit status is 0
//! when the tree is clean (or when findings are only advisory), 1 when
//! `--deny-warnings` is set and any diagnostic fired, 2 on usage or I/O
//! errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut rules: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-warnings" => deny = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--rule" => match args.next() {
                Some(rule) => {
                    if !bdb_lint::RULES.iter().any(|(id, _)| *id == rule) {
                        return usage(&format!("unknown rule `{rule}` (try --list-rules)"));
                    }
                    rules.push(rule);
                }
                None => return usage("--rule needs a rule id"),
            },
            "--list-rules" => {
                for (id, description) in bdb_lint::RULES {
                    println!("{id:20} {description}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "bdb-lint — repo-native static analysis\n\n\
                     USAGE: bdb-lint [--deny-warnings] [--root <dir>] [--rule <id>]... [--list-rules]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let start = root.unwrap_or_else(|| PathBuf::from("."));
    let Some(workspace) = bdb_lint::find_workspace_root(&start) else {
        eprintln!(
            "bdb-lint: no workspace root found at or above {}",
            start.display()
        );
        return ExitCode::from(2);
    };

    match bdb_lint::run(&workspace, &rules) {
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            if diags.is_empty() {
                println!("bdb-lint: clean ({} rules)", effective_rules(&rules));
                ExitCode::SUCCESS
            } else {
                println!("bdb-lint: {} diagnostic(s)", diags.len());
                if deny {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
        }
        Err(e) => {
            eprintln!("bdb-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn effective_rules(rules: &[String]) -> usize {
    if rules.is_empty() {
        bdb_lint::RULES.len()
    } else {
        rules.len()
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("bdb-lint: {message}");
    ExitCode::from(2)
}
