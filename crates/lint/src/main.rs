//! The `bdb-lint` command-line driver.
//!
//! ```text
//! bdb-lint [--deny-warnings] [--root <dir>] [--rule <id>]... [--list-rules]
//!          [--format text|json] [--baseline <file>] [--bless]
//!          [--max-millis <n>]
//! ```
//!
//! Diagnostics print as `file:line: [rule] message` (with the
//! source→sink call chain indented below for reachability rules), or as
//! a canonical JSON report with `--format json`. `--baseline <file>`
//! subtracts blessed findings so CI fails on *new* findings only;
//! `--bless` rewrites the baseline and `contracts/knobs.txt` instead of
//! reporting. `--max-millis <n>` fails the run if the full analysis
//! exceeds the wall-clock budget (the CI `lint-perf` guard). Exit status
//! is 0 when clean (or findings are advisory), 1 when `--deny-warnings`
//! is set and any non-baselined diagnostic fired (or the time budget is
//! exceeded), 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    deny: bool,
    root: Option<PathBuf>,
    rules: Vec<String>,
    json: bool,
    baseline: Option<PathBuf>,
    bless: bool,
    max_millis: Option<u128>,
}

fn main() -> ExitCode {
    let mut opts = Options {
        deny: false,
        root: None,
        rules: Vec::new(),
        json: false,
        baseline: None,
        bless: false,
        max_millis: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-warnings" => opts.deny = true,
            "--bless" => opts.bless = true,
            "--root" => match args.next() {
                Some(dir) => opts.root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--rule" => match args.next() {
                Some(rule) => {
                    if !bdb_lint::RULES.iter().any(|(id, _)| *id == rule) {
                        return usage(&format!("unknown rule `{rule}` (try --list-rules)"));
                    }
                    opts.rules.push(rule);
                }
                None => return usage("--rule needs a rule id"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => opts.json = false,
                Some("json") => opts.json = true,
                Some(other) => return usage(&format!("unknown format `{other}`")),
                None => return usage("--format needs `text` or `json`"),
            },
            "--baseline" => match args.next() {
                Some(file) => opts.baseline = Some(PathBuf::from(file)),
                None => return usage("--baseline needs a file"),
            },
            "--max-millis" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => opts.max_millis = Some(n),
                None => return usage("--max-millis needs a number"),
            },
            "--list-rules" => {
                for (id, description) in bdb_lint::RULES {
                    println!("{id:28} {description}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "bdb-lint — repo-native static analysis\n\n\
                     USAGE: bdb-lint [--deny-warnings] [--root <dir>] [--rule <id>]... [--list-rules]\n\
                     \x20                [--format text|json] [--baseline <file>] [--bless] [--max-millis <n>]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let start = opts.root.clone().unwrap_or_else(|| PathBuf::from("."));
    let Some(workspace) = bdb_lint::find_workspace_root(&start) else {
        eprintln!(
            "bdb-lint: no workspace root found at or above {}",
            start.display()
        );
        return ExitCode::from(2);
    };

    // Wall-clock measurement is exactly what --max-millis is for; the
    // lint crate produces no profile bytes.
    let started = std::time::Instant::now();
    let diags = match bdb_lint::run(&workspace, &opts.rules) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("bdb-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed().as_millis();

    if opts.bless {
        let baseline_path = opts
            .baseline
            .clone()
            .unwrap_or_else(|| workspace.join("contracts/lint_baseline.json"));
        if let Err(e) = std::fs::write(&baseline_path, bdb_lint::report::baseline_json(&diags)) {
            eprintln!("bdb-lint: write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        let ws = match bdb_lint::graph::Workspace::load(&workspace) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("bdb-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let knobs_path = workspace.join(bdb_lint::knobs::KNOBS_TXT);
        if let Err(e) = std::fs::write(&knobs_path, bdb_lint::knobs::knobs_txt(&ws)) {
            eprintln!("bdb-lint: write {}: {e}", knobs_path.display());
            return ExitCode::from(2);
        }
        println!(
            "bdb-lint: blessed {} finding(s) into {} and rewrote {}",
            diags.len(),
            baseline_path.display(),
            knobs_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let diags = match &opts.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("bdb-lint: read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let keys = match bdb_lint::report::parse_baseline(&text) {
                Ok(keys) => keys,
                Err(e) => {
                    eprintln!("bdb-lint: {e}");
                    return ExitCode::from(2);
                }
            };
            bdb_lint::report::filter_new(diags, &keys)
        }
        None => diags,
    };

    if opts.json {
        print!("{}", bdb_lint::report::to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            println!("bdb-lint: clean ({} rules)", effective_rules(&opts.rules));
        } else {
            println!("bdb-lint: {} diagnostic(s)", diags.len());
        }
    }

    if let Some(budget) = opts.max_millis {
        if elapsed > budget {
            eprintln!("bdb-lint: analysis took {elapsed}ms, over the {budget}ms budget");
            return ExitCode::FAILURE;
        }
    }
    if !diags.is_empty() && opts.deny {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn effective_rules(rules: &[String]) -> usize {
    if rules.is_empty() {
        bdb_lint::RULES.len()
    } else {
        rules.len()
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("bdb-lint: {message}");
    ExitCode::from(2)
}
