//! Source passes: `determinism`, `panic-hygiene`, `batched-dispatch`,
//! `raw-fs`, and `endianness`.

use crate::graph::Workspace;
use crate::lexer::{self, find_word, ScannedFile};
use crate::parse::FileKind;
use crate::Diagnostic;
use std::path::Path;

/// Crate directory names whose sources feed profile bytes — the scope of
/// the `determinism` rule. Anything nondeterministic here (unordered
/// iteration, wall-clock, thread identity) can change cache bytes between
/// runs or thread counts. `cluster` is in scope because its merge must be
/// byte-identical to a serial engine run: its scheduler counts time in
/// poll ticks precisely so that no wall-clock read can reach the output.
/// `serve` is in scope because its materialized catalog must stay
/// byte-identical to a cold recompute across any mutation interleaving —
/// snapshot bytes must not depend on time, thread identity, or map order.
const DETERMINISM_SCOPE: &[&str] = &["engine", "sim", "wcrt", "trace", "cluster", "serve"];

/// Tokens the `determinism` rule rejects, with the reason.
const DETERMINISM_TOKENS: &[(&str, &str)] = &[
    ("HashMap", "unordered collection; iteration order varies run to run — use BTreeMap/Vec, or annotate a keyed-lookup-only use"),
    ("HashSet", "unordered collection; iteration order varies run to run — use BTreeSet/Vec, or annotate a keyed-lookup-only use"),
    ("Instant", "wall-clock read; profile bytes must not depend on time"),
    ("SystemTime", "wall-clock read; profile bytes must not depend on time"),
    ("UNIX_EPOCH", "wall-clock read; profile bytes must not depend on time"),
    ("ThreadId", "thread-identity query; profile bytes must not depend on scheduling"),
    ("current_thread_index", "thread-identity query; profile bytes must not depend on scheduling"),
];

/// Files that form the trace-replay/sweep hot path — the scope of the
/// `batched-dispatch` rule. A per-op `TraceSink::exec` call here would
/// reintroduce one virtual dispatch per traced event, exactly the cost
/// the batched `exec_batch` protocol exists to amortise. `machine.rs` is
/// deliberately out of scope: a `Machine` is itself a sink, and its own
/// `exec` is the per-op entry point the batches drain into.
const BATCHED_DISPATCH_SCOPE: &[&str] = &["crates/trace/src/buffer.rs", "crates/sim/src/fused.rs"];

/// The one engine source file allowed to touch `std::fs` — the scope
/// boundary of the `raw-fs` rule. Every other engine file must go
/// through the [`CacheStore`] abstraction so fault injection
/// (`ChaosFs`) and the crash-safety counters see every disk operation;
/// a direct `std::fs` call is an I/O path the chaos harness cannot
/// exercise and the counters cannot account for.
const RAW_FS_BOUNDARY: &str = "store.rs";

/// Crate directory whose sources define the binary columnar format — the
/// scope of the `endianness` rule. The BDBC container is little-endian
/// by contract (DESIGN.md §15): a `to_be_bytes` or `to_ne_bytes` call in
/// the codec would silently produce records that decode on the writing
/// host but not on another, defeating the portable-fixture guarantee.
const ENDIANNESS_SCOPE: &str = "codec";

/// Byte-order conversions the `endianness` rule rejects inside the codec.
const ENDIANNESS_TOKENS: &[&str] = &[
    "to_be_bytes",
    "from_be_bytes",
    "to_ne_bytes",
    "from_ne_bytes",
];

/// Runs the source passes over the workspace's library sources.
/// Reading from the shared [`Workspace`] model means suppressions these
/// passes consume are visible to the final `stale-allow` audit.
/// Vendored shims are already absent from the model (they mirror
/// external APIs — a test harness *should* panic on failure); binaries
/// are in the model for graph purposes but skipped here, because they
/// are driver code, not library code.
pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for pf in &ws.files {
        if pf.kind != FileKind::Lib {
            continue;
        }
        let file = ws.root.join(&pf.rel);
        let scanned = &pf.scanned;
        let crate_dir = pf.krate.as_str();
        check_panic_hygiene(&file, scanned, &mut diags);
        if DETERMINISM_SCOPE.contains(&crate_dir) {
            check_determinism(&file, scanned, &mut diags);
        }
        if BATCHED_DISPATCH_SCOPE
            .iter()
            .any(|s| pf.rel == Path::new(s))
        {
            check_batched_dispatch(&file, scanned, &mut diags);
        }
        if crate_dir == "engine" && file.file_name().is_none_or(|n| n != RAW_FS_BOUNDARY) {
            check_raw_fs(&file, scanned, &mut diags);
        }
        if crate_dir == ENDIANNESS_SCOPE {
            check_endianness(&file, scanned, &mut diags);
        }
    }
    diags
}

fn check_panic_hygiene(file: &Path, scanned: &ScannedFile, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "panic-hygiene";
    for (idx, line) in scanned.lines.iter().enumerate() {
        if line.in_test || line.code.is_empty() {
            continue;
        }
        let code = &line.code;
        let lineno = idx + 1;
        let mut emit = |message: String| {
            if !scanned.suppressed(idx, RULE) {
                diags.push(Diagnostic::new(file, lineno, RULE, message));
            }
        };
        for at in word_sites(code, "unwrap") {
            if preceded_by_dot(code, at) && followed_by_paren(code, at + "unwrap".len()) {
                emit("`.unwrap()` in library code — propagate the error or annotate why aborting is right".into());
            }
        }
        for at in word_sites(code, "expect") {
            if preceded_by_dot(code, at)
                && followed_by_paren(code, at + "expect".len())
                && !receiver_is_self(code, at)
            {
                emit("`.expect(..)` in library code — propagate the error or annotate why aborting is right".into());
            }
        }
        for at in word_sites(code, "panic") {
            if code[at + "panic".len()..].starts_with('!') {
                emit(
                    "`panic!` in library code — return an error or annotate why aborting is right"
                        .into(),
                );
            }
        }
    }
}

fn check_determinism(file: &Path, scanned: &ScannedFile, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "determinism";
    for (idx, line) in scanned.lines.iter().enumerate() {
        if line.in_test || line.code.is_empty() {
            continue;
        }
        let code = &line.code;
        let lineno = idx + 1;
        for (token, why) in DETERMINISM_TOKENS {
            if lexer::contains_word(code, token) && !scanned.suppressed(idx, RULE) {
                diags.push(Diagnostic::new(
                    file,
                    lineno,
                    RULE,
                    format!("`{token}` in a profile-producing path: {why}"),
                ));
            }
        }
        if code.contains("thread::current") && !scanned.suppressed(idx, RULE) {
            diags.push(Diagnostic::new(
                file,
                lineno,
                RULE,
                "`thread::current` in a profile-producing path: profile bytes must not depend on scheduling".to_owned(),
            ));
        }
    }
}

fn check_batched_dispatch(file: &Path, scanned: &ScannedFile, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "batched-dispatch";
    for (idx, line) in scanned.lines.iter().enumerate() {
        if line.in_test || line.code.is_empty() {
            continue;
        }
        let code = &line.code;
        // Word-boundary matching (with `_` as a word character) means
        // `exec_batch(..)` never trips this — only a bare `.exec(`.
        for at in word_sites(code, "exec") {
            if preceded_by_dot(code, at)
                && followed_by_paren(code, at + "exec".len())
                && !scanned.suppressed(idx, RULE)
            {
                diags.push(Diagnostic::new(
                    file,
                    idx + 1,
                    RULE,
                    "per-op `TraceSink::exec` call in a replay/sweep hot loop — deliver events \
                     through `exec_batch` so dispatch is per-chunk, not per-op",
                ));
            }
        }
    }
}

fn check_raw_fs(file: &Path, scanned: &ScannedFile, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "raw-fs";
    for (idx, line) in scanned.lines.iter().enumerate() {
        if line.in_test || line.code.is_empty() {
            continue;
        }
        let code = &line.code;
        // `fs::...` paths and `use std::fs` imports; `_` is a word
        // character, so `raw_fs` or `chaos_fs` never trip this.
        let raw = word_sites(code, "fs")
            .into_iter()
            .any(|at| code[at + "fs".len()..].starts_with("::") || code[..at].ends_with("std::"));
        if raw && !scanned.suppressed(idx, RULE) {
            diags.push(Diagnostic::new(
                file,
                idx + 1,
                RULE,
                "direct `std::fs` access in the engine outside store.rs — route disk I/O \
                 through `CacheStore` so chaos injection and the crash-safety counters see it",
            ));
        }
    }
}

fn check_endianness(file: &Path, scanned: &ScannedFile, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "endianness";
    for (idx, line) in scanned.lines.iter().enumerate() {
        if line.in_test || line.code.is_empty() {
            continue;
        }
        let code = &line.code;
        for token in ENDIANNESS_TOKENS {
            if lexer::contains_word(code, token) && !scanned.suppressed(idx, RULE) {
                diags.push(Diagnostic::new(
                    file,
                    idx + 1,
                    RULE,
                    format!(
                        "`{token}` in the codec — the binary format is little-endian by \
                         contract; use to_le_bytes/from_le_bytes so records stay portable"
                    ),
                ));
            }
        }
    }
}

/// All word-boundary occurrences of `word` in `code`.
fn word_sites(code: &str, word: &str) -> Vec<usize> {
    let mut sites = Vec::new();
    let mut from = 0;
    while let Some(at) = find_word(code, word, from) {
        sites.push(at);
        from = at + word.len();
    }
    sites
}

fn preceded_by_dot(code: &str, at: usize) -> bool {
    code[..at].trim_end().ends_with('.')
}

fn followed_by_paren(code: &str, after: usize) -> bool {
    code[after..].trim_start().starts_with('(')
}

/// Whether the method receiver before the `.` at `at` is literally
/// `self` — the JSON parser's own `self.expect(b'{')` is not
/// `Result::expect`.
fn receiver_is_self(code: &str, at: usize) -> bool {
    let before = code[..at].trim_end();
    let before = before.strip_suffix('.').map(str::trim_end).unwrap_or("");
    before.ends_with("self")
        && !before
            .as_bytes()
            .get(before.len().wrapping_sub(5))
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn hygiene(src: &str) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check_panic_hygiene(Path::new("x.rs"), &scan(src), &mut diags);
        diags
    }

    fn determinism(src: &str) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check_determinism(Path::new("x.rs"), &scan(src), &mut diags);
        diags
    }

    #[test]
    fn unwrap_flagged_outside_tests_only() {
        assert_eq!(
            hygiene("pub fn f(x: Option<u32>) { x.unwrap(); }\n").len(),
            1
        );
        assert!(hygiene("#[cfg(test)]\nmod t {\n fn f() { x.unwrap(); }\n}\n").is_empty());
    }

    #[test]
    fn unwrap_or_else_not_flagged() {
        assert!(hygiene("let v = x.unwrap_or_else(Default::default);\n").is_empty());
        assert!(hygiene("let v = x.unwrap_or(0);\n").is_empty());
    }

    #[test]
    fn self_expect_is_a_parser_method_not_result() {
        assert!(hygiene("self.expect(b'{')?;\n").is_empty());
        assert_eq!(hygiene("value.expect(\"boom\");\n").len(), 1);
    }

    #[test]
    fn panic_macro_flagged() {
        assert_eq!(hygiene("panic!(\"no\");\n").len(), 1);
        assert!(hygiene("// panic! only in a comment\n").is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "// bdb-lint: allow(panic-hygiene): invariant documented\nx.unwrap();\n";
        assert!(hygiene(src).is_empty());
    }

    #[test]
    fn hashmap_flagged_and_allowable() {
        assert_eq!(determinism("use std::collections::HashMap;\n").len(), 1);
        let allowed =
            "// bdb-lint: allow(determinism): keyed lookups only\nuse std::collections::HashMap;\n";
        assert!(determinism(allowed).is_empty());
    }

    fn batched(src: &str) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check_batched_dispatch(Path::new("x.rs"), &scan(src), &mut diags);
        diags
    }

    #[test]
    fn per_op_exec_flagged_in_hot_path() {
        assert_eq!(batched("sink.exec(pc, op);\n").len(), 1);
        assert_eq!(batched("self.exec(event.pc, event.op);\n").len(), 1);
    }

    #[test]
    fn exec_batch_and_declarations_not_flagged() {
        assert!(batched("sink.exec_batch(&batch);\n").is_empty());
        assert!(batched("fn exec(&mut self, pc: u64, op: MicroOp) {\n").is_empty());
        assert!(batched("let executor = exec_plan();\n").is_empty());
    }

    #[test]
    fn batched_dispatch_allowable_and_test_scoped() {
        let allowed =
            "// bdb-lint: allow(batched-dispatch): cold path, one event\nsink.exec(pc, op);\n";
        assert!(batched(allowed).is_empty());
        assert!(batched("#[cfg(test)]\nmod t {\n fn f() { sink.exec(pc, op); }\n}\n").is_empty());
    }

    fn raw_fs(src: &str) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check_raw_fs(Path::new("x.rs"), &scan(src), &mut diags);
        diags
    }

    #[test]
    fn raw_fs_flags_direct_std_fs_access() {
        assert_eq!(raw_fs("use std::fs;\n").len(), 1);
        assert_eq!(raw_fs("use std::fs::File;\n").len(), 1);
        assert_eq!(raw_fs("let bytes = fs::read(&path)?;\n").len(), 1);
        // One diagnostic per line, even with several sites.
        assert_eq!(raw_fs("fs::rename(fs::canonicalize(a)?, b)?;\n").len(), 1);
    }

    #[test]
    fn raw_fs_ignores_lookalikes_tests_and_allows() {
        assert!(raw_fs("let chaos_fs = ChaosFs::new(plan);\n").is_empty());
        assert!(raw_fs("// std::fs is banned here\n").is_empty());
        assert!(
            raw_fs("#[cfg(test)]\nmod t {\n fn f() { std::fs::remove_file(p); }\n}\n").is_empty()
        );
        let allowed = "// bdb-lint: allow(raw-fs): bootstrap before the store exists\nstd::fs::create_dir_all(&dir)?;\n";
        assert!(raw_fs(allowed).is_empty());
    }

    fn endianness(src: &str) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check_endianness(Path::new("x.rs"), &scan(src), &mut diags);
        diags
    }

    #[test]
    fn big_and_native_endian_conversions_flagged() {
        assert_eq!(endianness("buf.extend(len.to_be_bytes());\n").len(), 1);
        assert_eq!(endianness("let v = u64::from_ne_bytes(b);\n").len(), 1);
    }

    #[test]
    fn little_endian_tests_and_allows_pass() {
        assert!(endianness("buf.extend(len.to_le_bytes());\n").is_empty());
        assert!(endianness("// to_be_bytes is banned here\n").is_empty());
        assert!(
            endianness("#[cfg(test)]\nmod t {\n fn f() { let _ = 1u32.to_be_bytes(); }\n}\n")
                .is_empty()
        );
        let allowed = "// bdb-lint: allow(endianness): network byte order at the TCP boundary\nlen.to_be_bytes();\n";
        assert!(endianness(allowed).is_empty());
    }

    #[test]
    fn wall_clock_and_thread_identity_flagged() {
        assert_eq!(determinism("let t = Instant::now();\n").len(), 1);
        assert_eq!(
            determinism("let id = std::thread::current().id();\n").len(),
            1
        );
    }
}
