//! Property tests for the item-level parser and the call graph: the
//! parser must never panic — on fragment soup stitched from real Rust
//! constructs or on raw byte noise — must keep its line records aligned
//! with the source, and must be fully deterministic, as must
//! `Graph::build` over the files it produces (diagnostics and the JSON
//! report inherit their byte-stability from these two properties).

use bdb_lint::graph::{Graph, Workspace};
use bdb_lint::parse::{parse_file, FileKind};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Rust-ish line fragments, deliberately including every construct the
/// lexer special-cases: raw strings with `#`, nested block comments,
/// char literals vs lifetimes, escapes, attributes, directives — plus
/// unbalanced openers/closers so truncated states get exercised.
const FRAGMENTS: &[&str] = &[
    "pub fn alpha() {",
    "}",
    "fn beta(x: u32) -> u32 {",
    "x.unwrap()",
    "use a::b::{c, d as e};",
    "use util::*;",
    "impl Engine {",
    "pub struct Engine;",
    "let m = HashMap::new();",
    "let s = r##\"raw \"# body\"##;",
    "/* outer /* inner */",
    "*/",
    "// bdb-lint: allow(determinism): fixture",
    "let s = \"str with \\\" escape\";",
    "let c = '\\''; let l: &'static str = \"\";",
    "#[cfg(test)]",
    "mod tests {",
    "match x { _ => {} }",
    "let v = std::env::var(\"BDB_X\");",
    "let b = vec![0u8; n];",
    "panic!(\"boom\");",
    "self.helper(n)",
    "crate::deep::call(n);",
    "super::up(n);",
    "'label: loop { break 'label; }",
    "let t = std::time::Instant::now();",
    "let x = buf[i];",
    "trait T { fn f(&self); }",
    "pub fn gamma(n: usize) -> usize { n }",
    "r#\"unterminated raw",
];

fn stitch(idx: &[usize], bytes: &[u8]) -> String {
    let mut text: String = idx
        .iter()
        .map(|&i| FRAGMENTS[i % FRAGMENTS.len()])
        .collect::<Vec<_>>()
        .join("\n");
    text.push('\n');
    text.push_str(&String::from_utf8_lossy(bytes));
    text
}

fn parse(text: &str) -> bdb_lint::parse::ParsedFile {
    parse_file(
        Path::new("crates/alpha/src/lib.rs"),
        "alpha",
        &[],
        FileKind::Lib,
        text,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse_file` total: no panic, line records aligned with the
    /// source, and identical output on a second run.
    #[test]
    fn parser_never_panics_and_is_deterministic(
        idx in collection::vec(0usize..FRAGMENTS.len(), 0..40),
        bytes in collection::vec(any::<u8>(), 0..120),
    ) {
        let text = stitch(&idx, &bytes);
        let a = parse(&text);
        let b = parse(&text);
        let newlines = text.bytes().filter(|&b| b == b'\n').count();
        prop_assert_eq!(a.scanned.lines.len(), newlines + 1, "line records stay aligned");
        prop_assert_eq!(format!("{:?}", a.fns), format!("{:?}", b.fns));
        prop_assert_eq!(format!("{:?}", a.imports), format!("{:?}", b.imports));
        prop_assert_eq!(format!("{:?}", a.knob_reads), format!("{:?}", b.knob_reads));
    }

    /// `Graph::build` over a two-crate workspace of generated sources is
    /// deterministic: same nodes, edges, and display paths every time.
    #[test]
    fn call_graph_is_deterministic(
        idx_a in collection::vec(0usize..FRAGMENTS.len(), 0..30),
        idx_b in collection::vec(0usize..FRAGMENTS.len(), 0..30),
    ) {
        let text_a = stitch(&idx_a, &[]);
        let text_b = stitch(&idx_b, &[]);
        let workspace = || {
            let files = vec![
                parse_file(Path::new("crates/alpha/src/lib.rs"), "alpha", &[], FileKind::Lib, &text_a),
                parse_file(Path::new("crates/util/src/lib.rs"), "util", &[], FileKind::Lib, &text_b),
            ];
            let mut idents = BTreeMap::new();
            idents.insert("alpha".to_owned(), "alpha".to_owned());
            idents.insert("util".to_owned(), "util".to_owned());
            let mut deps = BTreeMap::new();
            deps.insert("alpha".to_owned(), BTreeSet::from(["util".to_owned()]));
            deps.insert("util".to_owned(), BTreeSet::new());
            Workspace { root: PathBuf::from("."), files, idents, deps }
        };
        let g1 = Graph::build(&workspace());
        let g2 = Graph::build(&workspace());
        prop_assert_eq!(&g1.nodes, &g2.nodes);
        prop_assert_eq!(&g1.edges, &g2.edges);
        let paths = |g: &Graph| (0..g.nodes.len()).map(|n| g.display_path(n)).collect::<Vec<_>>();
        prop_assert_eq!(paths(&g1), paths(&g2));
    }
}
