//! Pins `contracts/knobs.txt` to the code: the checked-in inventory of
//! `BDB_*` environment knobs must byte-match what the workspace scan
//! regenerates, mirroring the `tests/contracts_sync.rs` flow for the
//! catalog/metric/reduction contracts. Refresh after adding or removing
//! a knob with `scripts/lint_bless.sh` (or
//! `BDB_BLESS_CONTRACTS=1 cargo test -p bdb-lint knobs_sync`).

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> repo root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn knobs_sync() {
    let root = workspace_root();
    let ws = bdb_lint::graph::Workspace::load(&root).expect("workspace loads");
    let expected = bdb_lint::knobs::knobs_txt(&ws);
    let path = root.join(bdb_lint::knobs::KNOBS_TXT);
    if std::env::var_os("BDB_BLESS_CONTRACTS").is_some() {
        std::fs::write(&path, expected).expect("write knobs.txt");
        return;
    }
    let actual = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{} unreadable ({e}); regenerate with scripts/lint_bless.sh",
            bdb_lint::knobs::KNOBS_TXT
        )
    });
    assert_eq!(
        actual,
        expected,
        "{} is out of sync with the code; regenerate with scripts/lint_bless.sh",
        bdb_lint::knobs::KNOBS_TXT
    );
}
