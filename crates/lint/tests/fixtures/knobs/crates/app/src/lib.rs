pub fn knobs() -> (Option<String>, Option<String>) {
    let a = std::env::var("BDB_ALPHA").ok();
    let b = std::env::var("BDB_BETA").ok();
    (a, b)
}
