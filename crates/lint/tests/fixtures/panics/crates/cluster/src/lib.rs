pub fn run_worker(tasks: &[u32], n: usize) -> u32 {
    step(tasks, n)
}

fn step(tasks: &[u32], n: usize) -> u32 {
    let first = tasks.first().unwrap();
    *first + tasks[n]
}

pub fn offline(tasks: &[u32]) -> u32 {
    tasks.iter().copied().next().unwrap_or(0)
}
