// bdb-lint: allow(determinism): nothing here uses a map any more
pub fn quiet() -> u32 {
    7
}

// bdb-lint: allow(no-such-rule): the rule id has a typo
pub fn also_quiet() -> u32 {
    8
}
