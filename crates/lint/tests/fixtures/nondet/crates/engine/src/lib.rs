use util::stamp;

pub struct Engine;

impl Engine {
    pub fn profile(&self) -> u64 {
        stamp()
    }
}
