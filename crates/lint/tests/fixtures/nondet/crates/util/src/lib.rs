pub fn stamp() -> u64 {
    let t = std::time::SystemTime::now();
    // bdb-lint: allow(determinism): keyed scratch map, drained in sorted order
    let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let _ = (t, m);
    0
}

pub fn unreached() -> std::time::Instant {
    std::time::Instant::now()
}
