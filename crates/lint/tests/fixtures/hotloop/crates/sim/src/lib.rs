pub struct Pool {
    pub buf: Vec<u8>,
}

impl Pool {
    pub fn new(n: usize) -> Pool {
        Pool { buf: vec![0; n] }
    }
}

pub fn exec_batch(n: usize) -> usize {
    let pool = Pool::new(n);
    fill(pool.buf.len())
}

fn fill(n: usize) -> usize {
    let extra = vec![0u8; n];
    extra.len()
}
