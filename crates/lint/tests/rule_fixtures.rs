//! Per-rule fixture tests: each mini-workspace under `tests/fixtures/`
//! checks in one deliberate violation (plus a nearby negative) for a
//! rule family, and the assertions pin both the finding set and — for
//! the reachability families — the exact printed source→sink call
//! chain. The fixture trees are skipped by the workspace loader when
//! linting the real repository (`graph.rs` drops any path with a
//! `fixtures` component), so the violations never leak into real runs.

use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(name: &str, rules: &[&str]) -> Vec<bdb_lint::Diagnostic> {
    let rules: Vec<String> = rules.iter().map(|r| r.to_string()).collect();
    bdb_lint::run(&fixture(name), &rules).expect("lint run succeeds")
}

fn rendered(diags: &[bdb_lint::Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn nondeterminism_reachability_prints_the_call_chain() {
    let diags = run("nondet", &["nondeterminism-reachability"]);
    assert_eq!(
        diags.len(),
        1,
        "one finding expected:\n{}",
        rendered(&diags)
    );
    let d = &diags[0];
    assert_eq!(d.file, PathBuf::from("crates/util/src/lib.rs"));
    assert_eq!(d.line, 2);
    assert_eq!(d.rule, "nondeterminism-reachability");
    assert_eq!(
        d.to_string(),
        "crates/util/src/lib.rs:2: [nondeterminism-reachability] `SystemTime` \
         (wall-clock read) is reachable from profile/serialization entry \
         `engine::Engine::profile`\n    \
         chain: engine::Engine::profile (crates/engine/src/lib.rs:7)\n        \
         -> util::stamp (crates/util/src/lib.rs:2)"
    );
}

#[test]
fn nondeterminism_alias_suppression_counts_as_used() {
    // The HashMap in `util::stamp` is reachable too, but its
    // `allow(determinism)` comment covers the reachability family via
    // `also_allowed_as` — and a consumed directive must not then be
    // reported stale.
    let diags = run("nondet", &["stale-allow"]);
    assert!(
        diags.is_empty(),
        "no stale directives:\n{}",
        rendered(&diags)
    );
}

#[test]
fn panic_reachability_flags_unwrap_and_indexing() {
    let diags = run("panics", &["panic-reachability"]);
    assert_eq!(
        diags.len(),
        2,
        "unwrap + indexing expected:\n{}",
        rendered(&diags)
    );
    assert_eq!(
        diags[0].to_string(),
        "crates/cluster/src/lib.rs:6: [panic-reachability] `.unwrap()` \
         (can panic) is reachable from fleet/recovery path \
         `cluster::run_worker`\n    \
         chain: cluster::run_worker (crates/cluster/src/lib.rs:2)\n        \
         -> cluster::step (crates/cluster/src/lib.rs:6)"
    );
    assert_eq!(diags[1].line, 7);
    assert!(
        diags[1]
            .message
            .contains("`[n]` (slice/array indexing can panic)"),
        "{}",
        diags[1]
    );
    // `offline` also unwraps (via unwrap_or, which must NOT match) and
    // is not reachable from the worker loop — no third finding.
}

#[test]
fn hot_loop_allocation_exempts_constructors() {
    let diags = run("hotloop", &["hot-loop-allocation"]);
    assert_eq!(
        diags.len(),
        1,
        "only the non-constructor vec! fires:\n{}",
        rendered(&diags)
    );
    assert_eq!(
        diags[0].to_string(),
        "crates/sim/src/lib.rs:17: [hot-loop-allocation] `vec!` (allocation) \
         is reachable from hot loop `sim::exec_batch`\n    \
         chain: sim::exec_batch (crates/sim/src/lib.rs:13)\n        \
         -> sim::fill (crates/sim/src/lib.rs:17)"
    );
}

#[test]
fn dead_knob_flags_all_four_drift_directions() {
    let diags = run("knobs", &["dead-knob"]);
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert_eq!(diags.len(), 4, "{}", rendered(&diags));
    assert!(msgs.contains(&"`BDB_BETA` is read here but not listed in contracts/knobs.txt"));
    assert!(
        msgs.contains(&"`BDB_BETA` is read here but documented in neither README.md nor help_text")
    );
    assert!(
        msgs.contains(&"`BDB_GHOST` is listed in contracts/knobs.txt but never read — dead knob")
    );
    assert!(msgs.contains(&"`BDB_PHANTOM` is documented but never read — dead knob"));
    // BDB_ALPHA is read, listed, and documented: no finding names it.
    assert!(msgs.iter().all(|m| !m.contains("BDB_ALPHA")));
}

#[test]
fn stale_allow_flags_unused_and_unknown_directives() {
    let diags = run("stale", &["stale-allow"]);
    assert_eq!(diags.len(), 2, "{}", rendered(&diags));
    assert_eq!(diags[0].line, 1);
    assert_eq!(
        diags[0].message,
        "allow(determinism) suppresses nothing — remove the stale directive"
    );
    assert_eq!(diags[1].line, 6);
    assert_eq!(
        diags[1].message,
        "allow(no-such-rule) names an unknown rule"
    );
}

#[test]
fn json_report_is_byte_stable_across_runs() {
    let a = bdb_lint::report::to_json(&run("panics", &[]));
    let b = bdb_lint::report::to_json(&run("panics", &[]));
    assert_eq!(
        a, b,
        "two runs over the same tree must serialize identically"
    );
    assert!(a.ends_with('\n'));
}
