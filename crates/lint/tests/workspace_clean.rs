//! The workspace must stay lint-clean: every rule the paper's invariants
//! demand (determinism, panic hygiene, catalog/metric/reduction contracts,
//! artifact byte-stability) runs here against the real repository, so a
//! violation fails `cargo test` before it ever reaches CI.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> repo root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let diags = bdb_lint::run(&root, &[]).expect("lint run succeeds");
    assert!(
        diags.is_empty(),
        "bdb-lint found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_rule_id_is_documented() {
    for (rule, desc) in bdb_lint::RULES {
        assert!(!rule.is_empty() && !desc.is_empty());
        assert!(
            rule.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
            "rule ids are kebab-case: {rule}"
        );
    }
}
