//! Model-checks the set-associative cache against a naive reference
//! implementation: for arbitrary access sequences, hit/miss decisions and
//! writeback counts must match an obviously-correct LRU model.

use bdb_sim::cache::{Cache, CacheConfig};
use proptest::prelude::*;

/// Obviously-correct set-associative LRU cache: each set is a Vec kept in
/// MRU-first order.
struct NaiveLru {
    sets: Vec<Vec<(u64, bool)>>, // (line, dirty), MRU first
    assoc: usize,
    line_bytes: u64,
    writebacks: u64,
}

impl NaiveLru {
    fn new(size: u64, assoc: usize, line_bytes: u64) -> Self {
        let sets = (size / (line_bytes * assoc as u64)) as usize;
        Self {
            sets: vec![Vec::new(); sets],
            assoc,
            line_bytes,
            writebacks: 0,
        }
    }

    fn access(&mut self, addr: u64, is_store: bool) -> bool {
        let line = addr / self.line_bytes;
        let set = (line % self.sets.len() as u64) as usize;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&(l, _)| l == line) {
            let (l, dirty) = ways.remove(pos);
            ways.insert(0, (l, dirty || is_store));
            return true;
        }
        if ways.len() == self.assoc {
            let (_, dirty) = ways.pop().expect("full set");
            if dirty {
                self.writebacks += 1;
            }
        }
        ways.insert(0, (line, is_store));
        false
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_reference_lru(
        accesses in proptest::collection::vec((0u64..1u64 << 16, any::<bool>()), 1..2000),
        assoc in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
    ) {
        let size = 4096u64;
        let mut real = Cache::new(CacheConfig::lru(size, assoc, 64));
        let mut reference = NaiveLru::new(size, assoc, 64);
        for &(addr, is_store) in &accesses {
            let a = real.access(addr, is_store);
            let b = reference.access(addr, is_store);
            prop_assert_eq!(a, b, "divergence at addr {:#x}", addr);
        }
        prop_assert_eq!(real.stats().writebacks, reference.writebacks);
        prop_assert_eq!(real.stats().accesses, accesses.len() as u64);
    }

    #[test]
    fn install_never_changes_demand_counters(
        accesses in proptest::collection::vec(0u64..1u64 << 14, 1..500),
        installs in proptest::collection::vec(0u64..1u64 << 14, 1..500),
    ) {
        let mut cache = Cache::new(CacheConfig::lru(4096, 4, 64));
        for &a in &accesses {
            cache.access(a, false);
        }
        let before = cache.stats();
        for &i in &installs {
            cache.install(i);
        }
        let after = cache.stats();
        prop_assert_eq!(before.accesses, after.accesses);
        prop_assert_eq!(before.misses, after.misses);
    }

    #[test]
    fn installed_lines_hit(addr in 0u64..1u64 << 20) {
        let mut cache = Cache::new(CacheConfig::lru(32 * 1024, 8, 64));
        cache.install(addr);
        prop_assert!(cache.access(addr, false), "installed line must hit");
    }
}
