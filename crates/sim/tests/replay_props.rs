//! The `Machine` leg of the trace-replay contract: feeding a recorded
//! trace to a cycle-accurate machine through batched replay must produce
//! the exact same `PerfReport` as streaming the ops directly — caches,
//! TLBs, branch predictor, pipeline, everything.

use bdb_sim::{Machine, MachineConfig};
use bdb_trace::{BranchKind, IntPurpose, MicroOp, TraceBuffer, TraceSink};
use proptest::prelude::*;

fn op_from(selector: u8, payload: u64, size_seed: u64, flag: bool) -> MicroOp {
    let size = (size_seed % 16) as u8 + 1;
    match selector % 11 {
        0 => MicroOp::Int {
            purpose: IntPurpose::IntAddr,
        },
        1 => MicroOp::Int {
            purpose: IntPurpose::FpAddr,
        },
        2 => MicroOp::Int {
            purpose: IntPurpose::Other,
        },
        3 => MicroOp::Fp,
        4 => MicroOp::Load {
            addr: payload,
            size,
        },
        5 => MicroOp::Store {
            addr: payload,
            size,
        },
        kind => MicroOp::Branch {
            taken: flag,
            target: payload,
            kind: match kind {
                6 => BranchKind::Conditional,
                7 => BranchKind::Direct,
                8 => BranchKind::Indirect,
                9 => BranchKind::Call,
                _ => BranchKind::Return,
            },
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn machine_replay_equals_direct_streaming(
        raw in proptest::collection::vec(
            // Bounded address spaces keep `pc + 64` prefetch arithmetic in
            // range and give cache sets realistic contention.
            (0u64..1 << 30, (0u8..11, 0u64..1 << 30, any::<u64>(), any::<bool>())),
            1..500,
        ),
        chunk in prop_oneof![Just(1usize), Just(7), Just(256)],
    ) {
        let ops: Vec<(u64, MicroOp)> = raw
            .iter()
            .map(|&(pc, (sel, payload, sz, flag))| (pc, op_from(sel, payload, sz, flag)))
            .collect();

        let mut direct = Machine::new(MachineConfig::atom_sweep(32));
        let mut buffer = TraceBuffer::with_chunk_capacity(chunk);
        for &(pc, op) in &ops {
            direct.exec(pc, op);
            buffer.exec(pc, op);
        }
        let mut replayed = Machine::new(MachineConfig::atom_sweep(32));
        buffer.replay_into(&mut replayed);
        prop_assert_eq!(replayed.report(), direct.report());
    }

    #[test]
    fn one_recording_replays_identically_many_times(
        raw in proptest::collection::vec(
            (0u64..1 << 24, (0u8..11, 0u64..1 << 24, any::<u64>(), any::<bool>())),
            1..200,
        ),
    ) {
        let ops: Vec<(u64, MicroOp)> = raw
            .iter()
            .map(|&(pc, (sel, payload, sz, flag))| (pc, op_from(sel, payload, sz, flag)))
            .collect();
        let mut buffer = TraceBuffer::new();
        for &(pc, op) in &ops {
            buffer.exec(pc, op);
        }
        let reports: Vec<_> = (0..3)
            .map(|_| {
                let mut machine = Machine::new(MachineConfig::atom_sweep(16));
                buffer.replay_into(&mut machine);
                machine.report()
            })
            .collect();
        prop_assert_eq!(&reports[0], &reports[1]);
        prop_assert_eq!(&reports[1], &reports[2]);
    }
}
