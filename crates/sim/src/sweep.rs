//! Cache-capacity sweep harness — the paper's §5.4 locality methodology.
//!
//! The paper estimates instruction/data footprints by sweeping the L1 size
//! of a MARSSx86 Atom-like core from 16 KiB to 8192 KiB and plotting the
//! miss ratio at each point (Figures 6–9); the capacity where the curve
//! flattens is the footprint. [`sweep`] re-runs a workload closure once per
//! capacity on [`MachineConfig::atom_sweep`] machines and collects the
//! resulting [`MissRatioCurve`]s.

use crate::machine::{Machine, MachineConfig};
use serde::{Deserialize, Serialize};

/// The paper's sweep points, in KiB (Figures 6–9 x-axis).
pub const PAPER_SWEEP_KIB: [u64; 10] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// Which miss ratio a curve tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepMetric {
    /// L1 instruction-cache miss ratio (Figures 6 and 9).
    Instruction,
    /// L1 data-cache miss ratio (Figure 7).
    Data,
    /// Combined L1 miss ratio over all accesses (Figure 8).
    Unified,
}

/// One miss-ratio-versus-capacity curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissRatioCurve {
    /// Label (workload or workload-group name).
    pub label: String,
    /// Metric tracked.
    pub metric: SweepMetric,
    /// `(capacity_kib, miss_ratio)` points in ascending capacity order.
    pub points: Vec<(u64, f64)>,
}

impl MissRatioCurve {
    /// Miss ratio at `capacity_kib`, if that point was swept.
    pub fn at(&self, capacity_kib: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|(c, _)| *c == capacity_kib)
            .map(|(_, r)| *r)
    }

    /// Estimated footprint: the smallest swept capacity at which the miss
    /// ratio has dropped within `epsilon` of its final (largest-capacity)
    /// value. This is how the paper reads "the footprint of PARSEC is about
    /// 128 KB" off Figure 6.
    ///
    /// Returns `None` for an empty curve.
    pub fn footprint_kib(&self, epsilon: f64) -> Option<u64> {
        let (_, floor) = *self.points.last()?;
        self.points
            .iter()
            .find(|(_, r)| r - floor <= epsilon)
            .map(|(c, _)| *c)
    }
}

/// Runs `workload` once per capacity in `capacities_kib` on an Atom-like
/// in-order machine and returns the three curves (instruction, data,
/// unified).
///
/// The workload closure must regenerate identical work on every call (all
/// generators in this workspace are seeded, so this holds by construction).
///
/// # Panics
///
/// Panics if `capacities_kib` is empty.
pub fn sweep(
    label: &str,
    capacities_kib: &[u64],
    mut workload: impl FnMut(&mut Machine),
) -> SweepResult {
    assert!(
        !capacities_kib.is_empty(),
        "sweep needs at least one capacity"
    );
    let mut icurve = Vec::with_capacity(capacities_kib.len());
    let mut dcurve = Vec::with_capacity(capacities_kib.len());
    let mut ucurve = Vec::with_capacity(capacities_kib.len());
    for &kib in capacities_kib {
        let mut machine = Machine::new(MachineConfig::atom_sweep(kib));
        workload(&mut machine);
        let report = machine.report();
        icurve.push((kib, report.l1i.miss_ratio()));
        dcurve.push((kib, report.l1d.miss_ratio()));
        let total_acc = report.l1i.accesses + report.l1d.accesses;
        let total_miss = report.l1i.misses + report.l1d.misses;
        let unified = if total_acc == 0 {
            0.0
        } else {
            total_miss as f64 / total_acc as f64
        };
        ucurve.push((kib, unified));
    }
    SweepResult {
        instruction: MissRatioCurve {
            label: label.to_owned(),
            metric: SweepMetric::Instruction,
            points: icurve,
        },
        data: MissRatioCurve {
            label: label.to_owned(),
            metric: SweepMetric::Data,
            points: dcurve,
        },
        unified: MissRatioCurve {
            label: label.to_owned(),
            metric: SweepMetric::Unified,
            points: ucurve,
        },
    }
}

/// The three curves produced by one [`sweep`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// L1I miss ratio curve.
    pub instruction: MissRatioCurve,
    /// L1D miss ratio curve.
    pub data: MissRatioCurve,
    /// Combined curve.
    pub unified: MissRatioCurve,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_trace::{CodeLayout, ExecCtx};

    /// Synthetic workload with ~256 KiB instruction footprint and ~32 KiB
    /// data footprint.
    fn synthetic(machine: &mut Machine) {
        let mut layout = CodeLayout::new();
        let regions: Vec<_> = (0..64)
            .map(|i| layout.region(format!("r{i}"), 4096))
            .collect();
        let mut ctx = ExecCtx::new(&layout, machine);
        let data = ctx.heap_alloc(32 * 1024, 64);
        ctx.frame(regions[0], |ctx| {
            for round in 0..40u64 {
                for &r in &regions {
                    ctx.frame(r, |ctx| {
                        for j in 0..256u64 {
                            if j % 4 == 0 {
                                let off = (round * 64 + j) * 64 % data.len();
                                ctx.read(data.addr(off & !7), 8);
                            } else {
                                ctx.int_other(1);
                            }
                        }
                    });
                }
            }
        });
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let result = sweep("synthetic", &[16, 64, 256, 1024], synthetic);
        for curve in [&result.instruction, &result.data, &result.unified] {
            for w in curve.points.windows(2) {
                assert!(
                    w[1].1 <= w[0].1 + 1e-9,
                    "{:?} not monotone: {:?}",
                    curve.metric,
                    curve.points
                );
            }
        }
    }

    #[test]
    fn footprint_estimate_matches_construction() {
        let result = sweep("synthetic", &PAPER_SWEEP_KIB, synthetic);
        let ifoot = result.instruction.footprint_kib(0.002).unwrap();
        assert!(
            (256..=512).contains(&ifoot),
            "expected ~256 KiB instruction footprint, got {ifoot} ({:?})",
            result.instruction.points
        );
        let dfoot = result.data.footprint_kib(0.002).unwrap();
        assert!(dfoot <= 64, "expected small data footprint, got {dfoot}");
    }

    #[test]
    fn at_returns_swept_points_only() {
        let result = sweep("synthetic", &[16, 32], synthetic);
        assert!(result.instruction.at(16).is_some());
        assert!(result.instruction.at(999).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one capacity")]
    fn empty_sweep_panics() {
        let _ = sweep("x", &[], |_| {});
    }
}
