//! Cache-capacity sweep harness — the paper's §5.4 locality methodology.
//!
//! The paper estimates instruction/data footprints by sweeping the L1 size
//! of a MARSSx86 Atom-like core from 16 KiB to 8192 KiB and plotting the
//! miss ratio at each point (Figures 6–9); the capacity where the curve
//! flattens is the footprint.
//!
//! [`sweep`] records the workload's trace **once** into a
//! [`TraceBuffer`], then computes every point from the extracted L1 event
//! streams (see [`crate::fused`]) — byte-identical to the per-point
//! reference path ([`sweep_per_point`]), which re-runs the workload on a
//! full [`crate::MachineConfig::atom_sweep`] machine per capacity and survives
//! as the contract oracle and the engine's `BDB_SWEEP_MODE=per-point`
//! escape hatch.

use crate::cache::CacheStats;
use crate::fused::{fused_points, SweepFamily, SweepStreams};
use crate::machine::Machine;
use bdb_trace::{TraceBuffer, TraceSink};
use serde::{Deserialize, Serialize};

/// The paper's sweep points, in KiB (Figures 6–9 x-axis).
pub const PAPER_SWEEP_KIB: [u64; 10] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// Which miss ratio a curve tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepMetric {
    /// L1 instruction-cache miss ratio (Figures 6 and 9).
    Instruction,
    /// L1 data-cache miss ratio (Figure 7).
    Data,
    /// Combined L1 miss ratio over all accesses (Figure 8).
    Unified,
}

/// One miss-ratio-versus-capacity curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissRatioCurve {
    /// Label (workload or workload-group name).
    pub label: String,
    /// Metric tracked.
    pub metric: SweepMetric,
    /// `(capacity_kib, miss_ratio)` points in ascending capacity order.
    pub points: Vec<(u64, f64)>,
}

impl MissRatioCurve {
    /// Miss ratio at `capacity_kib`, if that point was swept.
    pub fn at(&self, capacity_kib: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|(c, _)| *c == capacity_kib)
            .map(|(_, r)| *r)
    }

    /// Estimated footprint: the smallest swept capacity at which the miss
    /// ratio has dropped within `epsilon` of its final (largest-capacity)
    /// value *and stays there* — every larger-capacity point must also be
    /// within `epsilon` of the floor. This is how the paper reads "the
    /// footprint of PARSEC is about 128 KB" off Figure 6. Requiring the
    /// suffix to stay flat keeps a non-monotonic (bumpy) curve from being
    /// read at the first transient dip.
    ///
    /// Returns `None` for an empty curve.
    pub fn footprint_kib(&self, epsilon: f64) -> Option<u64> {
        let (_, floor) = *self.points.last()?;
        // Walk backwards from the flat tail: the footprint is the earliest
        // point of the longest suffix that stays within `epsilon` of the
        // floor.
        let mut footprint = None;
        for (c, r) in self.points.iter().rev() {
            if r - floor <= epsilon {
                footprint = Some(*c);
            } else {
                break;
            }
        }
        footprint
    }
}

/// Sweeps `workload` over `capacities_kib` on the Atom-like family and
/// returns the three curves (instruction, data, unified).
///
/// The workload runs **once**, recorded into a [`TraceBuffer`]; every
/// capacity point is then computed from the recorded trace. The output is
/// byte-identical to [`sweep_per_point`] (contract-tested across the full
/// catalog in `bdb-engine`).
///
/// # Panics
///
/// Panics if `capacities_kib` is empty.
pub fn sweep(
    label: &str,
    capacities_kib: &[u64],
    workload: impl FnMut(&mut dyn TraceSink),
) -> SweepResult {
    sweep_on(&SweepFamily::atom(), label, capacities_kib, workload)
}

/// [`sweep`] over an explicit cache [`SweepFamily`].
pub fn sweep_on(
    family: &SweepFamily,
    label: &str,
    capacities_kib: &[u64],
    mut workload: impl FnMut(&mut dyn TraceSink),
) -> SweepResult {
    assert!(
        !capacities_kib.is_empty(),
        "sweep needs at least one capacity"
    );
    let mut buffer = TraceBuffer::new();
    workload(&mut buffer);
    sweep_replay(family, label, capacities_kib, &buffer)
}

/// Sweeps an already-recorded trace: extract the L1 event streams once,
/// then compute every point (single-pass where the family's inclusion
/// property holds, exact per-capacity replay otherwise).
///
/// # Panics
///
/// Panics if `capacities_kib` is empty.
pub fn sweep_replay(
    family: &SweepFamily,
    label: &str,
    capacities_kib: &[u64],
    buffer: &TraceBuffer,
) -> SweepResult {
    assert!(
        !capacities_kib.is_empty(),
        "sweep needs at least one capacity"
    );
    let streams = SweepStreams::extract(buffer);
    assemble_sweep(
        label,
        capacities_kib,
        fused_points(family, capacities_kib, &streams),
    )
}

/// The per-point reference sweep: re-runs `workload` once per capacity on
/// a full machine. Kept as the oracle the fused path is contract-tested
/// against, and as the engine's `BDB_SWEEP_MODE=per-point` escape hatch.
///
/// The workload closure must regenerate identical work on every call (all
/// generators in this workspace are seeded, so this holds by construction).
///
/// # Panics
///
/// Panics if `capacities_kib` is empty.
pub fn sweep_per_point(
    family: &SweepFamily,
    label: &str,
    capacities_kib: &[u64],
    mut workload: impl FnMut(&mut dyn TraceSink),
) -> SweepResult {
    assert!(
        !capacities_kib.is_empty(),
        "sweep needs at least one capacity"
    );
    let points = capacities_kib
        .iter()
        .map(|&kib| sweep_point_on(family, kib, &mut workload))
        .collect();
    assemble_sweep(label, capacities_kib, points)
}

/// Runs `workload` once on an Atom-like machine with `kib` of L1 and
/// returns `(instruction, data, unified)` miss ratios — one point of a
/// sweep curve, computed the reference way (full machine, no replay). The
/// execution engine fans these out across a thread pool in per-point mode
/// (each point is an independent machine).
pub fn sweep_point(kib: u64, workload: impl FnOnce(&mut dyn TraceSink)) -> (f64, f64, f64) {
    sweep_point_on(&SweepFamily::atom(), kib, workload)
}

/// One per-point sample computed from a recorded trace: a full Atom-like
/// machine at `kib`, fed by replaying `buffer`. Bit-identical to
/// [`sweep_point`] on the workload that recorded the buffer — trace
/// replay reproduces the exact event sequence — but the generator does
/// not re-run. The engine's per-point mode records once into a pooled
/// buffer and replays it at every capacity.
pub fn sweep_point_replay(kib: u64, buffer: &TraceBuffer) -> (f64, f64, f64) {
    let mut machine = Machine::new(SweepFamily::atom().machine_config(kib));
    buffer.replay_into(&mut machine);
    let report = machine.report();
    point_ratios(report.l1i, report.l1d)
}

/// [`sweep_point`] over an explicit cache [`SweepFamily`].
pub fn sweep_point_on(
    family: &SweepFamily,
    kib: u64,
    workload: impl FnOnce(&mut dyn TraceSink),
) -> (f64, f64, f64) {
    let mut machine = Machine::new(family.machine_config(kib));
    workload(&mut machine);
    let report = machine.report();
    point_ratios(report.l1i, report.l1d)
}

/// `(instruction, data, unified)` miss ratios from the two L1 stat
/// blocks. Both sweep paths funnel through this one arithmetic so their
/// outputs can be compared byte for byte.
pub(crate) fn point_ratios(l1i: CacheStats, l1d: CacheStats) -> (f64, f64, f64) {
    let total_acc = l1i.accesses + l1d.accesses;
    let total_miss = l1i.misses + l1d.misses;
    let unified = if total_acc == 0 {
        0.0
    } else {
        total_miss as f64 / total_acc as f64
    };
    (l1i.miss_ratio(), l1d.miss_ratio(), unified)
}

/// Assembles per-capacity `(i, d, u)` miss ratios (in `capacities_kib`
/// order) into the three labelled curves of a [`SweepResult`].
pub fn assemble_sweep(
    label: &str,
    capacities_kib: &[u64],
    points: Vec<(f64, f64, f64)>,
) -> SweepResult {
    assert_eq!(
        capacities_kib.len(),
        points.len(),
        "one (i, d, u) point per swept capacity"
    );
    let curve = |metric, pick: fn(&(f64, f64, f64)) -> f64| MissRatioCurve {
        label: label.to_owned(),
        metric,
        points: capacities_kib
            .iter()
            .zip(&points)
            .map(|(&kib, p)| (kib, pick(p)))
            .collect(),
    };
    SweepResult {
        instruction: curve(SweepMetric::Instruction, |p| p.0),
        data: curve(SweepMetric::Data, |p| p.1),
        unified: curve(SweepMetric::Unified, |p| p.2),
    }
}

/// The three curves produced by one [`sweep`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// L1I miss ratio curve.
    pub instruction: MissRatioCurve,
    /// L1D miss ratio curve.
    pub data: MissRatioCurve,
    /// Combined curve.
    pub unified: MissRatioCurve,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_trace::{CodeLayout, ExecCtx};

    /// Synthetic workload with ~256 KiB instruction footprint and ~32 KiB
    /// data footprint.
    fn synthetic(sink: &mut dyn TraceSink) {
        let mut layout = CodeLayout::new();
        let regions: Vec<_> = (0..64)
            .map(|i| layout.region(format!("r{i}"), 4096))
            .collect();
        let mut ctx = ExecCtx::new(&layout, sink);
        let data = ctx.heap_alloc(32 * 1024, 64);
        ctx.frame(regions[0], |ctx| {
            for round in 0..40u64 {
                for &r in &regions {
                    ctx.frame(r, |ctx| {
                        for j in 0..256u64 {
                            if j % 4 == 0 {
                                let off = (round * 64 + j) * 64 % data.len();
                                ctx.read(data.addr(off & !7), 8);
                            } else {
                                ctx.int_other(1);
                            }
                        }
                    });
                }
            }
        });
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let result = sweep("synthetic", &[16, 64, 256, 1024], synthetic);
        for curve in [&result.instruction, &result.data, &result.unified] {
            for w in curve.points.windows(2) {
                assert!(
                    w[1].1 <= w[0].1 + 1e-9,
                    "{:?} not monotone: {:?}",
                    curve.metric,
                    curve.points
                );
            }
        }
    }

    #[test]
    fn footprint_estimate_matches_construction() {
        let result = sweep("synthetic", &PAPER_SWEEP_KIB, synthetic);
        let ifoot = result.instruction.footprint_kib(0.002).unwrap();
        assert!(
            (256..=512).contains(&ifoot),
            "expected ~256 KiB instruction footprint, got {ifoot} ({:?})",
            result.instruction.points
        );
        let dfoot = result.data.footprint_kib(0.002).unwrap();
        assert!(dfoot <= 64, "expected small data footprint, got {dfoot}");
    }

    #[test]
    fn footprint_skips_transient_dips_on_bumpy_curves() {
        // Non-monotonic curve: dips to the floor at 32 KiB, bounces back
        // up, and only settles from 256 KiB on. The old first-match read
        // reported 32; the footprint is where the curve *stays* flat.
        let bumpy = MissRatioCurve {
            label: "bumpy".into(),
            metric: SweepMetric::Data,
            points: vec![
                (16, 0.30),
                (32, 0.1004), // within epsilon of the floor, but transient
                (64, 0.25),
                (128, 0.18),
                (256, 0.1007),
                (512, 0.1002),
                (1024, 0.10),
            ],
        };
        assert_eq!(bumpy.footprint_kib(0.002), Some(256));
        // A monotone curve still reads at the first settled point.
        let monotone = MissRatioCurve {
            label: "monotone".into(),
            metric: SweepMetric::Data,
            points: vec![(16, 0.3), (32, 0.101), (64, 0.1005), (128, 0.10)],
        };
        assert_eq!(monotone.footprint_kib(0.002), Some(32));
        // Curves that never settle report the last capacity; empty -> None.
        assert_eq!(monotone.footprint_kib(-1.0), None);
        let empty = MissRatioCurve {
            label: "empty".into(),
            metric: SweepMetric::Data,
            points: vec![],
        };
        assert_eq!(empty.footprint_kib(0.002), None);
    }

    #[test]
    fn sweep_point_matches_serial_sweep() {
        let result = sweep("synthetic", &[16, 256], synthetic);
        let (i16, d16, u16_) = sweep_point(16, synthetic);
        assert_eq!(result.instruction.at(16), Some(i16));
        assert_eq!(result.data.at(16), Some(d16));
        assert_eq!(result.unified.at(16), Some(u16_));
        let (i256, _, _) = sweep_point(256, synthetic);
        assert_eq!(result.instruction.at(256), Some(i256));
    }

    #[test]
    fn fused_sweep_is_byte_identical_to_per_point() {
        let fused = sweep("synthetic", &PAPER_SWEEP_KIB, synthetic);
        let family = SweepFamily::atom();
        let per_point = sweep_per_point(&family, "synthetic", &PAPER_SWEEP_KIB, synthetic);
        assert_eq!(fused, per_point);
        for (curve, reference) in [
            (&fused.instruction, &per_point.instruction),
            (&fused.data, &per_point.data),
            (&fused.unified, &per_point.unified),
        ] {
            for ((ck, cr), (rk, rr)) in curve.points.iter().zip(&reference.points) {
                assert_eq!(ck, rk);
                assert_eq!(cr.to_bits(), rr.to_bits(), "ratio bits differ at {ck} KiB");
            }
        }
    }

    #[test]
    fn sweep_replay_reuses_one_recording() {
        let buffer = bdb_trace::TraceBuffer::capture(synthetic);
        let family = SweepFamily::atom();
        let replayed = sweep_replay(&family, "synthetic", &[16, 256], &buffer);
        let direct = sweep("synthetic", &[16, 256], synthetic);
        assert_eq!(replayed, direct);
    }

    #[test]
    fn at_returns_swept_points_only() {
        let result = sweep("synthetic", &[16, 32], synthetic);
        assert!(result.instruction.at(16).is_some());
        assert!(result.instruction.at(999).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one capacity")]
    fn empty_sweep_panics() {
        let _ = sweep("x", &[], |_| {});
    }

    #[test]
    #[should_panic(expected = "at least one capacity")]
    fn empty_replay_sweep_panics() {
        let buffer = bdb_trace::TraceBuffer::new();
        let _ = sweep_replay(&SweepFamily::atom(), "x", &[], &buffer);
    }

    #[test]
    #[should_panic(expected = "at least one capacity")]
    fn empty_per_point_sweep_panics() {
        let _ = sweep_per_point(&SweepFamily::atom(), "x", &[], |_| {});
    }
}
