//! Cache-capacity sweep harness — the paper's §5.4 locality methodology.
//!
//! The paper estimates instruction/data footprints by sweeping the L1 size
//! of a MARSSx86 Atom-like core from 16 KiB to 8192 KiB and plotting the
//! miss ratio at each point (Figures 6–9); the capacity where the curve
//! flattens is the footprint. [`sweep`] re-runs a workload closure once per
//! capacity on [`MachineConfig::atom_sweep`] machines and collects the
//! resulting [`MissRatioCurve`]s.

use crate::machine::{Machine, MachineConfig};
use serde::{Deserialize, Serialize};

/// The paper's sweep points, in KiB (Figures 6–9 x-axis).
pub const PAPER_SWEEP_KIB: [u64; 10] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// Which miss ratio a curve tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepMetric {
    /// L1 instruction-cache miss ratio (Figures 6 and 9).
    Instruction,
    /// L1 data-cache miss ratio (Figure 7).
    Data,
    /// Combined L1 miss ratio over all accesses (Figure 8).
    Unified,
}

/// One miss-ratio-versus-capacity curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissRatioCurve {
    /// Label (workload or workload-group name).
    pub label: String,
    /// Metric tracked.
    pub metric: SweepMetric,
    /// `(capacity_kib, miss_ratio)` points in ascending capacity order.
    pub points: Vec<(u64, f64)>,
}

impl MissRatioCurve {
    /// Miss ratio at `capacity_kib`, if that point was swept.
    pub fn at(&self, capacity_kib: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|(c, _)| *c == capacity_kib)
            .map(|(_, r)| *r)
    }

    /// Estimated footprint: the smallest swept capacity at which the miss
    /// ratio has dropped within `epsilon` of its final (largest-capacity)
    /// value *and stays there* — every larger-capacity point must also be
    /// within `epsilon` of the floor. This is how the paper reads "the
    /// footprint of PARSEC is about 128 KB" off Figure 6. Requiring the
    /// suffix to stay flat keeps a non-monotonic (bumpy) curve from being
    /// read at the first transient dip.
    ///
    /// Returns `None` for an empty curve.
    pub fn footprint_kib(&self, epsilon: f64) -> Option<u64> {
        let (_, floor) = *self.points.last()?;
        // Walk backwards from the flat tail: the footprint is the earliest
        // point of the longest suffix that stays within `epsilon` of the
        // floor.
        let mut footprint = None;
        for (c, r) in self.points.iter().rev() {
            if r - floor <= epsilon {
                footprint = Some(*c);
            } else {
                break;
            }
        }
        footprint
    }
}

/// Runs `workload` once per capacity in `capacities_kib` on an Atom-like
/// in-order machine and returns the three curves (instruction, data,
/// unified).
///
/// The workload closure must regenerate identical work on every call (all
/// generators in this workspace are seeded, so this holds by construction).
///
/// # Panics
///
/// Panics if `capacities_kib` is empty.
pub fn sweep(
    label: &str,
    capacities_kib: &[u64],
    mut workload: impl FnMut(&mut Machine),
) -> SweepResult {
    assert!(
        !capacities_kib.is_empty(),
        "sweep needs at least one capacity"
    );
    let points = capacities_kib
        .iter()
        .map(|&kib| sweep_point(kib, &mut workload))
        .collect();
    assemble_sweep(label, capacities_kib, points)
}

/// Runs `workload` once on an Atom-like machine with `kib` of L1 and
/// returns `(instruction, data, unified)` miss ratios — one point of a
/// sweep curve. `sweep` runs these serially; the execution engine fans
/// them out across a thread pool (each point is an independent machine).
pub fn sweep_point(kib: u64, workload: impl FnOnce(&mut Machine)) -> (f64, f64, f64) {
    let mut machine = Machine::new(MachineConfig::atom_sweep(kib));
    workload(&mut machine);
    let report = machine.report();
    let total_acc = report.l1i.accesses + report.l1d.accesses;
    let total_miss = report.l1i.misses + report.l1d.misses;
    let unified = if total_acc == 0 {
        0.0
    } else {
        total_miss as f64 / total_acc as f64
    };
    (report.l1i.miss_ratio(), report.l1d.miss_ratio(), unified)
}

/// Assembles per-capacity `(i, d, u)` miss ratios (in `capacities_kib`
/// order) into the three labelled curves of a [`SweepResult`].
pub fn assemble_sweep(
    label: &str,
    capacities_kib: &[u64],
    points: Vec<(f64, f64, f64)>,
) -> SweepResult {
    assert_eq!(
        capacities_kib.len(),
        points.len(),
        "one (i, d, u) point per swept capacity"
    );
    let curve = |metric, pick: fn(&(f64, f64, f64)) -> f64| MissRatioCurve {
        label: label.to_owned(),
        metric,
        points: capacities_kib
            .iter()
            .zip(&points)
            .map(|(&kib, p)| (kib, pick(p)))
            .collect(),
    };
    SweepResult {
        instruction: curve(SweepMetric::Instruction, |p| p.0),
        data: curve(SweepMetric::Data, |p| p.1),
        unified: curve(SweepMetric::Unified, |p| p.2),
    }
}

/// The three curves produced by one [`sweep`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// L1I miss ratio curve.
    pub instruction: MissRatioCurve,
    /// L1D miss ratio curve.
    pub data: MissRatioCurve,
    /// Combined curve.
    pub unified: MissRatioCurve,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_trace::{CodeLayout, ExecCtx};

    /// Synthetic workload with ~256 KiB instruction footprint and ~32 KiB
    /// data footprint.
    fn synthetic(machine: &mut Machine) {
        let mut layout = CodeLayout::new();
        let regions: Vec<_> = (0..64)
            .map(|i| layout.region(format!("r{i}"), 4096))
            .collect();
        let mut ctx = ExecCtx::new(&layout, machine);
        let data = ctx.heap_alloc(32 * 1024, 64);
        ctx.frame(regions[0], |ctx| {
            for round in 0..40u64 {
                for &r in &regions {
                    ctx.frame(r, |ctx| {
                        for j in 0..256u64 {
                            if j % 4 == 0 {
                                let off = (round * 64 + j) * 64 % data.len();
                                ctx.read(data.addr(off & !7), 8);
                            } else {
                                ctx.int_other(1);
                            }
                        }
                    });
                }
            }
        });
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let result = sweep("synthetic", &[16, 64, 256, 1024], synthetic);
        for curve in [&result.instruction, &result.data, &result.unified] {
            for w in curve.points.windows(2) {
                assert!(
                    w[1].1 <= w[0].1 + 1e-9,
                    "{:?} not monotone: {:?}",
                    curve.metric,
                    curve.points
                );
            }
        }
    }

    #[test]
    fn footprint_estimate_matches_construction() {
        let result = sweep("synthetic", &PAPER_SWEEP_KIB, synthetic);
        let ifoot = result.instruction.footprint_kib(0.002).unwrap();
        assert!(
            (256..=512).contains(&ifoot),
            "expected ~256 KiB instruction footprint, got {ifoot} ({:?})",
            result.instruction.points
        );
        let dfoot = result.data.footprint_kib(0.002).unwrap();
        assert!(dfoot <= 64, "expected small data footprint, got {dfoot}");
    }

    #[test]
    fn footprint_skips_transient_dips_on_bumpy_curves() {
        // Non-monotonic curve: dips to the floor at 32 KiB, bounces back
        // up, and only settles from 256 KiB on. The old first-match read
        // reported 32; the footprint is where the curve *stays* flat.
        let bumpy = MissRatioCurve {
            label: "bumpy".into(),
            metric: SweepMetric::Data,
            points: vec![
                (16, 0.30),
                (32, 0.1004), // within epsilon of the floor, but transient
                (64, 0.25),
                (128, 0.18),
                (256, 0.1007),
                (512, 0.1002),
                (1024, 0.10),
            ],
        };
        assert_eq!(bumpy.footprint_kib(0.002), Some(256));
        // A monotone curve still reads at the first settled point.
        let monotone = MissRatioCurve {
            label: "monotone".into(),
            metric: SweepMetric::Data,
            points: vec![(16, 0.3), (32, 0.101), (64, 0.1005), (128, 0.10)],
        };
        assert_eq!(monotone.footprint_kib(0.002), Some(32));
        // Curves that never settle report the last capacity; empty -> None.
        assert_eq!(monotone.footprint_kib(-1.0), None);
        let empty = MissRatioCurve {
            label: "empty".into(),
            metric: SweepMetric::Data,
            points: vec![],
        };
        assert_eq!(empty.footprint_kib(0.002), None);
    }

    #[test]
    fn sweep_point_matches_serial_sweep() {
        let result = sweep("synthetic", &[16, 256], synthetic);
        let (i16, d16, u16_) = sweep_point(16, synthetic);
        assert_eq!(result.instruction.at(16), Some(i16));
        assert_eq!(result.data.at(16), Some(d16));
        assert_eq!(result.unified.at(16), Some(u16_));
        let (i256, _, _) = sweep_point(256, synthetic);
        assert_eq!(result.instruction.at(256), Some(i256));
    }

    #[test]
    fn at_returns_swept_points_only() {
        let result = sweep("synthetic", &[16, 32], synthetic);
        assert!(result.instruction.at(16).is_some());
        assert!(result.instruction.at(999).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one capacity")]
    fn empty_sweep_panics() {
        let _ = sweep("x", &[], |_| {});
    }
}
