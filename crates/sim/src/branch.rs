//! Branch prediction models.
//!
//! The paper contrasts two X86 front-ends (its Table 4): the Intel Atom
//! D510's simple two-level adaptive predictor with a 128-entry BTB, and the
//! Xeon E5645's hybrid predictor that combines a two-level predictor with a
//! loop counter, indirect-target prediction, and an 8192-entry BTB — and
//! measures 7.8 % vs 2.8 % misprediction on the big data workloads.
//!
//! [`BranchUnit`] packages a direction predictor, a BTB, and a return
//! address stack; [`BranchUnit::d510`] and [`BranchUnit::e5645`] build the
//! two configurations.

use bdb_trace::BranchKind;
use serde::{Deserialize, Serialize};

/// Saturating 2-bit counter helpers.
fn bump(counter: &mut u8, up: bool) {
    if up {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

fn predicts_taken(counter: u8) -> bool {
    counter >= 2
}

/// A two-level adaptive direction predictor with a global history register
/// XOR-folded into the pattern history table index (gshare organization) —
/// the D510-class predictor.
#[derive(Debug, Clone)]
pub struct TwoLevelPredictor {
    history: u64,
    history_bits: u32,
    table: Vec<u8>,
}

impl TwoLevelPredictor {
    /// Builds a predictor with `table_bits` PHT index bits and
    /// `history_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits == 0` or `history_bits > table_bits`.
    pub fn new(table_bits: u32, history_bits: u32) -> Self {
        assert!(table_bits > 0, "PHT must be non-empty");
        assert!(
            history_bits <= table_bits,
            "history cannot exceed index width"
        );
        Self {
            history: 0,
            history_bits,
            table: vec![2; 1 << table_bits],
        }
    }

    fn index(&self, pc: u64) -> usize {
        let folded = (pc >> 2) ^ (self.history << (self.table_bits() - self.history_bits));
        (folded as usize) & (self.table.len() - 1)
    }

    fn table_bits(&self) -> u32 {
        self.table.len().trailing_zeros()
    }

    /// Predicted direction for the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        predicts_taken(self.table[self.index(pc)])
    }

    /// Trains on the real outcome.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        bump(&mut self.table[i], taken);
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.history_bits) - 1);
    }
}

/// Loop-exit predictor: learns branches that are taken exactly `N` times
/// and then fall through once (the E5645's "loop counter" in Table 4).
#[derive(Debug, Clone)]
pub struct LoopPredictor {
    entries: Vec<LoopEntry>,
}

#[derive(Debug, Clone, Copy, Default)]
struct LoopEntry {
    tag: u64,
    trip: u32,
    current: u32,
    confidence: u8,
}

impl LoopPredictor {
    /// Builds a loop predictor with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "loop table size must be a power of two"
        );
        Self {
            entries: vec![LoopEntry::default(); entries],
        }
    }

    fn slot(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.entries.len() - 1)
    }

    /// `Some(direction)` when confident about this branch, `None` otherwise.
    pub fn predict(&self, pc: u64) -> Option<bool> {
        let e = &self.entries[self.slot(pc)];
        if e.tag == pc && e.confidence >= 2 && e.trip > 0 {
            Some(e.current + 1 < e.trip)
        } else {
            None
        }
    }

    /// Trains on the real outcome.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let slot = self.slot(pc);
        let e = &mut self.entries[slot];
        if e.tag != pc {
            *e = LoopEntry {
                tag: pc,
                trip: 0,
                current: 0,
                confidence: 0,
            };
        }
        if taken {
            e.current += 1;
            // A "loop" that runs absurdly long is not loop-shaped; give up.
            if e.current > 1 << 16 {
                e.confidence = 0;
                e.current = 0;
                e.trip = 0;
            }
        } else {
            let observed = e.current + 1; // executions in this round, incl. the exit
            if observed == e.trip {
                e.confidence = (e.confidence + 1).min(3);
            } else {
                e.trip = observed;
                e.confidence = 0;
            }
            e.current = 0;
        }
    }
}

/// Branch target buffer: direct-mapped `pc -> target` store used for
/// indirect branches.
#[derive(Debug, Clone)]
pub struct Btb {
    tags: Vec<u64>,
    targets: Vec<u64>,
    misses: u64,
    lookups: u64,
}

impl Btb {
    /// Builds a BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "BTB size must be a power of two");
        Self {
            tags: vec![u64::MAX; entries],
            targets: vec![0; entries],
            misses: 0,
            lookups: 0,
        }
    }

    fn slot(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.tags.len() - 1)
    }

    /// Looks up the predicted target for `pc`, then installs the real
    /// `target`. Returns `true` if the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, target: u64) -> bool {
        self.lookups += 1;
        let slot = self.slot(pc);
        let correct = self.tags[slot] == pc && self.targets[slot] == target;
        if !correct {
            self.misses += 1;
        }
        self.tags[slot] = pc;
        self.targets[slot] = target;
        correct
    }

    /// Lookups that returned a wrong or missing target.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }
}

/// Return address stack.
#[derive(Debug, Clone)]
pub struct ReturnStack {
    stack: Vec<u64>,
    depth: usize,
}

impl ReturnStack {
    /// Builds a RAS of `depth` entries.
    pub fn new(depth: usize) -> Self {
        Self {
            stack: Vec::with_capacity(depth),
            depth,
        }
    }

    /// Records a call whose return will land at `return_pc`.
    pub fn push(&mut self, return_pc: u64) {
        if self.stack.len() == self.depth {
            self.stack.remove(0);
        }
        self.stack.push(return_pc);
    }

    /// Pops the predicted return target; `None` when empty (underflow).
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }
}

/// Aggregate prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Dynamic branches observed (all kinds).
    pub branches: u64,
    /// Mispredicted branches (direction or target).
    pub mispredicts: u64,
    /// Conditional branches observed.
    pub conditionals: u64,
    /// Conditional direction mispredicts.
    pub cond_mispredicts: u64,
}

impl BranchStats {
    /// Overall misprediction ratio in `[0, 1]`.
    pub fn mispredict_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// Which direction scheme a [`BranchUnit`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirectionScheme {
    /// Pure two-level adaptive (Atom D510, per Table 4).
    TwoLevel,
    /// Hybrid: chooser between bimodal and two-level, plus a loop counter
    /// (Xeon E5645, per Table 4).
    Hybrid,
}

/// The full branch prediction unit: direction predictor + BTB + RAS.
///
/// # Examples
///
/// ```
/// use bdb_sim::branch::BranchUnit;
/// use bdb_trace::BranchKind;
///
/// let mut unit = BranchUnit::e5645();
/// // A loop taken 7 times then exiting is learned by the loop predictor.
/// for _ in 0..50 {
///     for i in 0..8 {
///         unit.observe(0x400_100, i < 7, 0x400_080, BranchKind::Conditional);
///     }
/// }
/// assert!(unit.stats().mispredict_ratio() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct BranchUnit {
    scheme: DirectionScheme,
    two_level: TwoLevelPredictor,
    bimodal: Vec<u8>,
    chooser: Vec<u8>,
    loop_pred: LoopPredictor,
    btb: Btb,
    ras: ReturnStack,
    mispredict_penalty: u32,
    stats: BranchStats,
}

impl BranchUnit {
    /// Atom-D510-like unit: two-level adaptive predictor with a global
    /// history table, 128-entry BTB, 15-cycle misprediction penalty, and no
    /// indirect/loop support beyond the BTB (paper Table 4).
    pub fn d510() -> Self {
        Self {
            scheme: DirectionScheme::TwoLevel,
            two_level: TwoLevelPredictor::new(10, 6),
            bimodal: vec![2; 1 << 10],
            chooser: vec![2; 1 << 10],
            loop_pred: LoopPredictor::new(1), // unused under TwoLevel
            btb: Btb::new(128),
            ras: ReturnStack::new(8),
            mispredict_penalty: 15,
            stats: BranchStats::default(),
        }
    }

    /// Xeon-E5645-like unit: hybrid predictor (two-level + bimodal with a
    /// chooser) combined with a loop counter, indirect-target prediction via
    /// an 8192-entry BTB, and an 11–13 cycle penalty (paper Table 4).
    pub fn e5645() -> Self {
        Self {
            scheme: DirectionScheme::Hybrid,
            two_level: TwoLevelPredictor::new(14, 12),
            bimodal: vec![2; 1 << 14],
            chooser: vec![2; 1 << 14],
            loop_pred: LoopPredictor::new(512),
            btb: Btb::new(8192),
            ras: ReturnStack::new(16),
            mispredict_penalty: 12,
            stats: BranchStats::default(),
        }
    }

    /// Cycle cost of one misprediction on this unit.
    pub fn mispredict_penalty(&self) -> u32 {
        self.mispredict_penalty
    }

    /// The direction scheme in use.
    pub fn scheme(&self) -> DirectionScheme {
        self.scheme
    }

    /// Observes one dynamic branch; returns `true` if it was mispredicted.
    ///
    /// `fallthrough_pc` for calls is the return address pushed on the RAS;
    /// we approximate it with `pc + 4`.
    pub fn observe(&mut self, pc: u64, taken: bool, target: u64, kind: BranchKind) -> bool {
        self.stats.branches += 1;
        let mispredicted = match kind {
            BranchKind::Conditional => {
                self.stats.conditionals += 1;
                let predicted = self.predict_direction(pc);
                self.update_direction(pc, taken);
                let mut wrong = predicted != taken;
                if wrong {
                    self.stats.cond_mispredicts += 1;
                }
                // On the in-order two-level core a taken branch whose
                // target misses the small BTB costs a full fetch redirect —
                // architecturally a misprediction. The out-of-order core's
                // decoupled front end hides BTB misses (and its 8192
                // entries rarely miss anyway).
                if taken && self.scheme == DirectionScheme::TwoLevel {
                    wrong |= !self.btb.predict_and_update(pc, target);
                }
                wrong
            }
            BranchKind::Direct => {
                if self.scheme == DirectionScheme::TwoLevel {
                    !self.btb.predict_and_update(pc, target)
                } else {
                    false
                }
            }
            BranchKind::Call => {
                self.ras.push(pc + 4);
                false
            }
            BranchKind::Return => match self.ras.pop() {
                Some(predicted) => predicted != target,
                None => true,
            },
            BranchKind::Indirect => !self.btb.predict_and_update(pc, target),
        };
        if mispredicted {
            self.stats.mispredicts += 1;
        }
        mispredicted
    }

    fn predict_direction(&self, pc: u64) -> bool {
        match self.scheme {
            DirectionScheme::TwoLevel => self.two_level.predict(pc),
            DirectionScheme::Hybrid => {
                if let Some(dir) = self.loop_pred.predict(pc) {
                    return dir;
                }
                let slot = ((pc >> 2) as usize) & (self.bimodal.len() - 1);
                if predicts_taken(self.chooser[slot]) {
                    self.two_level.predict(pc)
                } else {
                    predicts_taken(self.bimodal[slot])
                }
            }
        }
    }

    fn update_direction(&mut self, pc: u64, taken: bool) {
        match self.scheme {
            DirectionScheme::TwoLevel => self.two_level.update(pc, taken),
            DirectionScheme::Hybrid => {
                let slot = ((pc >> 2) as usize) & (self.bimodal.len() - 1);
                let two_level_right = self.two_level.predict(pc) == taken;
                let bimodal_right = predicts_taken(self.bimodal[slot]) == taken;
                if two_level_right != bimodal_right {
                    bump(&mut self.chooser[slot], two_level_right);
                }
                self.two_level.update(pc, taken);
                bump(&mut self.bimodal[slot], taken);
                self.loop_pred.update(pc, taken);
            }
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }

    /// BTB statistics (indirect-target lookups).
    pub fn btb(&self) -> &Btb {
        &self.btb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_learns_alternation() {
        let mut p = TwoLevelPredictor::new(12, 8);
        let pc = 0x400_000;
        let mut wrong = 0;
        for i in 0..2000u32 {
            let taken = i % 2 == 0;
            if p.predict(pc) != taken {
                wrong += 1;
            }
            p.update(pc, taken);
        }
        assert!(
            wrong < 50,
            "two-level should learn T/N alternation, wrong={wrong}"
        );
    }

    #[test]
    fn loop_predictor_learns_fixed_trip_count() {
        let mut lp = LoopPredictor::new(64);
        let pc = 0x400_400;
        // Train several rounds of a 10-iteration loop.
        for _ in 0..5 {
            for i in 0..10 {
                lp.update(pc, i < 9);
            }
        }
        // It should now predict the exit (not-taken) on the 10th execution.
        let mut correct_exit = false;
        for i in 0..10 {
            let pred = lp.predict(pc);
            let actual = i < 9;
            if i == 9 {
                correct_exit = pred == Some(false);
            } else {
                assert_eq!(pred, Some(true), "iteration {i}");
            }
            lp.update(pc, actual);
        }
        assert!(correct_exit, "loop exit should be predicted");
    }

    #[test]
    fn e5645_beats_d510_on_long_loops() {
        // A 24-iteration loop defeats 8 bits of global history but not the
        // loop counter — the mechanism behind Table 4.
        let run = |mut unit: BranchUnit| {
            for _ in 0..400 {
                for i in 0..24 {
                    unit.observe(0x400_800, i < 23, 0x400_780, BranchKind::Conditional);
                }
            }
            unit.stats().mispredict_ratio()
        };
        let d510 = run(BranchUnit::d510());
        let e5645 = run(BranchUnit::e5645());
        assert!(e5645 < d510, "e5645 {e5645} should beat d510 {d510}");
        assert!(
            e5645 < 0.01,
            "loop predictor should nearly eliminate mispredicts: {e5645}"
        );
    }

    #[test]
    fn btb_capacity_matters_for_indirect_spread() {
        // 512 distinct indirect branch sites with stable targets: fits the
        // E5645's 8192-entry BTB, thrashes the D510's 128 entries.
        let run = |mut unit: BranchUnit| {
            for _round in 0..20 {
                for site in 0..512u64 {
                    let pc = 0x400_000 + site * 4;
                    let target = 0x900_000 + site * 64;
                    unit.observe(pc, true, target, BranchKind::Indirect);
                }
            }
            unit.stats().mispredict_ratio()
        };
        let d510 = run(BranchUnit::d510());
        let e5645 = run(BranchUnit::e5645());
        assert!(e5645 < 0.10, "e5645 indirect ratio {e5645}");
        assert!(d510 > 0.5, "d510 should thrash: {d510}");
    }

    #[test]
    fn return_stack_predicts_calls() {
        let mut unit = BranchUnit::e5645();
        // call from pc=100 -> return to 104.
        unit.observe(100, true, 0x500_000, BranchKind::Call);
        let wrong = unit.observe(0x500_040, true, 104, BranchKind::Return);
        assert!(!wrong);
        // Underflow: a return with no call is a mispredict.
        let wrong = unit.observe(0x500_080, true, 104, BranchKind::Return);
        assert!(wrong);
    }

    #[test]
    fn random_outcomes_hurt_both_units() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let outcomes: Vec<bool> = (0..4000).map(|_| rng.gen()).collect();
        let run = |mut unit: BranchUnit| {
            for &t in &outcomes {
                unit.observe(0x400_100, t, 0x400_200, BranchKind::Conditional);
            }
            unit.stats().mispredict_ratio()
        };
        assert!(run(BranchUnit::d510()) > 0.35);
        assert!(run(BranchUnit::e5645()) > 0.35);
    }

    #[test]
    fn stats_count_all_kinds() {
        let mut unit = BranchUnit::e5645();
        unit.observe(0, true, 64, BranchKind::Direct);
        unit.observe(4, true, 64, BranchKind::Conditional);
        let s = unit.stats();
        assert_eq!(s.branches, 2);
        assert_eq!(s.conditionals, 1);
    }
}
