//! Fused multi-capacity sweep: trace once, replay cheap L1 streams per
//! capacity — and, where the inclusion property holds, compute every
//! capacity in a single stack-distance pass.
//!
//! The per-point sweep re-executes the entire workload generator once per
//! L1 size, even though everything outside the two L1 caches (generator,
//! TLBs, branch unit, pipeline, L2) behaves identically at every point.
//! This module splits the work:
//!
//! 1. **Extract** ([`SweepStreams::extract`] from a recorded trace, or
//!    [`SweepStreams::record`] straight from a running workload): one
//!    pass through a sink that mirrors `Machine`'s front end — the
//!    fetch-line filter and the stride-1 stream prefetcher — emitting
//!    the exact, capacity-independent, run-length-compressed event
//!    streams that reach the L1I and L1D. (Both filters are
//!    capacity-independent: the fetch filter only compares consecutive
//!    line addresses, and the prefetcher only observes the demand line
//!    sequence. Drift between this mirror and `Machine` is caught by
//!    `extractor_matches_machine_l1_traffic`.)
//! 2. **Replay** ([`fused_point`] / [`fused_points`]): drive bare L1
//!    models with those streams, once per capacity. Set-associative LRU
//!    with power-of-two sets — every paper sweep point — goes through
//!    the compact `ReplayLru` order lists (one 64-byte host cache
//!    line per 8-way set, provably equal to stamp-LRU); everything else
//!    executes the same [`Cache`] code over the same event sequence as
//!    the full machine. Both are exact: same access and miss counts,
//!    bit for bit.
//! 3. **Single pass** ([`fused_points`] when
//!    [`SweepFamily::single_pass_sound`]): for fully-associative LRU, the
//!    inclusion property holds on the data side, so one Mattson/Olken
//!    stack-distance traversal (Fenwick-tree counter, the same machinery
//!    as `bdb_trace::reuse`) yields the exact hit count for *every*
//!    capacity at once. The instruction side keeps a per-capacity pass
//!    even then, because the next-line prefetch fires only on a miss —
//!    capacity-dependent feedback that breaks inclusion.
//!
//! The default machine family ([`SweepFamily::atom`]) is 8-way
//! set-associative, where inclusion is unsound (set conflicts can make a
//! bigger cache miss where a smaller one hit), so `sweep` routes it to
//! the exact per-capacity replay. Either way the workload generator runs
//! exactly once per sweep instead of once per point.
//!
//! Replay is built to run at hardware limits:
//!
//! * **Intra-workload parallelism** ([`fused_points_parallel`]): once
//!   the streams are extracted, capacity points are independent
//!   read-only replays, so one workload's sweep fans out across cores
//!   with deterministic index-ordered assembly — byte-identical to
//!   serial at any width.
//! * **Batched probes**: `ReplayLru` probes whole runs of RLE entries
//!   per call, and the 8-way order-list line is matched with a
//!   branch-free bitwise way mask; the Olken/Fenwick stack engine
//!   advances a warm touch with two merged tree traversals
//!   ([`Fenwick::range`] / [`Fenwick::move_mark`]) instead of four.
//! * **Arena-backed extraction** ([`StreamArena`]): long-lived callers
//!   recycle stream vectors across sweeps, so extraction stops paying
//!   the allocator once warm.

use crate::cache::{Cache, CacheConfig, CacheStats, Replacement};
use crate::machine::MachineConfig;
use crate::sweep::point_ratios;
use bdb_trace::{MicroOp, TraceBuffer, TraceEvent, TraceSink};
use rayon::prelude::*;
// Keyed-lookup only (entry by line address, never iterated), so hash
// order cannot affect any count.
// bdb-lint: allow(determinism): keyed-lookup-only map, never iterated.
use std::collections::HashMap;
use std::sync::Mutex;

/// Data-side event kinds within [`SweepStreams`].
const D_LOAD: u8 = 0;
const D_STORE: u8 = 1;
const D_INSTALL: u8 = 2;

/// The L1 cache family being swept: what varies is capacity, what stays
/// fixed is geometry (associativity, 64-byte lines) and replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepFamily {
    /// Ways per set; `None` means fully associative at every capacity.
    pub l1_assoc: Option<usize>,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl SweepFamily {
    /// The paper's sweep platform: 8-way LRU, matching
    /// [`MachineConfig::atom_sweep`] byte for byte.
    pub fn atom() -> Self {
        SweepFamily {
            l1_assoc: Some(8),
            replacement: Replacement::Lru,
        }
    }

    /// Fully-associative LRU — the family where the inclusion property
    /// holds and the single-pass stack-distance engine applies.
    pub fn fully_associative() -> Self {
        SweepFamily {
            l1_assoc: None,
            replacement: Replacement::Lru,
        }
    }

    /// L1 geometry at `kib` of capacity.
    pub fn l1_config(&self, kib: u64) -> CacheConfig {
        let size_bytes = kib * 1024;
        CacheConfig {
            size_bytes,
            assoc: self.l1_assoc.unwrap_or((size_bytes / 64) as usize),
            line_bytes: 64,
            replacement: self.replacement,
        }
    }

    /// Full machine configuration for the per-point reference path:
    /// [`MachineConfig::atom_sweep`] with this family's L1 geometry.
    pub fn machine_config(&self, kib: u64) -> MachineConfig {
        let mut config = MachineConfig::atom_sweep(kib);
        config.l1i = self.l1_config(kib);
        config.l1d = self.l1_config(kib);
        config
    }

    /// Whether one stack-distance pass yields exact hit counts for every
    /// capacity (the inclusion property): requires full associativity
    /// (set conflicts are capacity-dependent) and LRU (a random victim
    /// stream diverges between capacities).
    pub fn single_pass_sound(&self) -> bool {
        self.l1_assoc.is_none() && self.replacement == Replacement::Lru
    }
}

/// The capacity-independent L1 event streams of one recorded trace.
///
/// Streams are run-length compressed: consecutive events of the same
/// kind touching the same 64-byte line collapse into one entry with a
/// repeat count. Replay expands runs through [`Cache::access_run`]'s
/// bulk-hit path — after the first access the line is resident and most
/// recent and nothing else touches the cache within a run, so the
/// repeats are guaranteed hits; the counters come out exactly as if
/// every event were replayed individually. Sequential byte-granularity
/// scans (most of the catalog's inner loops) shrink several-fold.
#[derive(Debug, Default, Clone)]
pub struct SweepStreams {
    /// Program counters that reach the L1I, post fetch-line filter.
    ifetch: Vec<u64>,
    /// Repeat count per `ifetch` entry (same-line refetches after a
    /// taken branch reset the filter without leaving the line).
    irepeat: Vec<u32>,
    /// Data-side addresses in L1D arrival order (demand and prefetch).
    daddr: Vec<u64>,
    /// Parallel event kinds for `daddr` (`D_LOAD`/`D_STORE`/`D_INSTALL`).
    dkind: Vec<u8>,
    /// Repeat count per `daddr` entry (installs never collapse: a
    /// three-line fill targets three distinct lines).
    drepeat: Vec<u32>,
    /// Running total of `irepeat` (pre-compression L1I event count),
    /// kept incrementally so the replay-work estimate is O(1).
    ievents: u64,
    /// Running total of `drepeat` (pre-compression L1D event count).
    devents: u64,
}

impl SweepStreams {
    /// Extracts the streams from a recorded trace in one pass.
    pub fn extract(buffer: &TraceBuffer) -> Self {
        let mut extractor = SweepExtractor::new();
        // Iterate the columns directly rather than through
        // `replay_into`'s scratch batches: extraction is the one pass
        // that touches every recorded event, so the extra copy shows up.
        for event in buffer.events() {
            extractor.step(event.pc, event.op);
        }
        extractor.streams
    }

    /// Extracts the streams straight from a running workload — the
    /// extractor itself is the sink, so no trace is materialized in
    /// between. Produces bit-identical streams to recording into a
    /// [`TraceBuffer`] and calling [`SweepStreams::extract`] (buffer
    /// replay reproduces the exact event sequence); the engine's fused
    /// sweep uses this to skip the buffer write and re-read on its hot
    /// path.
    pub fn record(workload: impl FnOnce(&mut dyn TraceSink)) -> Self {
        let mut extractor = SweepExtractor::new();
        workload(&mut extractor);
        extractor.streams
    }

    /// [`SweepStreams::record`] into `self`, reusing whatever capacity
    /// the five stream vectors already hold — the [`StreamArena`] path,
    /// so repeated sweeps stop paying the allocator for stream growth.
    pub fn record_into(&mut self, workload: impl FnOnce(&mut dyn TraceSink)) {
        self.clear();
        let mut extractor = SweepExtractor {
            streams: std::mem::take(self),
            last_fetch_line: u64::MAX,
            prefetch: StreamDetector::new(),
        };
        workload(&mut extractor);
        *self = extractor.streams;
    }

    /// Empties the streams without releasing their buffers.
    pub fn clear(&mut self) {
        self.ifetch.clear();
        self.irepeat.clear();
        self.daddr.clear();
        self.dkind.clear();
        self.drepeat.clear();
        self.ievents = 0;
        self.devents = 0;
    }

    /// Number of L1I fetch events (before run-length compression).
    pub fn ifetch_len(&self) -> usize {
        self.ievents as usize
    }

    /// Number of L1D events, demand plus prefetch installs (before
    /// run-length compression).
    pub fn data_len(&self) -> usize {
        self.devents as usize
    }

    /// Total L1 events (both sides, before run-length compression) —
    /// the `trace events` factor in the engine's point-parallel work
    /// threshold.
    pub fn event_count(&self) -> u64 {
        self.ievents + self.devents
    }

    /// Number of run-length-compressed entries across both streams — the
    /// work one capacity replay actually performs.
    pub fn compressed_entries(&self) -> usize {
        self.ifetch.len() + self.daddr.len()
    }

    /// Appends an L1I fetch, collapsing same-line runs.
    fn push_ifetch(&mut self, pc: u64) {
        self.ievents += 1;
        if let (Some(&last_pc), Some(last_n)) = (self.ifetch.last(), self.irepeat.last_mut()) {
            if last_pc >> 6 == pc >> 6 && *last_n < u32::MAX {
                *last_n += 1;
                return;
            }
        }
        self.ifetch.push(pc);
        self.irepeat.push(1);
    }

    /// Appends an L1D event, collapsing same-line same-kind demand runs.
    fn push_data(&mut self, addr: u64, kind: u8) {
        self.devents += 1;
        if let (Some(&last_addr), Some(&last_kind), Some(last_n)) = (
            self.daddr.last(),
            self.dkind.last(),
            self.drepeat.last_mut(),
        ) {
            if last_kind == kind
                && kind != D_INSTALL
                && last_addr >> 6 == addr >> 6
                && *last_n < u32::MAX
            {
                *last_n += 1;
                return;
            }
        }
        self.daddr.push(addr);
        self.dkind.push(kind);
        self.drepeat.push(1);
    }
}

/// Reusable pool of [`SweepStreams`] buffers: checked-in streams keep
/// their five vectors' capacity, so a long-lived caller (the engine,
/// the daemons) extracts thousands of sweeps into the same handful of
/// allocations instead of growing fresh vectors from zero every time.
/// bdb-lint's hot-loop-allocation rule is the enforcement backstop: the
/// extraction path itself must stay allocation-free.
///
/// Concurrent checkouts each get their own streams (the pool refills on
/// first use per concurrent caller); check-in order does not matter.
#[derive(Debug, Default)]
pub struct StreamArena {
    pool: Mutex<Vec<SweepStreams>>,
}

impl StreamArena {
    /// An empty arena.
    pub fn new() -> Self {
        StreamArena::default()
    }

    /// Takes a cleared streams buffer out of the arena (an empty one if
    /// the pool is dry — or poisoned, which only an unwinding recorder
    /// can cause; the replacement buffer keeps the arena functional).
    pub fn checkout(&self) -> SweepStreams {
        self.pool
            .lock()
            .ok()
            .and_then(|mut pool| pool.pop())
            .unwrap_or_default()
    }

    /// Returns a streams buffer to the arena for reuse (contents are
    /// cleared, capacity is kept).
    pub fn checkin(&self, mut streams: SweepStreams) {
        streams.clear();
        if let Ok(mut pool) = self.pool.lock() {
            pool.push(streams);
        }
    }
}

/// Mirror of `Machine`'s stride-1 stream prefetcher (8 slots, round-robin
/// allocation, two-line trigger, three-line fill).
#[derive(Debug)]
struct StreamDetector {
    streams: [StreamSlot; 8],
    clock: usize,
}

#[derive(Debug, Clone, Copy, Default)]
struct StreamSlot {
    last_line: u64,
    confidence: u8,
}

impl StreamDetector {
    fn new() -> Self {
        StreamDetector {
            streams: [StreamSlot::default(); 8],
            clock: 0,
        }
    }

    /// Observes a demand line; returns `true` when the three-line prefetch
    /// fill fires. Mirrors `Machine::note_data_line` exactly, including
    /// the default slots initially matching line 0.
    fn note(&mut self, line: u64) -> bool {
        for s in &mut self.streams {
            if line == s.last_line {
                return false;
            }
            if line > s.last_line && line - s.last_line <= 2 {
                s.last_line = line;
                s.confidence = (s.confidence + 1).min(3);
                return s.confidence >= 2;
            }
        }
        self.clock = (self.clock + 1) % self.streams.len();
        self.streams[self.clock] = StreamSlot {
            last_line: line,
            confidence: 0,
        };
        false
    }
}

/// Sink that turns a replayed trace into [`SweepStreams`].
#[derive(Debug)]
struct SweepExtractor {
    streams: SweepStreams,
    last_fetch_line: u64,
    prefetch: StreamDetector,
}

impl SweepExtractor {
    fn new() -> Self {
        SweepExtractor {
            streams: SweepStreams::default(),
            last_fetch_line: u64::MAX,
            prefetch: StreamDetector::new(),
        }
    }

    fn step(&mut self, pc: u64, op: MicroOp) {
        // Machine::fetch's line filter: consecutive ops on one line reach
        // the L1I once; a taken branch (below) resets the filter.
        let line = pc >> 6;
        if line != self.last_fetch_line {
            self.last_fetch_line = line;
            self.streams.push_ifetch(pc);
        }
        match op {
            MicroOp::Load { addr, .. } => self.data(addr, false),
            MicroOp::Store { addr, .. } => self.data(addr, true),
            MicroOp::Branch { taken: true, .. } => self.last_fetch_line = u64::MAX,
            _ => {}
        }
    }

    fn data(&mut self, addr: u64, is_store: bool) {
        let line = addr >> 6;
        // Machine::data_access notes the line (possibly firing prefetch
        // installs) before the demand access itself.
        if self.prefetch.note(line) {
            for ahead in 1..=3u64 {
                self.streams.push_data((line + ahead) << 6, D_INSTALL);
            }
        }
        self.streams
            .push_data(addr, if is_store { D_STORE } else { D_LOAD });
    }
}

impl TraceSink for SweepExtractor {
    fn exec(&mut self, pc: u64, op: MicroOp) {
        self.step(pc, op);
    }

    fn exec_batch(&mut self, batch: &[TraceEvent]) {
        for event in batch {
            self.step(event.pc, event.op);
        }
    }
}

/// One fused sweep point: replays the extracted streams against bare L1
/// models at `kib` and returns `(instruction, data, unified)` miss ratios
/// — bit-identical to `sweep_point` on the same recorded workload.
///
/// Exact for any associativity/replacement: set-associative LRU with a
/// power-of-two set count (every paper sweep point) replays through the
/// compact `ReplayLru` order lists, everything else executes the same
/// [`Cache`] code over the same event sequence as the full machine; both
/// produce the machine's exact access and miss counts.
pub fn fused_point(family: &SweepFamily, kib: u64, streams: &SweepStreams) -> (f64, f64, f64) {
    let (l1i, l1d) = if let Some((sets, assoc)) = lru_fast_path(family, kib) {
        lru_replay_point(sets, assoc, streams)
    } else {
        cache_replay_point(family, kib, streams)
    };
    point_ratios(l1i, l1d)
}

/// Geometry for the [`ReplayLru`] fast path, when it is exact: true-LRU
/// set-associative with at least two power-of-two sets (so masked
/// indexing applies and the next-line instruction install always lands
/// in a different set than the line that missed — the property that
/// makes the bulk run replay order-exact).
fn lru_fast_path(family: &SweepFamily, kib: u64) -> Option<(usize, usize)> {
    let assoc = family.l1_assoc?;
    if family.replacement != Replacement::Lru {
        return None;
    }
    let sets = family.l1_config(kib).sets();
    (sets >= 2 && sets.is_power_of_two()).then_some((sets, assoc))
}

/// Replay-only true-LRU set-associative model: per set, `assoc` line
/// numbers stored most-recent-first in one contiguous slab — no
/// timestamps, no dirty bits, so an 8-way set is a single 64-byte cache
/// line and each replayed event touches one line of memory instead of a
/// tag line plus a stamp line. That halved memory traffic is what makes
/// the large-capacity sweep points (whose tag arrays dwarf the L2) cheap.
///
/// An order list is exactly stamp-LRU: a hit rotates the line to the
/// front, a miss shifts the new line in at the front and drops the last
/// slot — the least-recently-used valid line, or an invalid slot (invalid
/// slots always form a suffix, and the stamp model likewise fills an
/// invalid way before evicting). Accesses and misses therefore come out
/// identical to [`Cache`]; writebacks are not modelled, which is fine for
/// miss-ratio sweeps — `point_ratios` never reads them.
#[derive(Debug)]
struct ReplayLru {
    /// `tags[set * assoc ..][..assoc]`, most-recent-first; `u64::MAX`
    /// marks an invalid slot (unreachable as a line number: lines are
    /// addresses shifted right by 6).
    tags: Vec<u64>,
    set_mask: u64,
    assoc: usize,
    accesses: u64,
    misses: u64,
}

impl ReplayLru {
    fn new(sets: usize, assoc: usize) -> Self {
        debug_assert!(sets.is_power_of_two());
        ReplayLru {
            tags: vec![u64::MAX; sets * assoc],
            set_mask: sets as u64 - 1,
            assoc,
            accesses: 0,
            misses: 0,
        }
    }

    /// Refreshes `line`'s recency without touching the demand counters
    /// (the install path); returns `true` when the line was resident.
    #[inline]
    fn touch(&mut self, line: u64) -> bool {
        let base = (line & self.set_mask) as usize * self.assoc;
        let set = &mut self.tags[base..base + self.assoc];
        match <&mut [u64; 8]>::try_from(&mut *set) {
            Ok(set8) => Self::probe8(set8, line),
            Err(_) => Self::probe_scan(set, line),
        }
    }

    /// Branch-free probe of one 8-way order-list line (the paper sweep's
    /// only geometry, one 64-byte host cache line): all eight tag
    /// comparisons fold into a way mask in one pass — auto-vectorizable,
    /// no early exit — and the hit/update is a single `copy_within`
    /// whose length comes straight off the mask. A hit at depth `d`
    /// rotates `set[..=d]` right; a miss "rotates" the whole set,
    /// dropping the LRU tail and inserting the new line at the front —
    /// the same update either way, so no divergent control flow.
    #[inline]
    fn probe8(set: &mut [u64; 8], line: u64) -> bool {
        let mut mask = 0u32;
        for (w, &tag) in set.iter().enumerate() {
            mask |= u32::from(tag == line) << w;
        }
        // Depth of the matched way; bit 7 makes an empty mask (a miss)
        // select depth 7 — the evicted LRU slot.
        let depth = (mask | 0x80).trailing_zeros() as usize;
        set.copy_within(..depth, 1);
        set[0] = line;
        mask != 0
    }

    /// Scalar probe for the general geometry (any associativity) — also
    /// the drift oracle the batched 8-way path is proptested against.
    #[inline]
    fn probe_scan(set: &mut [u64], line: u64) -> bool {
        if set[0] == line {
            return true;
        }
        for w in 1..set.len() {
            if set[w] == line {
                set[..=w].rotate_right(1);
                return true;
            }
        }
        set.rotate_right(1);
        set[0] = line;
        false
    }

    /// `n` back-to-back demand accesses to `line`: only the first can
    /// miss, and the repeats just re-touch the line already at the front
    /// of its set, so they reduce to counter bumps.
    #[inline]
    fn access_run(&mut self, line: u64, n: u64) -> bool {
        self.accesses += n;
        let hit = self.touch(line);
        if !hit {
            self.misses += 1;
        }
        hit
    }

    /// Replays a run of RLE instruction-stream entries in one call: the
    /// whole batch walks the order lists without leaving the cache's
    /// working set, and each entry costs one probe (plus the next-line
    /// install probe on a miss) regardless of its repeat count.
    fn replay_ifetch(&mut self, pcs: &[u64], repeats: &[u32]) {
        for (&pc, &n) in pcs.iter().zip(repeats) {
            let line = pc >> 6;
            if !self.access_run(line, u64::from(n)) {
                // Machine::fetch's next-line instruction prefetch.
                self.touch(line + 1);
            }
        }
    }

    /// Replays a run of RLE data-stream entries in one call; installs
    /// refresh recency without counting as demand accesses.
    fn replay_data(&mut self, addrs: &[u64], kinds: &[u8], repeats: &[u32]) {
        for ((&addr, &kind), &n) in addrs.iter().zip(kinds).zip(repeats) {
            if kind == D_INSTALL {
                self.touch(addr >> 6);
            } else {
                // Loads and stores count the same here: dirtiness only
                // feeds the writeback counter, which this model does not
                // track.
                self.access_run(addr >> 6, u64::from(n));
            }
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            accesses: self.accesses,
            misses: self.misses,
            writebacks: 0,
        }
    }
}

/// [`cache_replay_point`] through [`ReplayLru`] order lists. The event
/// sequence and its interleaving are identical; with at least two sets,
/// a miss's next-line instruction install lands in a different set than
/// the missing line (consecutive line numbers differ in their low set
/// bits), so running it after the run's bulk repeats cannot perturb any
/// within-set recency order — the same argument the stamp path makes.
fn lru_replay_point(sets: usize, assoc: usize, streams: &SweepStreams) -> (CacheStats, CacheStats) {
    let mut l1i = ReplayLru::new(sets, assoc);
    l1i.replay_ifetch(&streams.ifetch, &streams.irepeat);
    let mut l1d = ReplayLru::new(sets, assoc);
    l1d.replay_data(&streams.daddr, &streams.dkind, &streams.drepeat);
    (l1i.stats(), l1d.stats())
}

fn cache_replay_point(
    family: &SweepFamily,
    kib: u64,
    streams: &SweepStreams,
) -> (CacheStats, CacheStats) {
    let mut l1i = Cache::new(family.l1_config(kib));
    // On the instruction side a miss injects a next-line install *between*
    // the first access of a run and its repeats. Under LRU that is
    // irrelevant (the victim is never the just-accessed MRU line, and
    // reordering only permutes clock values across different lines, never
    // the recency order within a set), so the bulk path is exact. Under
    // Random replacement the install could evict the run's own line, so
    // runs are replayed access by access, exactly as the machine would.
    let expand_iruns = family.replacement == Replacement::Random;
    for (&pc, &n) in streams.ifetch.iter().zip(&streams.irepeat) {
        if expand_iruns {
            for _ in 0..n {
                if !l1i.access(pc, false) {
                    // Machine::fetch's next-line instruction prefetch.
                    l1i.install(pc + 64);
                }
            }
        } else if !l1i.access_run(pc, false, u64::from(n)) {
            l1i.install(pc + 64);
        }
    }
    let mut l1d = Cache::new(family.l1_config(kib));
    // Data-side runs carry no interleaved events at all (an install in
    // between would have ended the run at extraction), so the bulk path
    // is exact for every replacement policy.
    for ((&addr, &kind), &n) in streams
        .daddr
        .iter()
        .zip(&streams.dkind)
        .zip(&streams.drepeat)
    {
        match kind {
            D_INSTALL => l1d.install(addr),
            D_STORE => {
                l1d.access_run(addr, true, u64::from(n));
            }
            _ => {
                l1d.access_run(addr, false, u64::from(n));
            }
        }
    }
    (l1i.stats(), l1d.stats())
}

/// All sweep points for `capacities_kib`, routed per
/// [`SweepFamily::single_pass_sound`]: single-pass stack distance where
/// inclusion holds, exact per-capacity replay otherwise.
pub fn fused_points(
    family: &SweepFamily,
    capacities_kib: &[u64],
    streams: &SweepStreams,
) -> Vec<(f64, f64, f64)> {
    if family.single_pass_sound() {
        let cap_lines: Vec<u64> = capacities_kib.iter().map(|&kib| kib * 1024 / 64).collect();
        let data = stack_sweep_data(streams, &cap_lines);
        return cap_lines
            .iter()
            .zip(data)
            .map(|(&lines, d)| point_ratios(fa_lru_instruction_point(streams, lines), d))
            .collect();
    }
    capacities_kib
        .iter()
        .map(|&kib| fused_point(family, kib, streams))
        .collect()
}

/// [`fused_points`] with the per-capacity replays fanned out across
/// `threads` workers — *intra-workload* parallelism: once the streams
/// are extracted, every capacity point is an independent read-only
/// replay, so they fan out freely and the results are assembled in
/// `capacities_kib` index order. Output is byte-identical to the serial
/// [`fused_points`] at any width.
///
/// A single-pass-sound family stays serial regardless of `threads`: its
/// data side already computes every capacity in one stack-distance
/// traversal, so there are no independent per-capacity replays to fan
/// out (splitting them would *add* work).
pub fn fused_points_parallel(
    family: &SweepFamily,
    capacities_kib: &[u64],
    streams: &SweepStreams,
    threads: usize,
) -> Vec<(f64, f64, f64)> {
    if threads <= 1 || capacities_kib.len() <= 1 || family.single_pass_sound() {
        return fused_points(family, capacities_kib, streams);
    }
    match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
        Ok(pool) => pool.install(|| {
            capacities_kib
                .par_iter()
                .map(|&kib| fused_point(family, kib, streams))
                .collect()
        }),
        // Degradation is safe: serial replay produces the same bytes.
        Err(_) => fused_points(family, capacities_kib, streams),
    }
}

/// Olken's exact LRU stack: a last-touch map plus a Fenwick tree over
/// touch timestamps, answering "how many distinct lines since this line's
/// previous touch" in O(log N) — the same tree-counter technique as
/// `bdb_trace::reuse`, but windowless and time-indexed.
#[derive(Debug)]
struct LruStack {
    // bdb-lint: allow(determinism): keyed-lookup-only map, never iterated.
    last_touch: HashMap<u64, usize>,
    marked: Fenwick,
    time: usize,
}

impl LruStack {
    /// `touches` bounds the total number of [`LruStack::touch`] calls.
    fn with_capacity(touches: usize) -> Self {
        LruStack {
            // bdb-lint: allow(determinism): keyed-lookup-only map.
            last_touch: HashMap::new(),
            marked: Fenwick::new(touches),
            time: 0,
        }
    }

    /// Touches `line`; returns its stack depth before the touch —
    /// `Some(d)` means `d` distinct lines were touched since its previous
    /// touch (so it sits at LRU stack position `d`), `None` means cold.
    ///
    /// A warm touch is two merged Fenwick traversals (the bulk-advance:
    /// [`Fenwick::range`] for the depth, [`Fenwick::move_mark`] to slide
    /// the mark from `prev` to `now`) instead of the four root walks the
    /// naive prefix/add decomposition costs — and both stop early where
    /// their up/down chains meet, so the short reuse intervals that
    /// dominate real traces touch only a few tree nodes.
    fn touch(&mut self, line: u64) -> Option<u64> {
        let now = self.time;
        self.time += 1;
        match self.last_touch.insert(line, now) {
            Some(prev) => {
                // Marked positions are last-touch times of distinct
                // lines, so the marks strictly between prev and now
                // count exactly the distinct lines touched since.
                let d = self.marked.range(prev + 1, now);
                self.marked.move_mark(prev, now);
                Some(d)
            }
            None => {
                self.marked.add(now, 1);
                None
            }
        }
    }
}

/// Fenwick tree over touch timestamps (non-ring; sized to the trace).
#[derive(Debug)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (i64::from(self.tree[i]) + i64::from(delta)) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of marks at positions `< i` — the scalar walk the merged
    /// [`Fenwick::range`] is drift-tested against.
    #[cfg(test)]
    fn prefix(&self, mut i: usize) -> u64 {
        let mut sum = 0u64;
        i = i.min(self.tree.len() - 1);
        while i > 0 {
            sum += u64::from(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Sum of marks at positions in `[l, r)` — `prefix(r) - prefix(l)`
    /// as **one** merged traversal: the two downward chains are walked
    /// in lockstep and stop the moment they meet, where the remaining
    /// (identical) nodes would cancel. A short span — the temporally
    /// local reuse that dominates real traces — therefore costs a few
    /// nodes near the leaves instead of two full walks to the root.
    fn range(&self, mut l: usize, mut r: usize) -> u64 {
        let cap = self.tree.len() - 1;
        l = l.min(cap);
        r = r.min(cap);
        let mut sum = 0i64;
        while l != r {
            if r > l {
                sum += i64::from(self.tree[r]);
                r -= r & r.wrapping_neg();
            } else {
                sum -= i64::from(self.tree[l]);
                l -= l & l.wrapping_neg();
            }
        }
        sum as u64
    }

    /// Moves one mark from position `from` to position `to` — the
    /// `add(from, -1); add(to, +1)` pair as **one** merged traversal:
    /// the two upward chains advance in lockstep and stop the moment
    /// they meet, where every remaining node would receive both the -1
    /// and the +1. Together with [`Fenwick::range`] this is the
    /// stack-distance engine's bulk-advance: a warm touch costs two
    /// short merged walks instead of four root-length ones.
    fn move_mark(&mut self, from: usize, to: usize) {
        let len = self.tree.len();
        let mut i = from + 1;
        let mut j = to + 1;
        while i != j && (i < len || j < len) {
            if i < j {
                if i < len {
                    self.tree[i] -= 1;
                }
                i += i & i.wrapping_neg();
            } else {
                if j < len {
                    self.tree[j] += 1;
                }
                j += j & j.wrapping_neg();
            }
        }
    }
}

/// Single-pass multi-capacity data-side sweep for fully-associative LRU:
/// one traversal of the data stream yields the exact per-capacity stats.
///
/// An FA-LRU cache of C lines holds exactly the C most recently touched
/// distinct lines (touch = demand access or prefetch install, both of
/// which refresh recency in `Cache`), so a demand access hits iff its
/// stack depth `d < C` — one depth computation classifies every capacity.
fn stack_sweep_data(streams: &SweepStreams, cap_lines: &[u64]) -> Vec<CacheStats> {
    let mut stack = LruStack::with_capacity(streams.daddr.len());
    // bdb-lint: allow(hot-loop-allocation): one allocation per sweep, amortised over the whole replay
    let mut hits = vec![0u64; cap_lines.len()];
    let mut accesses = 0u64;
    for ((&addr, &kind), &n) in streams
        .daddr
        .iter()
        .zip(&streams.dkind)
        .zip(&streams.drepeat)
    {
        let depth = stack.touch(addr >> 6);
        if kind == D_INSTALL {
            // Installs refresh recency but are not demand accesses.
            continue;
        }
        accesses += u64::from(n);
        // A run's repeats sit at stack depth 0, hitting at every
        // capacity; collapsing them to one touch leaves the marked-line
        // count (and so every other depth) unchanged.
        let repeat_hits = u64::from(n) - 1;
        for (hit, &lines) in hits.iter_mut().zip(cap_lines) {
            *hit += repeat_hits + u64::from(matches!(depth, Some(d) if d < lines));
        }
    }
    cap_lines
        .iter()
        .zip(hits)
        .map(|(_, hit)| CacheStats {
            accesses,
            misses: accesses - hit,
            writebacks: 0,
        })
        .collect()
}

/// Per-capacity FA-LRU instruction-side pass. Still O(log N) per event
/// via the stack, but cannot be fused across capacities: the next-line
/// prefetch fires only on a miss, which depends on the capacity.
fn fa_lru_instruction_point(streams: &SweepStreams, cap_lines: u64) -> CacheStats {
    // Demand touches plus at most one install per demand miss.
    let mut stack = LruStack::with_capacity(streams.ifetch.len() * 2);
    let mut stats = CacheStats::default();
    for (&pc, &n) in streams.ifetch.iter().zip(&streams.irepeat) {
        // Only a run's first access can miss; its repeats sit at depth 0
        // (every capacity holds at least one line), and the miss install
        // touches the adjacent line, which can never push the run's own
        // just-touched line off the top of the stack.
        stats.accesses += u64::from(n);
        let hit = matches!(stack.touch(pc >> 6), Some(d) if d < cap_lines);
        if !hit {
            stats.misses += 1;
            stack.touch((pc + 64) >> 6);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::sweep::{sweep_per_point, sweep_replay};
    use bdb_trace::{CodeLayout, ExecCtx};

    /// A workload with enough irregularity to exercise the fetch filter,
    /// taken branches, the stream prefetcher, and both access kinds.
    fn mixed_workload(sink: &mut dyn TraceSink) {
        let mut layout = CodeLayout::new();
        let regions: Vec<_> = (0..24)
            .map(|i| layout.region(format!("f{i}"), 2048))
            .collect();
        let mut ctx = ExecCtx::new(&layout, sink);
        let heap = ctx.heap_alloc(96 * 1024, 64);
        let mut x = 0x9E37_79B9u64;
        ctx.frame(regions[0], |ctx| {
            for round in 0..12u64 {
                for &r in &regions {
                    ctx.frame(r, |ctx| {
                        for j in 0..96u64 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            match j % 5 {
                                // Sequential walk: trains the prefetcher.
                                0 => ctx.read(heap.addr((round * 96 + j) * 64 % heap.len()), 8),
                                // Scattered traffic: misses and new streams.
                                1 => ctx.read(heap.addr(x % (heap.len() - 8)), 8),
                                2 => ctx.write(heap.addr(x % (heap.len() - 8)), 8),
                                3 => ctx.cond_branch(x.is_multiple_of(3)),
                                _ => ctx.int_other(1),
                            }
                        }
                    });
                }
            }
        });
    }

    #[test]
    fn extractor_matches_machine_l1_traffic() {
        // The drift guard: the extractor's mirror of Machine's front end
        // must reproduce the machine's exact L1 demand traffic at every
        // capacity, or the fused sweep silently diverges.
        let buffer = TraceBuffer::capture(mixed_workload);
        let streams = SweepStreams::extract(&buffer);
        let family = SweepFamily::atom();
        for kib in [16, 64, 512] {
            let mut machine = Machine::new(family.machine_config(kib));
            buffer.replay_into(&mut machine);
            let report = machine.report();
            let (l1i, l1d) = cache_replay_point(&family, kib, &streams);
            assert_eq!(l1i, report.l1i, "L1I stats diverged at {kib} KiB");
            assert_eq!(l1d, report.l1d, "L1D stats diverged at {kib} KiB");
        }
    }

    #[test]
    fn run_length_compression_is_invisible() {
        // Sequential 8-byte reads touch each 64-byte line eight times in
        // a row — dense runs on both sides (the loop body stays in one
        // code line across taken branches). Replay through the bulk path
        // must still match the machine bit for bit.
        fn runs(sink: &mut dyn TraceSink) {
            let mut layout = CodeLayout::new();
            let f = layout.region("runs", 256);
            let mut ctx = ExecCtx::new(&layout, sink);
            let heap = ctx.heap_alloc(32 * 1024, 64);
            ctx.frame(f, |ctx| {
                for round in 0..4u64 {
                    for off in (0..24 * 1024u64).step_by(8) {
                        ctx.read(heap.addr(off), 8);
                        if off.is_multiple_of(1024) {
                            ctx.write(heap.addr(off), 8);
                            ctx.cond_branch(round % 2 == 0);
                        }
                    }
                }
            });
        }
        let buffer = TraceBuffer::capture(runs);
        let streams = SweepStreams::extract(&buffer);
        assert!(
            streams.data_len() > 2 * streams.daddr.len(),
            "expected dense data runs, got {} events in {} entries",
            streams.data_len(),
            streams.daddr.len()
        );
        let family = SweepFamily::atom();
        for kib in [16, 128] {
            let mut machine = Machine::new(family.machine_config(kib));
            buffer.replay_into(&mut machine);
            let report = machine.report();
            let (l1i, l1d) = cache_replay_point(&family, kib, &streams);
            assert_eq!(l1i, report.l1i, "L1I stats diverged at {kib} KiB");
            assert_eq!(l1d, report.l1d, "L1D stats diverged at {kib} KiB");
        }
    }

    #[test]
    fn order_list_replay_matches_stamp_replay() {
        // The ReplayLru fast path must reproduce the stamp-based Cache
        // replay's exact access and miss counts (writebacks are the one
        // counter it deliberately does not model) at every geometry the
        // sweep can ask for, dense runs included.
        let buffer = TraceBuffer::capture(mixed_workload);
        let streams = SweepStreams::extract(&buffer);
        let family = SweepFamily::atom();
        for kib in [16, 64, 512, 4096] {
            let (sets, assoc) = lru_fast_path(&family, kib).expect("atom sweep points are pow2");
            let (fast_i, fast_d) = lru_replay_point(sets, assoc, &streams);
            let (ref_i, ref_d) = cache_replay_point(&family, kib, &streams);
            assert_eq!(
                (fast_i.accesses, fast_i.misses),
                (ref_i.accesses, ref_i.misses),
                "L1I diverged at {kib} KiB"
            );
            assert_eq!(
                (fast_d.accesses, fast_d.misses),
                (ref_d.accesses, ref_d.misses),
                "L1D diverged at {kib} KiB"
            );
        }
        // Random replacement and fully-associative families must not take
        // the fast path (a random victim stream needs the RNG, and FA
        // recency arguments live in the stack engine instead).
        assert_eq!(
            lru_fast_path(
                &SweepFamily {
                    l1_assoc: Some(8),
                    replacement: Replacement::Random,
                },
                64
            ),
            None
        );
        assert_eq!(lru_fast_path(&SweepFamily::fully_associative(), 64), None);
    }

    #[test]
    fn record_matches_buffered_extract() {
        // The direct-from-workload extraction must produce the same
        // streams as recording a trace and extracting from it — the
        // engine's fused path relies on this equivalence.
        let buffer = TraceBuffer::capture(mixed_workload);
        let buffered = SweepStreams::extract(&buffer);
        let direct = SweepStreams::record(mixed_workload);
        assert_eq!(direct.ifetch, buffered.ifetch);
        assert_eq!(direct.irepeat, buffered.irepeat);
        assert_eq!(direct.daddr, buffered.daddr);
        assert_eq!(direct.dkind, buffered.dkind);
        assert_eq!(direct.drepeat, buffered.drepeat);
    }

    #[test]
    fn stack_depth_matches_brute_force() {
        let mut stack = LruStack::with_capacity(64);
        let mut recency: Vec<u64> = Vec::new();
        let mut x = 42u64;
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = x % 12;
            let expected = recency.iter().position(|&l| l == line).map(|p| p as u64);
            assert_eq!(stack.touch(line), expected, "depth of line {line}");
            if let Some(p) = expected {
                recency.remove(p as usize);
            }
            recency.insert(0, line);
        }
    }

    #[test]
    fn single_pass_matches_per_capacity_replay_for_fa_lru() {
        // Inclusion-property check: the one-pass stack engine must equal
        // the per-capacity Cache replay (which itself equals the machine)
        // on a fully-associative LRU family.
        let buffer = TraceBuffer::capture(mixed_workload);
        let streams = SweepStreams::extract(&buffer);
        let family = SweepFamily::fully_associative();
        let caps = [16u64, 32, 64];
        let single_pass = fused_points(&family, &caps, &streams);
        for (&kib, &point) in caps.iter().zip(&single_pass) {
            let per_capacity = fused_point(&family, kib, &streams);
            assert_eq!(point, per_capacity, "FA-LRU mismatch at {kib} KiB");
        }
    }

    #[test]
    fn fa_lru_fused_matches_per_point_machines() {
        // End to end: single-pass FA-LRU output equals full per-point
        // machine runs, byte for byte.
        let family = SweepFamily::fully_associative();
        let caps = [16u64, 32, 64];
        let fused = sweep_replay(&family, "fa", &caps, &TraceBuffer::capture(mixed_workload));
        let per_point = sweep_per_point(&family, "fa", &caps, mixed_workload);
        assert_eq!(fused, per_point);
    }

    #[test]
    fn random_replacement_family_uses_exact_replay() {
        // Random replacement breaks inclusion, so the router must fall
        // back to per-capacity replay — which stays byte-identical to the
        // per-point machines because the identical Cache code (same
        // xorshift evolution) runs over the identical event sequence.
        let family = SweepFamily {
            l1_assoc: Some(8),
            replacement: Replacement::Random,
        };
        assert!(!family.single_pass_sound());
        let caps = [16u64, 64];
        let fused = sweep_replay(&family, "rnd", &caps, &TraceBuffer::capture(mixed_workload));
        let per_point = sweep_per_point(&family, "rnd", &caps, mixed_workload);
        assert_eq!(fused, per_point);
    }

    #[test]
    fn record_into_arena_matches_fresh_record() {
        // The arena path (recycled stream vectors) must produce exactly
        // the streams a fresh record produces, and check-in must keep
        // the buffers' capacity for the next checkout.
        let fresh = SweepStreams::record(mixed_workload);
        let arena = StreamArena::new();
        let mut pooled = arena.checkout();
        pooled.record_into(mixed_workload);
        assert_eq!(pooled.ifetch, fresh.ifetch);
        assert_eq!(pooled.irepeat, fresh.irepeat);
        assert_eq!(pooled.daddr, fresh.daddr);
        assert_eq!(pooled.dkind, fresh.dkind);
        assert_eq!(pooled.drepeat, fresh.drepeat);
        assert_eq!(pooled.event_count(), fresh.event_count());
        let daddr_capacity = pooled.daddr.capacity();
        assert!(daddr_capacity >= fresh.daddr.len());
        arena.checkin(pooled);
        let recycled = arena.checkout();
        assert_eq!(recycled.compressed_entries(), 0, "check-in clears");
        assert_eq!(recycled.event_count(), 0);
        assert!(
            recycled.daddr.capacity() >= daddr_capacity,
            "check-in must keep the grown buffers"
        );
        // A second record into the recycled buffer is still identical.
        let mut recycled = recycled;
        recycled.record_into(mixed_workload);
        assert_eq!(recycled.daddr, fresh.daddr);
        assert_eq!(recycled.irepeat, fresh.irepeat);
    }

    #[test]
    fn event_counts_match_repeat_sums() {
        // The O(1) counters must agree with the repeat-vector sums they
        // replaced.
        let streams = SweepStreams::record(mixed_workload);
        assert_eq!(
            streams.ifetch_len(),
            streams.irepeat.iter().map(|&n| n as usize).sum::<usize>()
        );
        assert_eq!(
            streams.data_len(),
            streams.drepeat.iter().map(|&n| n as usize).sum::<usize>()
        );
        assert_eq!(
            streams.event_count(),
            (streams.ifetch_len() + streams.data_len()) as u64
        );
    }

    #[test]
    fn point_parallel_replay_is_byte_identical_to_serial() {
        let streams = SweepStreams::record(mixed_workload);
        let caps = [16u64, 32, 64, 128, 256, 512, 1024];
        for family in [SweepFamily::atom(), SweepFamily::fully_associative()] {
            let serial = fused_points(&family, &caps, &streams);
            for threads in [1usize, 2, 4, 7] {
                let parallel = fused_points_parallel(&family, &caps, &streams, threads);
                for ((kib, s), p) in caps.iter().zip(&serial).zip(&parallel) {
                    assert_eq!(
                        (s.0.to_bits(), s.1.to_bits(), s.2.to_bits()),
                        (p.0.to_bits(), p.1.to_bits(), p.2.to_bits()),
                        "ratio bits differ at {kib} KiB with {threads} threads"
                    );
                }
            }
        }
    }

    /// Replays one op stream through a [`ReplayLru`] (optionally split
    /// at the given boundaries) and through two oracles: the stamp-LRU
    /// [`Cache`] using the same bulk calls, and a second stamp cache
    /// replaying every run access by access (scalar expansion).
    fn replay_three_ways(
        sets: usize,
        assoc: usize,
        ops: &[(u64, u8, u32)],
        splits: &[usize],
    ) -> [(u64, u64); 3] {
        let config = CacheConfig {
            size_bytes: (sets * assoc * 64) as u64,
            assoc,
            line_bytes: 64,
            replacement: Replacement::Lru,
        };
        let addrs: Vec<u64> = ops.iter().map(|&(line, _, _)| line << 6).collect();
        let kinds: Vec<u8> = ops.iter().map(|&(_, kind, _)| kind).collect();
        let repeats: Vec<u32> = ops.iter().map(|&(_, _, n)| n).collect();
        let mut fast = ReplayLru::new(sets, assoc);
        let mut start = 0usize;
        for &end in splits.iter().chain([ops.len()].iter()) {
            let end = end.clamp(start, ops.len());
            fast.replay_data(&addrs[start..end], &kinds[start..end], &repeats[start..end]);
            start = end;
        }
        let mut bulk = Cache::new(config);
        let mut scalar = Cache::new(config);
        for &(line, kind, n) in ops {
            let addr = line << 6;
            if kind == D_INSTALL {
                bulk.install(addr);
                scalar.install(addr);
            } else {
                let is_store = kind == D_STORE;
                bulk.access_run(addr, is_store, u64::from(n));
                for _ in 0..n {
                    scalar.access(addr, is_store);
                }
            }
        }
        let fast = fast.stats();
        let bulk = bulk.stats();
        let scalar = scalar.stats();
        [
            (fast.accesses, fast.misses),
            (bulk.accesses, bulk.misses),
            (scalar.accesses, scalar.misses),
        ]
    }

    mod batch_props {
        use super::*;
        use proptest::prelude::*;

        /// One RLE data-stream entry over a small line universe: the
        /// low line numbers collide heavily within sets, exercising
        /// every probe depth including the eviction tail.
        fn data_op() -> impl Strategy<Value = (u64, u8, u32)> {
            (
                0u64..96,
                prop_oneof![Just(D_LOAD), Just(D_STORE), Just(D_INSTALL)],
                1u32..20,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Batched `ReplayLru::replay_data` (over arbitrary chunk
            /// boundaries) vs the stamp-LRU [`Cache`] bulk path vs the
            /// access-by-access scalar expansion: all three agree on
            /// accesses and misses at every geometry, including non-8
            /// associativities that route through `probe_scan` and the
            /// 8-way geometry that routes through `probe8`.
            #[test]
            fn batched_data_replay_matches_stamp_and_scalar(
                set_bits in 0u32..6,
                assoc in 1usize..=12,
                ops in proptest::collection::vec(data_op(), 1..200),
                raw_splits in proptest::collection::vec(0usize..200, 0..4),
            ) {
                let sets = 1usize << set_bits;
                let mut splits = raw_splits;
                splits.sort_unstable();
                let [fast, bulk, scalar] = replay_three_ways(sets, assoc, &ops, &splits);
                prop_assert_eq!(fast, bulk, "order-list vs stamp bulk");
                prop_assert_eq!(fast, scalar, "order-list vs scalar expansion");
            }

            /// Batched `ReplayLru::replay_ifetch` vs the machine-order
            /// scalar expansion (access, then next-line install *between*
            /// the first access and the repeats, exactly as
            /// `Machine::fetch` would emit it). With at least two sets
            /// the install lands in a different set, so the batched
            /// run-at-once order is exact — the same argument
            /// `cache_replay_point` makes.
            #[test]
            fn batched_ifetch_replay_matches_machine_order(
                set_bits in 1u32..6,
                assoc in 1usize..=12,
                entries in proptest::collection::vec((0u64..96, 1u32..20), 1..200),
            ) {
                let sets = 1usize << set_bits;
                let pcs: Vec<u64> = entries.iter().map(|&(line, _)| line << 6).collect();
                let repeats: Vec<u32> = entries.iter().map(|&(_, n)| n).collect();
                let mut fast = ReplayLru::new(sets, assoc);
                fast.replay_ifetch(&pcs, &repeats);
                let mut oracle = Cache::new(CacheConfig {
                    size_bytes: (sets * assoc * 64) as u64,
                    assoc,
                    line_bytes: 64,
                    replacement: Replacement::Lru,
                });
                for (&pc, &n) in pcs.iter().zip(&repeats) {
                    for _ in 0..n {
                        if !oracle.access(pc, false) {
                            oracle.install(pc + 64);
                        }
                    }
                }
                let fast = fast.stats();
                let oracle = oracle.stats();
                prop_assert_eq!(fast.accesses, oracle.accesses);
                prop_assert_eq!(fast.misses, oracle.misses);
            }

            /// The merged Fenwick traversals (`range`, `move_mark`) vs
            /// the scalar `prefix`/`add` decomposition they replace: a
            /// random mark layout, random span queries, and random mark
            /// moves applied to a twin tree must agree node for node.
            #[test]
            fn fenwick_merged_walks_match_scalar_decomposition(
                n in 1usize..160,
                seeds in proptest::collection::vec((0usize..160, 0usize..160), 1..60),
            ) {
                let mut merged = Fenwick::new(n);
                let mut oracle = Fenwick::new(n);
                // Place an initial mark so moves always have a source.
                let mut marks = vec![0usize % n];
                merged.add(marks[0], 1);
                oracle.add(marks[0], 1);
                for &(a, b) in &seeds {
                    let (a, b) = (a % n, b % n);
                    let (l, r) = if a <= b { (a, b) } else { (b, a) };
                    // Span query: merged downward walk vs two prefix walks.
                    prop_assert_eq!(
                        merged.range(l, r),
                        oracle.prefix(r) - oracle.prefix(l),
                        "range({}, {})", l, r
                    );
                    // Mark move: merged upward walk vs -1/+1 root walks
                    // (LruStack only ever moves marks forward in time).
                    let from = marks[a % marks.len()];
                    if b > from && !marks.contains(&b) {
                        merged.move_mark(from, b);
                        oracle.add(from, -1);
                        oracle.add(b, 1);
                        let i = marks.iter().position(|&m| m == from).unwrap();
                        marks[i] = b;
                    } else if !marks.contains(&(a.min(n - 1))) {
                        merged.add(a, 1);
                        oracle.add(a, 1);
                        marks.push(a);
                    }
                    prop_assert_eq!(&merged.tree, &oracle.tree);
                }
            }

            /// The batched sweep point end to end: random RLE streams
            /// replayed through `lru_replay_point` (order lists, probe8)
            /// vs `cache_replay_point` (stamp LRU) at a non-pow2-sets
            /// geometry note — the pow2 check routes non-pow2 sets to
            /// the stamp path in production, so here we pin the pow2
            /// geometries the fast path actually owns.
            #[test]
            fn lru_replay_point_matches_cache_replay_point_random_streams(
                entries in proptest::collection::vec((0u64..96, 1u32..12), 1..120),
                data in proptest::collection::vec(data_op(), 1..120),
            ) {
                let mut streams = SweepStreams::default();
                for &(line, n) in &entries {
                    for _ in 0..n {
                        streams.push_ifetch(line << 6);
                    }
                }
                for &(line, kind, n) in &data {
                    for _ in 0..n {
                        streams.push_data(line << 6, kind);
                    }
                }
                let family = SweepFamily::atom();
                for kib in [4u64, 16, 64] {
                    let config = family.l1_config(kib);
                    let sets = config.sets();
                    if !sets.is_power_of_two() || sets < 2 {
                        continue;
                    }
                    let (fast_i, fast_d) = lru_replay_point(sets, config.assoc, &streams);
                    let (ref_i, ref_d) = cache_replay_point(&family, kib, &streams);
                    prop_assert_eq!(
                        (fast_i.accesses, fast_i.misses, fast_d.accesses, fast_d.misses),
                        (ref_i.accesses, ref_i.misses, ref_d.accesses, ref_d.misses)
                    );
                }
            }
        }
    }

    #[test]
    fn stream_detector_initial_state_matches_machine() {
        // Machine's stream slots default to line 0, so the very first
        // touch of line 0 is swallowed and lines 1/2 look like stride hits.
        // The mirror must reproduce that quirk.
        let mut d = StreamDetector::new();
        assert!(!d.note(0));
        assert!(!d.note(1)); // confidence 1
        assert!(d.note(2)); // confidence 2: fill fires
    }
}
