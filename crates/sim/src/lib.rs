//! Trace-driven micro-architecture simulator — the reproduction's stand-in
//! for both hardware performance counters (`perf` on the Xeon E5645) and
//! the MARSSx86 cycle simulator used in the paper's locality study.
//!
//! A [`Machine`] consumes the micro-op stream produced by
//! `bdb_trace::ExecCtx` and measures everything the paper reports:
//!
//! * instruction mix (Figures 1–2) — counted directly from the stream,
//! * IPC (Figure 3) — from the analytic [`pipeline`] model,
//! * L1I/L2/L3 MPKI (Figure 4) — from the set-associative [`cache`] model,
//! * ITLB/DTLB MPKI (Figure 5) — from the [`tlb`] model,
//! * branch misprediction ratios (Table 4) — from the [`branch`] unit,
//! * miss-ratio-versus-capacity curves (Figures 6–9) — from the [`mod@sweep`]
//!   harness.
//!
//! # Examples
//!
//! ```
//! use bdb_sim::{Machine, MachineConfig};
//! use bdb_trace::{CodeLayout, ExecCtx};
//!
//! let mut layout = CodeLayout::new();
//! let kernel = layout.region("kernel", 8192);
//! let mut machine = Machine::new(MachineConfig::xeon_e5645());
//! let mut ctx = ExecCtx::new(&layout, &mut machine);
//! let data = ctx.heap_alloc(8 * 1024, 64);
//! ctx.frame(kernel, |ctx| {
//!     let top = ctx.loop_start();
//!     for i in 0..16_000u64 {
//!         ctx.read(data.addr(i * 64 % data.len()), 8);
//!         ctx.int_other(2);
//!         ctx.loop_back(top, i < 15_999);
//!     }
//! });
//! drop(ctx);
//! let report = machine.report();
//! assert!(report.ipc() > 0.5);
//! println!("IPC {:.2}, L1I MPKI {:.1}", report.ipc(), report.l1i_mpki());
//! ```

pub mod branch;
pub mod cache;
pub mod fused;
pub mod machine;
pub mod pipeline;
pub mod sweep;
pub mod tlb;

pub use branch::{BranchStats, BranchUnit, DirectionScheme};
pub use cache::{Cache, CacheConfig, CacheStats, Replacement};
pub use fused::{
    fused_point, fused_points, fused_points_parallel, StreamArena, SweepFamily, SweepStreams,
};
pub use machine::{Machine, MachineConfig, PerfReport};
pub use pipeline::{Pipeline, PipelineConfig, PipelineKind, ServiceLevel};
pub use sweep::{
    assemble_sweep, sweep, sweep_on, sweep_per_point, sweep_point, sweep_point_on,
    sweep_point_replay, sweep_replay, MissRatioCurve, SweepMetric, SweepResult, PAPER_SWEEP_KIB,
};
pub use tlb::{Tlb, TlbConfig};
