//! The full simulated machine: cache hierarchy + TLBs + branch unit +
//! pipeline, consuming a micro-op trace as a [`TraceSink`].
//!
//! This is the reproduction's stand-in for both `perf` on the Xeon E5645
//! (the [`MachineConfig::xeon_e5645`] preset) and the MARSSx86 simulator
//! used for the locality study (the [`MachineConfig::atom_sweep`] preset).

use crate::branch::{BranchStats, BranchUnit, DirectionScheme};
use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::pipeline::{Pipeline, PipelineConfig, ServiceLevel};
use crate::tlb::{Tlb, TlbConfig};
use bdb_trace::{InstructionMix, MicroOp, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};

/// Complete configuration of a simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable platform name (appears in reports).
    pub name: String,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Unified L3, if present.
    pub l3: Option<CacheConfig>,
    /// First-level instruction TLB.
    pub itlb: TlbConfig,
    /// First-level data TLB.
    pub dtlb: TlbConfig,
    /// Shared second-level TLB.
    pub stlb: TlbConfig,
    /// Branch unit flavour.
    pub predictor: DirectionScheme,
    /// Pipeline parameters.
    pub pipeline: PipelineConfig,
}

impl MachineConfig {
    /// The paper's measurement platform: Intel Xeon E5645 (Table 3) —
    /// 32 KB L1I/L1D, 256 KB L2, 12 MB L3, hybrid predictor with 8192-entry
    /// BTB, out-of-order pipeline.
    pub fn xeon_e5645() -> Self {
        Self {
            name: "Intel Xeon E5645".to_owned(),
            l1i: CacheConfig::lru(32 * 1024, 4, 64),
            l1d: CacheConfig::lru(32 * 1024, 8, 64),
            l2: CacheConfig::lru(256 * 1024, 8, 64),
            l3: Some(CacheConfig::lru(12 * 1024 * 1024, 16, 64)),
            itlb: TlbConfig::small_pages(128),
            dtlb: TlbConfig::small_pages(64),
            stlb: TlbConfig::small_pages(512),
            predictor: DirectionScheme::Hybrid,
            pipeline: PipelineConfig::xeon_ooo(),
        }
    }

    /// A modern-for-2015 brawny core in the paper's discussion (the "Dual
    /// Xeon E5 2697" it cites for peak GFLOPS): wider issue, larger BTB
    /// coverage via the same hybrid unit, bigger L2/L3, faster memory.
    /// Used by the `modern_core_projection` experiment to ask how much of
    /// the big data stall problem a newer core buys back.
    pub fn xeon_e5_2697() -> Self {
        Self {
            name: "Intel Xeon E5-2697-class".to_owned(),
            l1i: CacheConfig::lru(32 * 1024, 8, 64),
            l1d: CacheConfig::lru(32 * 1024, 8, 64),
            l2: CacheConfig::lru(256 * 1024, 8, 64),
            l3: Some(CacheConfig::lru(30 * 1024 * 1024, 20, 64)),
            itlb: TlbConfig::small_pages(128),
            dtlb: TlbConfig::small_pages(64),
            stlb: TlbConfig::small_pages(1024),
            predictor: DirectionScheme::Hybrid,
            pipeline: PipelineConfig {
                base_cpi: 0.35,
                l2_latency: 12,
                l3_latency: 34,
                mem_latency: 150,
                ..PipelineConfig::xeon_ooo()
            },
        }
    }

    /// The paper's low-power comparison point: Intel Atom D510 — in-order,
    /// two-level predictor, 128-entry BTB, no L3 (Table 4).
    pub fn atom_d510() -> Self {
        Self {
            name: "Intel Atom D510".to_owned(),
            l1i: CacheConfig::lru(32 * 1024, 8, 64),
            l1d: CacheConfig::lru(24 * 1024, 6, 64),
            l2: CacheConfig::lru(512 * 1024, 8, 64),
            l3: None,
            itlb: TlbConfig::small_pages(64),
            dtlb: TlbConfig::small_pages(64),
            stlb: TlbConfig::small_pages(256),
            predictor: DirectionScheme::TwoLevel,
            pipeline: PipelineConfig::atom_inorder(),
        }
    }

    /// The locality-study simulator (paper §5.4): Atom-like in-order single
    /// core with two cache levels, 8-way L1 caches of `l1_kib` KiB each and
    /// a large shared L2 — swept from 16 KiB to 8192 KiB to trace the
    /// miss-ratio-versus-capacity curves of Figures 6–9.
    ///
    /// # Panics
    ///
    /// Panics if `l1_kib` does not produce a power-of-two set count.
    pub fn atom_sweep(l1_kib: u64) -> Self {
        Self {
            name: format!("MARSS-like in-order, L1 {l1_kib} KiB"),
            l1i: CacheConfig::lru(l1_kib * 1024, 8, 64),
            l1d: CacheConfig::lru(l1_kib * 1024, 8, 64),
            l2: CacheConfig::lru(16 * 1024 * 1024, 8, 64),
            l3: None,
            itlb: TlbConfig::small_pages(64),
            dtlb: TlbConfig::small_pages(64),
            stlb: TlbConfig::small_pages(256),
            predictor: DirectionScheme::TwoLevel,
            pipeline: PipelineConfig::atom_inorder(),
        }
    }
}

/// Everything the simulated machine measured for one workload run — the
/// reproduction's equivalent of one `perf stat` invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Platform name.
    pub platform: String,
    /// Retired-instruction mix.
    pub mix: InstructionMix,
    /// Total retired micro-ops.
    pub instructions: u64,
    /// Total simulated cycles.
    pub cycles: f64,
    /// Raw cache statistics (L1I, L1D, L2, L3).
    pub l1i: CacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// Unified L3 statistics (zeroed when the machine has no L3).
    pub l3: CacheStats,
    /// First-level ITLB misses.
    pub itlb_misses: u64,
    /// First-level DTLB misses.
    pub dtlb_misses: u64,
    /// Instruction-side page walks (ITLB and STLB both missed) — what
    /// `perf`'s iTLB-miss counter reports.
    pub itlb_walks: u64,
    /// Data-side page walks.
    pub dtlb_walks: u64,
    /// Second-level TLB misses (total page walks).
    pub stlb_misses: u64,
    /// Branch statistics.
    pub branch: BranchStats,
    /// Cycles stalled on instruction fetch.
    pub fetch_stall_cycles: f64,
    /// Cycles stalled on data access.
    pub data_stall_cycles: f64,
    /// Cycles lost to branch flushes.
    pub branch_stall_cycles: f64,
    /// Cycles lost to TLB walks.
    pub tlb_stall_cycles: f64,
    /// Off-core requests (accesses that left the private L2).
    pub offcore_requests: u64,
    /// Snoop responses (modelled as dirty writebacks reaching the shared level).
    pub snoop_responses: u64,
}

impl PerfReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }

    fn mpki(&self, misses: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// L1 instruction-cache misses per kilo-instruction (Figure 4).
    pub fn l1i_mpki(&self) -> f64 {
        self.mpki(self.l1i.misses)
    }

    /// L1 data-cache misses per kilo-instruction.
    pub fn l1d_mpki(&self) -> f64 {
        self.mpki(self.l1d.misses)
    }

    /// L2 misses per kilo-instruction (Figure 4).
    pub fn l2_mpki(&self) -> f64 {
        self.mpki(self.l2.misses)
    }

    /// L3 misses per kilo-instruction (Figure 4).
    pub fn l3_mpki(&self) -> f64 {
        self.mpki(self.l3.misses)
    }

    /// ITLB misses per kilo-instruction (Figure 5). Counts page walks,
    /// matching the hardware iTLB-miss event the paper's `perf` runs read.
    pub fn itlb_mpki(&self) -> f64 {
        self.mpki(self.itlb_walks)
    }

    /// DTLB misses per kilo-instruction (Figure 5). Counts page walks.
    pub fn dtlb_mpki(&self) -> f64 {
        self.mpki(self.dtlb_walks)
    }

    /// Branch misses per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        self.mpki(self.branch.mispredicts)
    }

    /// Off-core requests per kilo-instruction.
    pub fn offcore_rpki(&self) -> f64 {
        self.mpki(self.offcore_requests)
    }

    /// Snoop responses per kilo-instruction.
    pub fn snoop_rpki(&self) -> f64 {
        self.mpki(self.snoop_responses)
    }

    /// Fraction of cycles lost to front-end stalls.
    pub fn frontend_stall_fraction(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.fetch_stall_cycles / self.cycles
        }
    }
}

/// The simulated machine. Implements [`TraceSink`]: feed it a workload's
/// micro-op stream and read off a [`PerfReport`].
///
/// # Examples
///
/// ```
/// use bdb_sim::machine::{Machine, MachineConfig};
/// use bdb_trace::{CodeLayout, ExecCtx};
///
/// let mut layout = CodeLayout::new();
/// let main = layout.region("main", 4096);
/// let mut machine = Machine::new(MachineConfig::xeon_e5645());
/// let mut ctx = ExecCtx::new(&layout, &mut machine);
/// let buf = ctx.heap_alloc(4096, 8);
/// ctx.frame(main, |ctx| {
///     for i in 0..512u64 {
///         ctx.read(buf.addr(i * 8 % 4096), 8);
///     }
/// });
/// drop(ctx);
/// let report = machine.report();
/// assert!(report.ipc() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
struct Stream {
    last_line: u64,
    confidence: u8,
}

/// The simulated machine. Implements [`TraceSink`]: feed it a workload's
/// micro-op stream and read off a [`PerfReport`] — the reproduction's
/// equivalent of running under `perf stat`.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Option<Cache>,
    itlb: Tlb,
    dtlb: Tlb,
    stlb: Tlb,
    branch: BranchUnit,
    pipe: Pipeline,
    mix: InstructionMix,
    instructions: u64,
    last_fetch_line: u64,
    last_itlb_page: u64,
    itlb_walks: u64,
    dtlb_walks: u64,
    streams: [Stream; 8],
    stream_clock: usize,
}

impl Machine {
    /// Builds a machine from a configuration.
    pub fn new(config: MachineConfig) -> Self {
        let branch = match config.predictor {
            DirectionScheme::TwoLevel => BranchUnit::d510(),
            DirectionScheme::Hybrid => BranchUnit::e5645(),
        };
        Self {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            l3: config.l3.map(Cache::new),
            itlb: Tlb::new(config.itlb),
            dtlb: Tlb::new(config.dtlb),
            stlb: Tlb::new(config.stlb),
            branch,
            pipe: Pipeline::new(config.pipeline),
            mix: InstructionMix::default(),
            instructions: 0,
            last_fetch_line: u64::MAX,
            last_itlb_page: u64::MAX,
            itlb_walks: 0,
            dtlb_walks: 0,
            streams: [Stream::default(); 8],
            stream_clock: 0,
            config,
        }
    }

    /// Fills `addr`'s line into the hierarchy without demand counting (the
    /// prefetch path).
    fn prefetch_fill(&mut self, addr: u64) {
        self.l1d.install(addr);
        self.l2.install(addr);
        if let Some(l3) = &mut self.l3 {
            l3.install(addr);
        }
    }

    /// Stride-1 stream detector (the hardware prefetcher of the paper's
    /// platforms): sequential data streams are recognized after two
    /// consecutive lines and then stay two lines ahead, which both hides
    /// their latency and removes their demand misses — exactly why the
    /// streaming HPC suites keep low MPKI and high IPC on real machines.
    fn note_data_line(&mut self, line: u64) {
        for s in &mut self.streams {
            if line == s.last_line {
                return;
            }
            if line > s.last_line && line - s.last_line <= 2 {
                s.last_line = line;
                s.confidence = (s.confidence + 1).min(3);
                if s.confidence >= 2 {
                    self.prefetch_fill((line + 1) << 6);
                    self.prefetch_fill((line + 2) << 6);
                    self.prefetch_fill((line + 3) << 6);
                }
                return;
            }
        }
        // Allocate a new stream slot round-robin.
        self.stream_clock = (self.stream_clock + 1) % self.streams.len();
        self.streams[self.stream_clock] = Stream {
            last_line: line,
            confidence: 0,
        };
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Walks the unified levels for a line that missed L1.
    fn walk_unified(&mut self, addr: u64, is_store: bool) -> ServiceLevel {
        if self.l2.access(addr, is_store) {
            return ServiceLevel::L2;
        }
        match &mut self.l3 {
            Some(l3) => {
                if l3.access(addr, is_store) {
                    ServiceLevel::L3
                } else {
                    ServiceLevel::Memory
                }
            }
            None => ServiceLevel::Memory,
        }
    }

    fn fetch(&mut self, pc: u64) {
        let line = pc >> 6;
        if line == self.last_fetch_line {
            return;
        }
        self.last_fetch_line = line;
        let page = self.itlb.page_of(pc);
        if page != self.last_itlb_page {
            self.last_itlb_page = page;
            if !self.itlb.access(pc) {
                let walked = !self.stlb.access(pc);
                if walked {
                    self.itlb_walks += 1;
                }
                self.pipe.tlb_stall(walked);
            }
        }
        if !self.l1i.access(pc, false) {
            let level = self.walk_unified(pc, false);
            self.pipe.fetch_stall(level);
            // Next-line instruction prefetch: straight-line code rarely
            // misses twice in a row.
            self.l1i.install(pc + 64);
            self.l2.install(pc + 64);
        }
    }

    fn data_access(&mut self, addr: u64, is_store: bool) {
        if !self.dtlb.access(addr) {
            let walked = !self.stlb.access(addr);
            if walked {
                self.dtlb_walks += 1;
            }
            self.pipe.tlb_stall(walked);
        }
        self.note_data_line(addr >> 6);
        if self.l1d.access(addr, is_store) {
            self.pipe.data_stall(ServiceLevel::L1, is_store);
        } else {
            let level = self.walk_unified(addr, is_store);
            self.pipe.data_stall(level, is_store);
        }
    }

    /// Produces the measurement report.
    pub fn report(&self) -> PerfReport {
        PerfReport {
            platform: self.config.name.clone(),
            mix: self.mix,
            instructions: self.instructions,
            cycles: self.pipe.cycles(),
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            l3: self.l3.as_ref().map(|c| c.stats()).unwrap_or_default(),
            itlb_misses: self.itlb.misses(),
            dtlb_misses: self.dtlb.misses(),
            itlb_walks: self.itlb_walks,
            dtlb_walks: self.dtlb_walks,
            stlb_misses: self.itlb_walks + self.dtlb_walks,
            branch: self.branch.stats(),
            fetch_stall_cycles: self.pipe.fetch_stall_cycles(),
            data_stall_cycles: self.pipe.data_stall_cycles(),
            branch_stall_cycles: self.pipe.branch_stall_cycles(),
            tlb_stall_cycles: self.pipe.tlb_stall_cycles(),
            offcore_requests: self.l2.stats().misses + self.l2.stats().writebacks,
            snoop_responses: self.l1d.stats().writebacks,
        }
    }
}

impl TraceSink for Machine {
    fn exec(&mut self, pc: u64, op: MicroOp) {
        self.instructions += 1;
        self.mix.record(&op);
        self.pipe.issue_class(&op);
        self.fetch(pc);
        match op {
            MicroOp::Load { addr, .. } => self.data_access(addr, false),
            MicroOp::Store { addr, .. } => self.data_access(addr, true),
            MicroOp::Branch {
                taken,
                target,
                kind,
            } => {
                let mispredicted = self.branch.observe(pc, taken, target, kind);
                if mispredicted {
                    self.pipe.branch_penalty(self.branch.mispredict_penalty());
                }
                if taken {
                    // Redirect: the next fetch starts at a new line.
                    self.last_fetch_line = u64::MAX;
                }
            }
            MicroOp::Int { .. } | MicroOp::Fp => {}
        }
    }

    /// Batched delivery for trace replay: one virtual call per chunk, with
    /// the per-op loop fully monomorphic over `Machine::exec`.
    fn exec_batch(&mut self, batch: &[TraceEvent]) {
        for event in batch {
            self.exec(event.pc, event.op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_trace::{CodeLayout, ExecCtx};

    fn run_kernel(config: MachineConfig, code_kib: u64, data_kib: u64, iters: u64) -> PerfReport {
        let mut layout = CodeLayout::new();
        // Spread the code over many 4 KiB routines to control I-footprint.
        let regions: Vec<_> = (0..code_kib.div_ceil(4))
            .map(|i| layout.region(format!("r{i}"), 4096))
            .collect();
        let mut machine = Machine::new(config);
        let mut ctx = ExecCtx::new(&layout, &mut machine);
        let data = ctx.heap_alloc(data_kib * 1024, 64);
        let root = regions[0];
        ctx.frame(root, |ctx| {
            for i in 0..iters {
                let r = regions[(i % regions.len() as u64) as usize];
                ctx.frame(r, |ctx| {
                    for j in 0..64u64 {
                        // Hashed (non-sequential) accesses so the stream
                        // prefetcher cannot hide the data footprint.
                        let mut x = i * 64 + j;
                        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        let off = (x % (data.len() / 64)) * 64;
                        ctx.read(data.addr(off), 8);
                        ctx.int_other(2);
                        ctx.cond_branch(j % 8 != 0);
                    }
                });
            }
        });
        machine.report()
    }

    #[test]
    fn small_footprint_has_low_l1i_mpki() {
        let r = run_kernel(MachineConfig::xeon_e5645(), 8, 16, 400);
        assert!(r.l1i_mpki() < 1.0, "l1i mpki {}", r.l1i_mpki());
    }

    #[test]
    fn large_code_footprint_raises_l1i_mpki() {
        let small = run_kernel(MachineConfig::xeon_e5645(), 8, 16, 400);
        let large = run_kernel(MachineConfig::xeon_e5645(), 1024, 16, 400);
        assert!(
            large.l1i_mpki() > 10.0 * small.l1i_mpki().max(0.01),
            "small {} large {}",
            small.l1i_mpki(),
            large.l1i_mpki()
        );
    }

    #[test]
    fn large_data_footprint_raises_l2_misses() {
        let small = run_kernel(MachineConfig::xeon_e5645(), 8, 64, 400);
        let large = run_kernel(MachineConfig::xeon_e5645(), 8, 8 * 1024, 400);
        assert!(large.l2.misses > small.l2.misses);
    }

    #[test]
    fn ipc_degrades_with_code_footprint() {
        let small = run_kernel(MachineConfig::xeon_e5645(), 8, 16, 400);
        let large = run_kernel(MachineConfig::xeon_e5645(), 2048, 16, 400);
        assert!(
            small.ipc() > large.ipc(),
            "small {} large {}",
            small.ipc(),
            large.ipc()
        );
    }

    #[test]
    fn report_totals_are_consistent() {
        let r = run_kernel(MachineConfig::xeon_e5645(), 16, 32, 100);
        assert_eq!(r.instructions, r.mix.total());
        assert!(r.cycles > 0.0);
        assert!(r.l1i.accesses > 0);
        assert!(r.l1d.accesses > 0);
        assert!(r.branch.branches > 0);
        // Off-core requests can't exceed L2 traffic.
        assert!(r.offcore_requests <= r.l2.accesses + r.l2.writebacks);
    }

    #[test]
    fn atom_sweep_larger_l1_lowers_miss_ratio() {
        let small = run_kernel(MachineConfig::atom_sweep(16), 256, 16, 300);
        let large = run_kernel(MachineConfig::atom_sweep(512), 256, 16, 300);
        assert!(large.l1i.miss_ratio() < small.l1i.miss_ratio());
    }

    #[test]
    fn presets_have_expected_shapes() {
        let xeon = MachineConfig::xeon_e5645();
        assert!(xeon.l3.is_some());
        assert_eq!(xeon.predictor, DirectionScheme::Hybrid);
        let atom = MachineConfig::atom_d510();
        assert!(atom.l3.is_none());
        assert_eq!(atom.predictor, DirectionScheme::TwoLevel);
    }
}
