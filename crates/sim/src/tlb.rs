//! Translation look-aside buffer model.
//!
//! ITLB/DTLB behaviour is one of the paper's 45 metric categories and the
//! subject of Figure 5. We model set-associative first-level instruction
//! and data TLBs plus a shared second-level TLB; reported MPKI counts
//! first-level misses, matching how `perf` counts `iTLB-load-misses` /
//! `dTLB-load-misses`.

use serde::{Deserialize, Serialize};

/// Geometry of a TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Ways per set.
    pub assoc: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
}

impl TlbConfig {
    /// 4 KiB-page, 4-way TLB with `entries` entries.
    pub fn small_pages(entries: usize) -> Self {
        Self {
            entries,
            assoc: 4,
            page_bytes: 4096,
        }
    }
}

/// Set-associative LRU TLB.
///
/// # Examples
///
/// ```
/// use bdb_sim::tlb::{Tlb, TlbConfig};
///
/// let mut t = Tlb::new(TlbConfig::small_pages(16));
/// assert!(!t.access(0x1000));
/// assert!(t.access(0x1fff)); // same page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    page_shift: u32,
    sets: usize,
    pages: Vec<u64>,
    stamp: Vec<u64>,
    tick: u64,
    accesses: u64,
    misses: u64,
}

impl Tlb {
    /// Builds a TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `assoc` yielding a
    /// power-of-two set count, or `page_bytes` is not a power of two.
    pub fn new(config: TlbConfig) -> Self {
        assert!(
            config.assoc > 0 && config.entries.is_multiple_of(config.assoc),
            "entries must divide into ways"
        );
        assert!(
            config.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        let sets = config.entries / config.assoc;
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "TLB set count must be a power of two"
        );
        Self {
            config,
            page_shift: config.page_bytes.trailing_zeros(),
            sets,
            pages: vec![u64::MAX; config.entries],
            stamp: vec![0; config.entries],
            tick: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// The configuration this TLB was built with.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Translates `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        self.accesses += 1;
        let page = addr >> self.page_shift;
        let set = (page as usize) & (self.sets - 1);
        let base = set * self.config.assoc;
        let ways = &self.pages[base..base + self.config.assoc];
        if let Some(w) = ways.iter().position(|&p| p == page) {
            self.stamp[base + w] = self.tick;
            return true;
        }
        self.misses += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.config.assoc {
            if self.pages[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamp[base + w] < oldest {
                oldest = self.stamp[base + w];
                victim = w;
            }
        }
        self.pages[base + victim] = page;
        self.stamp[base + victim] = self.tick;
        false
    }

    /// Page number of `addr` under this TLB's page size.
    pub fn page_of(&self, addr: u64) -> u64 {
        addr >> self.page_shift
    }

    /// Total translations requested.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Translations that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(TlbConfig::small_pages(8));
        assert!(!t.access(0));
        assert!(t.access(4095));
        assert!(!t.access(4096));
        assert_eq!(t.misses(), 2);
        assert_eq!(t.accesses(), 3);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 8 entries, 4-way => 2 sets. Pages 0,2,4,6,8 all map to set 0.
        let mut t = Tlb::new(TlbConfig::small_pages(8));
        for p in [0u64, 2, 4, 6] {
            t.access(p << 12);
        }
        t.access(0); // refresh page 0
        t.access(8 << 12); // evicts page 2 (oldest)
        assert!(t.access(0));
        assert!(!t.access(2 << 12));
    }

    #[test]
    fn footprint_within_entries_never_misses_after_warmup() {
        let mut t = Tlb::new(TlbConfig::small_pages(16));
        for _ in 0..4 {
            for p in 0..16u64 {
                t.access(p << 12);
            }
        }
        // Pages 0..16 spread evenly over 4 sets x 4 ways: all fit.
        assert_eq!(t.misses(), 16);
    }

    #[test]
    fn page_of_uses_page_size() {
        let t = Tlb::new(TlbConfig {
            entries: 4,
            assoc: 4,
            page_bytes: 1 << 21,
        });
        assert_eq!(t.page_of(0x001F_FFFF), 0);
        assert_eq!(t.page_of(0x0020_0000), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Tlb::new(TlbConfig {
            entries: 12,
            assoc: 4,
            page_bytes: 4096,
        });
    }
}
