//! Set-associative cache model.
//!
//! A [`Cache`] is a tag array with per-set replacement state; it models
//! hits/misses (and dirty-line writebacks) but not contents — the trace
//! carries real data in the workload layer, the simulator only needs
//! addresses. All the paper's cache numbers (Figure 4's MPKI, Figures 6–9's
//! miss-ratio-versus-capacity curves) come from this model.

use serde::{Deserialize, Serialize};

/// Replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Replacement {
    /// Least-recently-used (default; what the paper's platforms approximate).
    Lru,
    /// Pseudo-random (ablation target).
    Random,
}

/// Geometry and policy of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Convenience constructor with LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`Cache::new`]).
    pub fn lru(size_bytes: u64, assoc: usize, line_bytes: u64) -> Self {
        Self {
            size_bytes,
            assoc,
            line_bytes,
            replacement: Replacement::Lru,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.line_bytes * self.assoc as u64)) as usize
    }
}

/// Hit/miss/writeback counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses (line not present).
    pub misses: u64,
    /// Dirty lines evicted.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; zero when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One level of set-associative cache.
///
/// # Examples
///
/// ```
/// use bdb_sim::cache::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::lru(32 * 1024, 8, 64));
/// assert!(!c.access(0x1000, false)); // cold miss
/// assert!(c.access(0x1000, false));  // now hits
/// assert_eq!(c.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    /// `sets - 1` when the set count is a power of two (so indexing is a
    /// mask instead of a modulo), `u64::MAX` otherwise.
    set_mask: u64,
    line_shift: u32,
    /// `tags[set * assoc + way]`; `u64::MAX` marks an invalid way.
    tags: Vec<u64>,
    /// LRU timestamp per way.
    stamp: Vec<u64>,
    dirty: Vec<bool>,
    tick: u64,
    rng: u64,
    stats: CacheStats,
}

const INVALID: u64 = u64::MAX;

impl Cache {
    /// Builds a cache.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two, `assoc == 0`, or the
    /// capacity is not an exact multiple of `line_bytes * assoc`.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.assoc > 0, "associativity must be positive");
        assert!(
            config
                .size_bytes
                .is_multiple_of(config.line_bytes * config.assoc as u64)
                && config.size_bytes > 0,
            "capacity must be a positive multiple of line_bytes * assoc"
        );
        let sets = config.sets();
        assert!(sets > 0, "cache must have at least one set");
        let ways = sets * config.assoc;
        Self {
            config,
            sets,
            set_mask: if sets.is_power_of_two() {
                sets as u64 - 1
            } else {
                u64::MAX
            },
            line_shift: config.line_bytes.trailing_zeros(),
            tags: vec![INVALID; ways],
            stamp: vec![0; ways],
            dirty: vec![false; ways],
            tick: 0,
            rng: 0xA076_1D64_78BD_642F,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Set index of a line number. Modulo indexing supports
    /// non-power-of-two set counts (the Xeon's 12 MiB L3 has 12288 sets);
    /// power-of-two geometries — every swept L1 — take the mask path,
    /// which computes the identical value without the division.
    #[inline]
    fn set_index(&self, line: u64) -> usize {
        if self.set_mask != u64::MAX {
            (line & self.set_mask) as usize
        } else {
            (line % self.sets as u64) as usize
        }
    }

    /// Accesses `addr`; returns `true` on hit. `is_store` marks the line
    /// dirty so its eventual eviction counts as a writeback.
    pub fn access(&mut self, addr: u64, is_store: bool) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let line = addr >> self.line_shift;
        let set = self.set_index(line);
        let tag = line;
        let base = set * self.config.assoc;
        let ways = &mut self.tags[base..base + self.config.assoc];
        if let Some(w) = ways.iter().position(|&t| t == tag) {
            self.stamp[base + w] = self.tick;
            if is_store {
                self.dirty[base + w] = true;
            }
            return true;
        }
        self.stats.misses += 1;
        let victim = match self.config.replacement {
            Replacement::Lru => {
                let mut best = 0;
                let mut best_stamp = u64::MAX;
                for w in 0..self.config.assoc {
                    if self.tags[base + w] == INVALID {
                        best = w;
                        break;
                    }
                    if self.stamp[base + w] < best_stamp {
                        best_stamp = self.stamp[base + w];
                        best = w;
                    }
                }
                best
            }
            Replacement::Random => {
                let mut x = self.rng;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                self.rng = x;
                (x as usize) % self.config.assoc
            }
        };
        let slot = base + victim;
        if self.tags[slot] != INVALID && self.dirty[slot] {
            self.stats.writebacks += 1;
        }
        self.tags[slot] = tag;
        self.stamp[slot] = self.tick;
        self.dirty[slot] = is_store;
        false
    }

    /// Equivalent to `count` back-to-back [`Cache::access`] calls with
    /// the same `addr`/`is_store`, returning the first call's hit flag.
    ///
    /// After the first access the line is resident and most recent, so
    /// with nothing else touching the cache in between, the remaining
    /// `count - 1` accesses are hits whose only effects are advancing the
    /// clock and refreshing the line's own stamp — which this applies in
    /// bulk. Trace-replay code uses it to collapse same-line runs; every
    /// counter (and, for [`Replacement::Random`], the RNG, which hits
    /// never touch) ends up exactly as if the calls had been made one by
    /// one.
    pub fn access_run(&mut self, addr: u64, is_store: bool, count: u64) -> bool {
        let hit = self.access(addr, is_store);
        if count > 1 {
            let line = addr >> self.line_shift;
            let set = self.set_index(line);
            let base = set * self.config.assoc;
            let ways = &self.tags[base..base + self.config.assoc];
            if let Some(w) = ways.iter().position(|&t| t == line) {
                self.tick += count - 1;
                self.stats.accesses += count - 1;
                self.stamp[base + w] = self.tick;
            }
        }
        hit
    }

    /// Installs the line containing `addr` without touching the demand
    /// counters — the prefetcher's fill path. Dirty victims still count as
    /// writebacks.
    pub fn install(&mut self, addr: u64) {
        let before = self.stats;
        self.access(addr, false);
        let wb = self.stats.writebacks;
        self.stats = before;
        self.stats.writebacks = wb;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears counters (contents are kept — useful after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B.
        Cache::new(CacheConfig::lru(512, 2, 64))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0, false));
        assert!(c.access(0, false));
        assert!(c.access(63, false)); // same line
        assert!(!c.access(64, false)); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three lines mapping to set 0: line numbers 0, 4, 8 (4 sets).
        let a = 0u64;
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a more recent than b
        c.access(d, false); // evicts b
        assert!(c.access(a, false), "a must survive");
        assert!(!c.access(b, false), "b must have been evicted");
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let mut c = small();
        let a = 0u64;
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(a, true); // dirty
        c.access(b, false);
        c.access(d, false); // evicts a (LRU), dirty -> writeback
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let mut c = Cache::new(CacheConfig::lru(8 * 1024, 8, 64));
        // 4KB working set walked repeatedly fits in 8KB.
        for _round in 0..10 {
            for addr in (0..4096u64).step_by(64) {
                c.access(addr, false);
            }
        }
        let s = c.stats();
        assert_eq!(s.misses, 64, "only cold misses expected, got {}", s.misses);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_with_lru() {
        let mut c = Cache::new(CacheConfig::lru(4 * 1024, 8, 64));
        // 8KB working set cyclically walked through a 4KB LRU cache misses every time.
        let mut misses_after_warmup = 0;
        for round in 0..10 {
            for addr in (0..8192u64).step_by(64) {
                let hit = c.access(addr, false);
                if round > 0 && !hit {
                    misses_after_warmup += 1;
                }
            }
        }
        assert_eq!(misses_after_warmup, 9 * 128);
    }

    #[test]
    fn random_replacement_differs_from_lru_under_thrash() {
        let mut lru = Cache::new(CacheConfig::lru(4 * 1024, 8, 64));
        let mut rnd = Cache::new(CacheConfig {
            replacement: Replacement::Random,
            ..CacheConfig::lru(4 * 1024, 8, 64)
        });
        for _ in 0..20 {
            for addr in (0..8192u64).step_by(64) {
                lru.access(addr, false);
                rnd.access(addr, false);
            }
        }
        // Random keeps some lines across the cyclic sweep; LRU keeps none.
        assert!(rnd.stats().misses < lru.stats().misses);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small();
        c.access(0, false);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0, false), "contents survive reset");
    }

    #[test]
    fn miss_ratio_bounds() {
        let mut c = small();
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.access(0, false);
        assert_eq!(c.stats().miss_ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = Cache::new(CacheConfig::lru(512, 2, 48));
    }
}
