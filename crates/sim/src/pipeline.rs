//! Analytic pipeline models.
//!
//! The paper reports IPC (Figure 3) measured on two very different cores:
//! the out-of-order Xeon E5645 and the in-order Atom. We model both with a
//! trace-driven *interval* accounting: every retired micro-op costs its
//! issue slot, and each miss event (front-end, data, TLB, branch) adds a
//! stall whose exposure depends on the pipeline's ability to hide it.
//!
//! An out-of-order window hides much of the data-miss latency behind
//! independent work but can hide almost none of an instruction-fetch miss
//! or a branch misprediction — which is exactly why the paper's front-end
//! observations (high L1I MPKI on deep stacks) translate into the IPC gaps
//! of its Figure 3.

use serde::{Deserialize, Serialize};

/// Where in the hierarchy a miss was ultimately served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceLevel {
    /// Hit in L1 (no stall beyond the pipelined L1 latency).
    L1,
    /// L1 miss served by L2.
    L2,
    /// L2 miss served by L3.
    L3,
    /// Served by DRAM.
    Memory,
}

/// Execution model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineKind {
    /// In-order dual-issue (Atom-like): miss latency is fully exposed.
    InOrder,
    /// Out-of-order (Xeon-like): data misses partially hidden.
    OutOfOrder,
}

/// Latency and width parameters of a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Execution model.
    pub kind: PipelineKind,
    /// Sustainable cycles per retired micro-op with no stalls
    /// (1 / effective issue width).
    pub base_cpi: f64,
    /// L2 hit latency in cycles.
    pub l2_latency: u32,
    /// L3 hit latency in cycles.
    pub l3_latency: u32,
    /// DRAM latency in cycles.
    pub mem_latency: u32,
    /// Page-walk latency on a second-level TLB miss.
    pub tlb_walk_latency: u32,
    /// Second-level TLB hit latency (first-level miss, STLB hit).
    pub stlb_latency: u32,
}

impl PipelineConfig {
    /// Xeon-E5645-like out-of-order parameters.
    pub fn xeon_ooo() -> Self {
        Self {
            kind: PipelineKind::OutOfOrder,
            base_cpi: 0.5,
            l2_latency: 10,
            l3_latency: 32,
            mem_latency: 180,
            tlb_walk_latency: 30,
            stlb_latency: 7,
        }
    }

    /// Atom-like in-order parameters.
    pub fn atom_inorder() -> Self {
        Self {
            kind: PipelineKind::InOrder,
            base_cpi: 0.65,
            l2_latency: 15,
            l3_latency: 40,
            mem_latency: 160,
            tlb_walk_latency: 30,
            stlb_latency: 7,
        }
    }
}

/// Trace-driven cycle accumulator.
///
/// # Examples
///
/// ```
/// use bdb_sim::pipeline::{Pipeline, PipelineConfig, ServiceLevel};
///
/// let mut p = Pipeline::new(PipelineConfig::xeon_ooo());
/// p.issue(1000);
/// p.fetch_stall(ServiceLevel::L2);
/// assert!(p.cycles() > 500.0);
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
    cycles: f64,
    stall_fetch: f64,
    stall_data: f64,
    stall_branch: f64,
    stall_tlb: f64,
}

impl Pipeline {
    /// Creates a pipeline accumulator.
    pub fn new(config: PipelineConfig) -> Self {
        Self {
            config,
            cycles: 0.0,
            stall_fetch: 0.0,
            stall_data: 0.0,
            stall_branch: 0.0,
            stall_tlb: 0.0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Charges issue slots for `n` retired micro-ops.
    pub fn issue(&mut self, n: u64) {
        self.cycles += self.config.base_cpi * n as f64;
    }

    /// Charges one retired op with a class-dependent issue cost:
    /// floating-point ops carry latency chains (`1.6x` base), memory ops
    /// occupy AGU+port (`1.1x`), integer/branch ops are cheapest (`0.9x`).
    pub fn issue_class(&mut self, op: &bdb_trace::MicroOp) {
        let factor = match op {
            bdb_trace::MicroOp::Fp => 1.6,
            bdb_trace::MicroOp::Load { .. } | bdb_trace::MicroOp::Store { .. } => 1.1,
            _ => 0.9,
        };
        self.cycles += self.config.base_cpi * factor;
    }

    fn latency_of(&self, level: ServiceLevel) -> f64 {
        match level {
            ServiceLevel::L1 => 0.0,
            ServiceLevel::L2 => f64::from(self.config.l2_latency),
            ServiceLevel::L3 => f64::from(self.config.l3_latency),
            ServiceLevel::Memory => f64::from(self.config.mem_latency),
        }
    }

    /// Charges an instruction-fetch miss served at `level`.
    ///
    /// Front-end misses starve decode; even the out-of-order core exposes
    /// most of the latency.
    pub fn fetch_stall(&mut self, level: ServiceLevel) {
        let exposure = match self.config.kind {
            PipelineKind::InOrder => 1.0,
            // Decoded-uop queues and overlapping fetch hide a bit more of
            // the miss on the out-of-order front end.
            PipelineKind::OutOfOrder => 0.6,
        };
        let c = self.latency_of(level) * exposure;
        self.cycles += c;
        self.stall_fetch += c;
    }

    /// Charges a data access served at `level`. Stores are largely absorbed
    /// by the write buffer; loads stall the window once independent work
    /// runs out.
    pub fn data_stall(&mut self, level: ServiceLevel, is_store: bool) {
        let exposure = match (self.config.kind, is_store) {
            (_, true) => 0.05,
            (PipelineKind::InOrder, false) => 1.0,
            (PipelineKind::OutOfOrder, false) => match level {
                ServiceLevel::L1 => 0.0,
                ServiceLevel::L2 => 0.3,
                ServiceLevel::L3 => 0.45,
                ServiceLevel::Memory => 0.65,
            },
        };
        let c = self.latency_of(level) * exposure;
        self.cycles += c;
        self.stall_data += c;
    }

    /// Charges a branch misprediction flush of `penalty` cycles.
    pub fn branch_penalty(&mut self, penalty: u32) {
        self.cycles += f64::from(penalty);
        self.stall_branch += f64::from(penalty);
    }

    /// Charges a first-level TLB miss; `walked` means the second-level TLB
    /// also missed and a page walk was needed.
    pub fn tlb_stall(&mut self, walked: bool) {
        let c = if walked {
            f64::from(self.config.tlb_walk_latency)
        } else {
            f64::from(self.config.stlb_latency)
        };
        self.cycles += c;
        self.stall_tlb += c;
    }

    /// Total simulated cycles.
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Cycles lost to front-end (fetch) stalls.
    pub fn fetch_stall_cycles(&self) -> f64 {
        self.stall_fetch
    }

    /// Cycles lost to data-access stalls.
    pub fn data_stall_cycles(&self) -> f64 {
        self.stall_data
    }

    /// Cycles lost to branch mispredictions.
    pub fn branch_stall_cycles(&self) -> f64 {
        self.stall_branch
    }

    /// Cycles lost to TLB misses.
    pub fn tlb_stall_cycles(&self) -> f64 {
        self.stall_tlb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_code_reaches_peak_ipc() {
        let mut p = Pipeline::new(PipelineConfig::xeon_ooo());
        p.issue(10_000);
        let ipc = 10_000.0 / p.cycles();
        assert!((ipc - 2.0).abs() < 1e-9, "peak IPC should be 1/base_cpi");
    }

    #[test]
    fn in_order_exposes_more_than_ooo() {
        let mut inord = Pipeline::new(PipelineConfig::atom_inorder());
        let mut ooo = Pipeline::new(PipelineConfig::xeon_ooo());
        for _ in 0..100 {
            inord.data_stall(ServiceLevel::Memory, false);
            ooo.data_stall(ServiceLevel::Memory, false);
        }
        assert!(inord.data_stall_cycles() > ooo.data_stall_cycles());
    }

    #[test]
    fn stores_cost_less_than_loads() {
        let mut p = Pipeline::new(PipelineConfig::xeon_ooo());
        p.data_stall(ServiceLevel::Memory, true);
        let store_cost = p.data_stall_cycles();
        let mut p2 = Pipeline::new(PipelineConfig::xeon_ooo());
        p2.data_stall(ServiceLevel::Memory, false);
        assert!(store_cost < p2.data_stall_cycles());
    }

    #[test]
    fn stall_categories_sum_to_total_minus_issue() {
        let mut p = Pipeline::new(PipelineConfig::xeon_ooo());
        p.issue(100);
        p.fetch_stall(ServiceLevel::L2);
        p.data_stall(ServiceLevel::L3, false);
        p.branch_penalty(12);
        p.tlb_stall(true);
        let stalls = p.fetch_stall_cycles()
            + p.data_stall_cycles()
            + p.branch_stall_cycles()
            + p.tlb_stall_cycles();
        assert!((p.cycles() - 50.0 - stalls).abs() < 1e-9);
    }

    #[test]
    fn l1_hits_are_free() {
        let mut p = Pipeline::new(PipelineConfig::xeon_ooo());
        p.data_stall(ServiceLevel::L1, false);
        p.fetch_stall(ServiceLevel::L1);
        assert_eq!(p.cycles(), 0.0);
    }
}
