//! `cluster-smoke` — byte-level oracle for distributed vs. serial runs.
//!
//! Profiles the first N catalog workloads and prints one canonical-JSON
//! line per profile, in catalog order. Without `--cluster` the profiles
//! come from a fully serial local engine; with `--cluster a,b,...` they
//! come from a coordinator run over the listed TCP workers. Because the
//! cluster contract is *byte* identity, CI simply diffs the two outputs:
//!
//! ```text
//! cluster-smoke --workloads 12 > serial.jsonl
//! cluster-smoke --workloads 12 --cluster 127.0.0.1:9001,127.0.0.1:9002 > cluster.jsonl
//! diff serial.jsonl cluster.jsonl
//! ```

use bdb_cluster::{fleet_tasks, ClusterConfig, Coordinator};
use bdb_cluster::{TcpTransport, Transport};
use bdb_engine::{
    argv_journal_context, codec, CacheStore, Engine, EngineConfig, RealFs, RunJournal,
};
use bdb_node::NodeConfig;
use bdb_sim::MachineConfig;
use bdb_workloads::{catalog, Scale};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
cluster-smoke: print canonical profile bytes, serially or via a cluster

USAGE:
    cluster-smoke [--workloads <n>] [--scale tiny|small|paper|<factor>] [--cluster <addr,addr,...>]
                  [--join-listen <addr>] [--replication <r>] [--journal <path>] [--resume]

OPTIONS:
    --workloads <n>     Profile the first n catalog workloads (default 12)
    --scale <s>         Input scale (default tiny)
    --cluster <list>    Comma-separated worker addresses; omit for a serial local run
    --join-listen <a>   Accept workers joining mid-run on this address (elastic fleet);
                        the bound address is printed to stderr as 'join listening on <addr>'.
                        While the join channel is open a fully-dead fleet WAITS for new
                        joiners instead of failing — bound that wait with --join-idle-secs
    --join-idle-secs <s> Close the join channel after s seconds without a new joiner
                        (default 0 = never close); once closed, total fleet death
                        aborts the run with an error instead of waiting forever
    --replication <r>   Replicate each verified result to r peer workers (default from
                        BDB_REPLICATION, else 0)
    --journal <path>    Checkpoint completed tasks into a write-ahead run journal
    --resume            Merge completed tasks from the journal instead of re-running them
    -h, --help          Print this help
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "-h" || a == "--help") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let mut count: usize = 12;
    let mut scale = Scale::tiny();
    let mut cluster: Option<String> = None;
    let mut join_listen: Option<String> = None;
    let mut join_idle_secs: u64 = 0;
    let mut replication: Option<usize> = None;
    let mut journal_path: Option<PathBuf> = None;
    let resume = argv.iter().any(|a| a == "--resume");
    for pair in argv.windows(2) {
        match pair[0].as_str() {
            "--workloads" => match pair[1].parse() {
                Ok(n) => count = n,
                Err(_) => {
                    eprintln!("cluster-smoke: bad workload count {:?}", pair[1]);
                    return ExitCode::from(2);
                }
            },
            "--scale" => {
                scale = match pair[1].as_str() {
                    "tiny" => Scale::tiny(),
                    "small" => Scale::small(),
                    "paper" => Scale::paper(),
                    other => match other.parse() {
                        Ok(f) => Scale::custom(f),
                        Err(_) => {
                            eprintln!("cluster-smoke: bad scale {other:?}");
                            return ExitCode::from(2);
                        }
                    },
                }
            }
            "--cluster" => cluster = Some(pair[1].clone()),
            "--join-listen" => join_listen = Some(pair[1].clone()),
            "--join-idle-secs" => match pair[1].parse() {
                Ok(s) => join_idle_secs = s,
                Err(_) => {
                    eprintln!("cluster-smoke: bad join idle seconds {:?}", pair[1]);
                    return ExitCode::from(2);
                }
            },
            "--replication" => match pair[1].parse() {
                Ok(r) => replication = Some(r),
                Err(_) => {
                    eprintln!("cluster-smoke: bad replication count {:?}", pair[1]);
                    return ExitCode::from(2);
                }
            },
            "--journal" => journal_path = Some(PathBuf::from(&pair[1])),
            _ => {}
        }
    }
    // The journal context is the command line minus --resume, so only
    // the identical invocation replays journaled results.
    let mut journal = journal_path.map(|path| {
        let store: Arc<dyn CacheStore> = Arc::new(RealFs);
        let format = EngineConfig::from_env().cache_format;
        let (journal, stats) =
            RunJournal::open(store, path, &argv_journal_context(), resume, format);
        eprintln!(
            "cluster-smoke: journal preloaded {} of {count} tasks",
            stats.loaded_tasks
        );
        journal
    });
    let workloads: Vec<_> = catalog::full_catalog().into_iter().take(count).collect();
    let machine = MachineConfig::xeon_e5645();
    let node = NodeConfig::default();
    let profiles = if cluster.is_none() && join_listen.is_none() {
        Engine::serial().profile_all(&workloads, scale, &machine, &node)
    } else {
        let mut workers: Vec<Arc<dyn Transport>> = Vec::new();
        if let Some(addrs) = &cluster {
            for addr in addrs.split(',').filter(|a| !a.is_empty()) {
                match TcpTransport::connect(addr, Duration::from_secs(10)) {
                    Ok(t) => workers.push(Arc::new(t)),
                    Err(e) => {
                        eprintln!("cluster-smoke: worker {addr}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
        }
        let mut config = ClusterConfig::from_env();
        if let Some(r) = replication {
            config.replication = r;
        }
        // With --join-listen the join channel stays open for the whole
        // run: workers may dial in at any point and are eligible for
        // stealing immediately. Without it the sender is dropped up
        // front, restoring the fixed-membership failure semantics.
        let (join_tx, join_rx) = std::sync::mpsc::channel();
        if let Some(addr) = &join_listen {
            let listener = match TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("cluster-smoke: bind {addr}: {e}");
                    return ExitCode::from(2);
                }
            };
            let bound = listener
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| addr.clone());
            // To stderr: stdout is reserved for the profile bytes.
            eprintln!("cluster-smoke: join listening on {bound}");
            // With no idle limit the accept thread holds the join
            // sender forever, so the coordinator WAITS for new joiners
            // whenever the whole fleet dies — an idle limit turns that
            // indefinite wait into a diagnosable AllWorkersDead error
            // by dropping the sender (delivering JoinsClosed) once no
            // joiner has arrived for the given stretch.
            std::thread::spawn(move || {
                let poll = Duration::from_millis(100);
                if join_idle_secs > 0 && listener.set_nonblocking(true).is_err() {
                    return;
                }
                let mut idle = Duration::ZERO;
                loop {
                    match listener.accept() {
                        Ok((stream, peer_addr)) => {
                            idle = Duration::ZERO;
                            let _ = stream.set_nonblocking(false);
                            let peer = peer_addr.to_string();
                            let Ok(transport) = TcpTransport::from_stream(stream, &peer) else {
                                continue;
                            };
                            if join_tx
                                .send(Arc::new(transport) as Arc<dyn Transport>)
                                .is_err()
                            {
                                return; // run finished; stop accepting
                            }
                        }
                        Err(_) => {
                            // WouldBlock under the nonblocking poll, or
                            // a transient accept failure: back off and
                            // charge the idle clock either way.
                            std::thread::sleep(poll);
                            idle += poll;
                            if join_idle_secs > 0 && idle >= Duration::from_secs(join_idle_secs) {
                                eprintln!(
                                    "cluster-smoke: no joiner for {join_idle_secs}s; \
                                     closing the join channel"
                                );
                                return; // drops join_tx -> JoinsClosed
                            }
                        }
                    }
                }
            });
        } else {
            drop(join_tx);
            if workers.is_empty() {
                eprintln!("cluster-smoke: --cluster list is empty and no --join-listen given");
                return ExitCode::from(2);
            }
        }
        let tasks = fleet_tasks(&workloads, scale, &machine, &node);
        let coordinator = Coordinator::new(config);
        let outcome = coordinator.run_elastic(workers, join_rx, &tasks, journal.as_mut());
        match outcome {
            Ok(profiles) => profiles,
            Err(e) => {
                eprintln!("cluster-smoke: distributed run failed: {e}");
                return ExitCode::from(1);
            }
        }
    };
    for profile in &profiles {
        println!("{}", codec::profile_to_value(profile).encode());
    }
    ExitCode::SUCCESS
}
