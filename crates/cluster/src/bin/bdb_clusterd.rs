//! `bdb-clusterd` — one profiling worker serving cluster coordinators.
//!
//! Listens on `--listen <addr>` (default `127.0.0.1:0`; the bound
//! address is printed as `listening on <addr>` so scripts can scrape an
//! ephemeral port) and serves coordinator sessions sequentially: each
//! accepted connection runs the worker loop to completion before the
//! next is accepted. The local engine is built from the standard `BDB_*`
//! environment knobs, so a worker with a warm `results/cache/` answers
//! repeat tasks without re-simulating.
//!
//! With `--connect <addr>` the daemon inverts direction and *joins* a
//! running coordinator's elastic join listener instead of binding: it
//! dials out, serves that one session to completion, and exits. This is
//! how a worker enters a run already in progress (`cluster-smoke
//! --join-listen` on the coordinator side).
//!
//! Fault-injection flags (for smoke tests; omit them in real runs):
//!
//! * `--fault-crash-task <k>` — exit(3) when assigned the k-th task.
//! * `--fault-drop-frames <n>` — drop the connection after n frames.
//! * `--fault-delay-ms <ms>` — delay every outbound reply.
//! * `--fault-dup-results` — send every Result frame twice.
//! * `--fault-bye-task <k>` — leave cleanly (Bye) instead of running
//!   the k-th assigned task.
//! * `--fault-stall-task <k>` — hang forever on the k-th assigned task
//!   (exercises the coordinator's deadline recovery).
//!
//! With any crash/drop/bye/stall fault the daemon serves exactly one
//! session and then exits (a dead or departed worker must stay gone so
//! the coordinator's recovery path is actually exercised); otherwise it
//! serves forever.
//!
//! Session logs report `(N tasks, M computed)` — M is the engine's
//! cold-simulation delta for the session, so a warm-restart harness can
//! assert zero recomputation after a replicated-cache restart.

use bdb_cluster::{
    daemon_help_text, run_worker, FaultPlan, FaultyTransport, TcpTransport, WorkerConfig,
    WorkerError,
};
use bdb_engine::{Engine, EngineConfig};
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> String {
    daemon_help_text(
        "bdb-clusterd",
        "profiling worker for distributed fleet runs",
        "bdb-clusterd [--listen <addr> | --connect <addr>] [--name <name>] [fault flags]",
        &[
            ("--listen <addr>", "Bind address (default 127.0.0.1:0)"),
            (
                "--connect <addr>",
                "Join a running coordinator's elastic join listener, serve one session, exit",
            ),
            (
                "--name <name>",
                "Worker name sent in Hello (default: the bound address)",
            ),
            (
                "--fault-crash-task <k>",
                "Injected fault: exit(3) when assigned task #k (0-based)",
            ),
            (
                "--fault-drop-frames <n>",
                "Injected fault: drop the connection after n frames",
            ),
            (
                "--fault-delay-ms <ms>",
                "Injected fault: delay every outbound reply by ms",
            ),
            (
                "--fault-dup-results",
                "Injected fault: send every Result frame twice",
            ),
            (
                "--fault-bye-task <k>",
                "Injected fault: leave cleanly (Bye) instead of running assigned task #k",
            ),
            (
                "--fault-stall-task <k>",
                "Injected fault: hang forever on assigned task #k (deadline recovery)",
            ),
        ],
        &[],
    )
}

struct Args {
    listen: String,
    connect: Option<String>,
    name: Option<String>,
    faults: FaultPlan,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:0".to_owned(),
        connect: None,
        name: None,
        faults: FaultPlan::default(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = argv.get(i) {
        match arg.as_str() {
            "--listen" => args.listen = value(&mut i, "--listen")?,
            "--connect" => args.connect = Some(value(&mut i, "--connect")?),
            "--name" => args.name = Some(value(&mut i, "--name")?),
            "--fault-crash-task" => {
                let v = value(&mut i, "--fault-crash-task")?;
                args.faults.crash_on_task =
                    Some(v.parse().map_err(|_| format!("bad task number {v:?}"))?);
            }
            "--fault-drop-frames" => {
                let v = value(&mut i, "--fault-drop-frames")?;
                args.faults.drop_after_frames =
                    Some(v.parse().map_err(|_| format!("bad frame count {v:?}"))?);
            }
            "--fault-delay-ms" => {
                let v = value(&mut i, "--fault-delay-ms")?;
                args.faults.delay_reply = Some(Duration::from_millis(
                    v.parse().map_err(|_| format!("bad delay {v:?}"))?,
                ));
            }
            "--fault-dup-results" => args.faults.duplicate_results = true,
            "--fault-bye-task" => {
                let v = value(&mut i, "--fault-bye-task")?;
                args.faults.bye_on_task =
                    Some(v.parse().map_err(|_| format!("bad task number {v:?}"))?);
            }
            "--fault-stall-task" => {
                let v = value(&mut i, "--fault-stall-task")?;
                args.faults.stall_on_task =
                    Some(v.parse().map_err(|_| format!("bad task number {v:?}"))?);
            }
            "-h" | "--help" => {
                print!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    Ok(args)
}

/// One worker session on `transport`: runs the serve loop, logs the
/// tasks-served and cold-compute counts (the latter is what the
/// warm-restart harness scrapes), and maps the outcome to an exit code
/// (`None` = keep serving).
fn serve_one(
    transport: &FaultyTransport<TcpTransport>,
    engine: &Engine,
    config: &WorkerConfig,
    peer: &str,
) -> Option<ExitCode> {
    let computed_before = engine.counters().computed;
    match run_worker(transport, engine, config) {
        Ok(served) => {
            let computed = engine.counters().computed - computed_before;
            eprintln!(
                "bdb-clusterd: session with {peer} done ({served} tasks, {computed} computed)"
            );
            None
        }
        Err(WorkerError::InjectedCrash { task_number }) => {
            eprintln!("bdb-clusterd: injected crash on task #{task_number}");
            Some(ExitCode::from(3))
        }
        Err(e) => {
            eprintln!("bdb-clusterd: session with {peer} failed: {e}");
            None
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("bdb-clusterd: {e}");
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };
    if let Some(addr) = &args.connect {
        // Join mode: dial the coordinator's elastic join listener,
        // serve that one session, exit.
        let engine = Engine::new(EngineConfig::from_env());
        let transport = match TcpTransport::connect(addr, Duration::from_secs(10)) {
            Ok(t) => FaultyTransport::new(t, args.faults.clone()),
            Err(e) => {
                eprintln!("bdb-clusterd: connect {addr}: {e}");
                return ExitCode::from(2);
            }
        };
        let config = WorkerConfig {
            name: args.name.clone().unwrap_or_else(|| format!("join:{addr}")),
            faults: args.faults.clone(),
        };
        println!("joined {addr}");
        return serve_one(&transport, &engine, &config, addr).unwrap_or(ExitCode::SUCCESS);
    }
    let listener = match TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bdb-clusterd: bind {}: {e}", args.listen);
            return ExitCode::from(2);
        }
    };
    let bound = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| args.listen.clone());
    println!("listening on {bound}");
    let name = args.name.clone().unwrap_or_else(|| bound.clone());
    let engine = Engine::new(EngineConfig::from_env());
    // A crash/drop/bye/stall plan is one-shot by design: the dead or
    // departed worker must stay gone for the coordinator's recovery to
    // be exercised end to end.
    let one_shot = args.faults.crash_on_task.is_some()
        || args.faults.drop_after_frames.is_some()
        || args.faults.bye_on_task.is_some()
        || args.faults.stall_on_task.is_some();
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bdb-clusterd: accept: {e}");
                continue;
            }
        };
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "?".to_owned());
        let transport = match TcpTransport::from_stream(stream, &peer) {
            Ok(t) => FaultyTransport::new(t, args.faults.clone()),
            Err(e) => {
                eprintln!("bdb-clusterd: session setup with {peer}: {e}");
                continue;
            }
        };
        let config = WorkerConfig {
            name: name.clone(),
            faults: args.faults.clone(),
        };
        if let Some(code) = serve_one(&transport, &engine, &config, &peer) {
            return code;
        }
        if one_shot {
            return ExitCode::SUCCESS;
        }
    }
    ExitCode::SUCCESS
}
