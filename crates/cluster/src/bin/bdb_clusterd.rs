//! `bdb-clusterd` — one profiling worker serving cluster coordinators.
//!
//! Listens on `--listen <addr>` (default `127.0.0.1:0`; the bound
//! address is printed as `listening on <addr>` so scripts can scrape an
//! ephemeral port) and serves coordinator sessions sequentially: each
//! accepted connection runs the worker loop to completion before the
//! next is accepted. The local engine is built from the standard `BDB_*`
//! environment knobs, so a worker with a warm `results/cache/` answers
//! repeat tasks without re-simulating.
//!
//! Fault-injection flags (for smoke tests; omit them in real runs):
//!
//! * `--fault-crash-task <k>` — exit(3) when assigned the k-th task.
//! * `--fault-drop-frames <n>` — drop the connection after n frames.
//! * `--fault-delay-ms <ms>` — delay every outbound reply.
//! * `--fault-dup-results` — send every Result frame twice.
//!
//! With any crash/drop fault the daemon serves exactly one session and
//! then exits (a crashed worker must stay dead so the coordinator's
//! recovery path is actually exercised); otherwise it serves forever.

use bdb_cluster::{
    daemon_help_text, run_worker, FaultPlan, FaultyTransport, TcpTransport, WorkerConfig,
    WorkerError,
};
use bdb_engine::{Engine, EngineConfig};
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> String {
    daemon_help_text(
        "bdb-clusterd",
        "profiling worker for distributed fleet runs",
        "bdb-clusterd [--listen <addr>] [--name <name>] [fault flags]",
        &[
            ("--listen <addr>", "Bind address (default 127.0.0.1:0)"),
            (
                "--name <name>",
                "Worker name sent in Hello (default: the bound address)",
            ),
            (
                "--fault-crash-task <k>",
                "Injected fault: exit(3) when assigned task #k (0-based)",
            ),
            (
                "--fault-drop-frames <n>",
                "Injected fault: drop the connection after n frames",
            ),
            (
                "--fault-delay-ms <ms>",
                "Injected fault: delay every outbound reply by ms",
            ),
            (
                "--fault-dup-results",
                "Injected fault: send every Result frame twice",
            ),
        ],
        &[],
    )
}

struct Args {
    listen: String,
    name: Option<String>,
    faults: FaultPlan,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:0".to_owned(),
        name: None,
        faults: FaultPlan::default(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = argv.get(i) {
        match arg.as_str() {
            "--listen" => args.listen = value(&mut i, "--listen")?,
            "--name" => args.name = Some(value(&mut i, "--name")?),
            "--fault-crash-task" => {
                let v = value(&mut i, "--fault-crash-task")?;
                args.faults.crash_on_task =
                    Some(v.parse().map_err(|_| format!("bad task number {v:?}"))?);
            }
            "--fault-drop-frames" => {
                let v = value(&mut i, "--fault-drop-frames")?;
                args.faults.drop_after_frames =
                    Some(v.parse().map_err(|_| format!("bad frame count {v:?}"))?);
            }
            "--fault-delay-ms" => {
                let v = value(&mut i, "--fault-delay-ms")?;
                args.faults.delay_reply = Some(Duration::from_millis(
                    v.parse().map_err(|_| format!("bad delay {v:?}"))?,
                ));
            }
            "--fault-dup-results" => args.faults.duplicate_results = true,
            "-h" | "--help" => {
                print!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("bdb-clusterd: {e}");
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };
    let listener = match TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bdb-clusterd: bind {}: {e}", args.listen);
            return ExitCode::from(2);
        }
    };
    let bound = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| args.listen.clone());
    println!("listening on {bound}");
    let name = args.name.clone().unwrap_or_else(|| bound.clone());
    let engine = Engine::new(EngineConfig::from_env());
    // A crash/drop plan is one-shot by design: the dead worker must stay
    // dead for the coordinator's recovery to be exercised end to end.
    let one_shot = args.faults.crash_on_task.is_some() || args.faults.drop_after_frames.is_some();
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bdb-clusterd: accept: {e}");
                continue;
            }
        };
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "?".to_owned());
        let transport = match TcpTransport::from_stream(stream, &peer) {
            Ok(t) => FaultyTransport::new(t, args.faults.clone()),
            Err(e) => {
                eprintln!("bdb-clusterd: session setup with {peer}: {e}");
                continue;
            }
        };
        let config = WorkerConfig {
            name: name.clone(),
            faults: args.faults.clone(),
        };
        match run_worker(&transport, &engine, &config) {
            Ok(served) => eprintln!("bdb-clusterd: session with {peer} done ({served} tasks)"),
            Err(WorkerError::InjectedCrash { task_number }) => {
                eprintln!("bdb-clusterd: injected crash on task #{task_number}");
                return ExitCode::from(3);
            }
            Err(e) => eprintln!("bdb-clusterd: session with {peer} failed: {e}"),
        }
        if one_shot {
            return ExitCode::SUCCESS;
        }
    }
    ExitCode::SUCCESS
}
