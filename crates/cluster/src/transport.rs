//! The [`Transport`] abstraction and the in-process loopback
//! implementation.
//!
//! A transport is one bidirectional message channel between the
//! coordinator and a single worker. Implementations are shared across
//! threads (`&self` methods, `Send + Sync`), because the coordinator
//! reads each worker's stream from a dedicated thread while the
//! scheduler thread writes assignments.
//!
//! The loopback transport carries *encoded frames* through in-memory
//! channels — not `Message` values — so tests over loopback exercise the
//! exact same codec bytes as TCP; only the socket is skipped.

use crate::proto::Message;
use crate::wire::{self, WireError};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// A transport-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer is gone (clean close, crash, or injected drop).
    Closed,
    /// An I/O error on the underlying stream.
    Io(String),
    /// The stream carried bytes that do not decode as protocol frames.
    Protocol(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "peer closed the connection"),
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
            TransportError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => TransportError::Io(io),
            other => TransportError::Protocol(other.to_string()),
        }
    }
}

/// One coordinator↔worker message channel. See the module docs.
pub trait Transport: Send + Sync {
    /// Sends one message. `Err(Closed)` once the peer is gone.
    fn send(&self, msg: &Message) -> Result<(), TransportError>;

    /// Receives the next message, blocking until one arrives or the peer
    /// closes (`Err(Closed)`).
    fn recv(&self) -> Result<Message, TransportError>;

    /// Receives with a timeout: `Ok(None)` if nothing arrived in time.
    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>, TransportError>;

    /// Human-readable peer description for diagnostics.
    fn peer(&self) -> String;
}

/// The payload-level half of a transport: one bidirectional channel of
/// length-prefixed raw frames, with the message codec left to the
/// caller. `bdb-serve` runs its own protocol over this, so the loopback
/// and TCP implementations (and their framing, size cap, and
/// close/timeout semantics) are shared between the cluster and serve
/// protocols instead of duplicated.
pub trait FrameTransport: Send + Sync {
    /// Sends one raw payload as a frame. `Err(Closed)` once the peer is
    /// gone.
    fn send_payload(&self, payload: &[u8]) -> Result<(), TransportError>;

    /// Receives the next frame's payload, blocking until one arrives or
    /// the peer closes (`Err(Closed)`).
    fn recv_payload(&self) -> Result<Vec<u8>, TransportError>;

    /// Receives with a timeout: `Ok(None)` if nothing arrived in time.
    fn recv_payload_timeout(&self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError>;

    /// Human-readable peer description for diagnostics.
    fn peer_label(&self) -> String;
}

/// Locks with poison recovery: a panicked peer thread must not cascade
/// into every later send/recv (the data under these mutexes is a plain
/// frame queue, consistent at every await point).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// In-process transport end carrying encoded frames over channels.
pub struct LoopbackTransport {
    label: String,
    tx: Sender<Vec<u8>>,
    rx: Mutex<Receiver<Vec<u8>>>,
}

/// A connected pair of loopback ends: `(coordinator_end, worker_end)`.
pub fn loopback_pair(label: &str) -> (LoopbackTransport, LoopbackTransport) {
    let (a_tx, a_rx) = channel();
    let (b_tx, b_rx) = channel();
    (
        LoopbackTransport {
            label: format!("loopback:{label}:coordinator"),
            tx: a_tx,
            rx: Mutex::new(b_rx),
        },
        LoopbackTransport {
            label: format!("loopback:{label}:worker"),
            tx: b_tx,
            rx: Mutex::new(a_rx),
        },
    )
}

impl LoopbackTransport {
    fn decode(frame: &[u8]) -> Result<Message, TransportError> {
        match wire::read_frame(&mut &frame[..]) {
            Ok(Some(msg)) => Ok(msg),
            Ok(None) => Err(TransportError::Protocol("empty frame".to_owned())),
            Err(e) => Err(e.into()),
        }
    }

    fn unframe(frame: &[u8]) -> Result<Vec<u8>, TransportError> {
        match wire::read_frame_payload(&mut &frame[..]) {
            Ok(Some(payload)) => Ok(payload),
            Ok(None) => Err(TransportError::Protocol("empty frame".to_owned())),
            Err(e) => Err(e.into()),
        }
    }
}

impl FrameTransport for LoopbackTransport {
    fn send_payload(&self, payload: &[u8]) -> Result<(), TransportError> {
        self.tx
            .send(wire::encode_payload_frame(payload))
            .map_err(|_| TransportError::Closed)
    }

    fn recv_payload(&self) -> Result<Vec<u8>, TransportError> {
        let frame = lock(&self.rx).recv().map_err(|_| TransportError::Closed)?;
        Self::unframe(&frame)
    }

    fn recv_payload_timeout(&self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        match lock(&self.rx).recv_timeout(timeout) {
            Ok(frame) => Self::unframe(&frame).map(Some),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn peer_label(&self) -> String {
        self.label.clone()
    }
}

impl Transport for LoopbackTransport {
    fn send(&self, msg: &Message) -> Result<(), TransportError> {
        self.tx
            .send(wire::encode_frame(msg))
            .map_err(|_| TransportError::Closed)
    }

    fn recv(&self) -> Result<Message, TransportError> {
        let frame = lock(&self.rx).recv().map_err(|_| TransportError::Closed)?;
        Self::decode(&frame)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>, TransportError> {
        match lock(&self.rx).recv_timeout(timeout) {
            Ok(frame) => Self::decode(&frame).map(Some),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn peer(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::PROTOCOL_VERSION;

    #[test]
    fn loopback_delivers_in_order_and_closes() {
        let (coord, worker) = loopback_pair("t");
        coord
            .send(&Message::Heartbeat { seq: 1 })
            .and_then(|()| coord.send(&Message::Bye))
            .unwrap();
        assert!(matches!(worker.recv(), Ok(Message::Heartbeat { seq: 1 })));
        assert!(matches!(worker.recv(), Ok(Message::Bye)));
        worker
            .send(&Message::Hello {
                worker: "w".to_owned(),
                protocol: PROTOCOL_VERSION,
                cached: Vec::new(),
            })
            .unwrap();
        drop(worker);
        assert!(matches!(coord.recv(), Ok(Message::Hello { .. })));
        assert!(matches!(coord.recv(), Err(TransportError::Closed)));
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let (coord, _worker) = loopback_pair("idle");
        assert!(matches!(
            coord.recv_timeout(Duration::from_millis(5)),
            Ok(None)
        ));
    }
}
