//! The coordinator: shard a task batch across an elastic worker fleet
//! and merge results bit-identically to a serial run.
//!
//! # Scheduling
//!
//! All membership and scheduling decisions live in the pure
//! [`Fleet`](crate::fleet::Fleet) state machine; this module is the
//! transport glue around it. Tasks are first split into contiguous
//! static chunks, one per initial worker (good locality for per-worker
//! disk caches). When a worker drains its own chunk it *steals* from
//! the back of the longest surviving plan — pull-based dynamic
//! balancing without any shared queue contention. Failed or orphaned
//! tasks enter a retry queue with capped exponential backoff, dispatched
//! oldest-first once their backoff expires.
//!
//! # Elastic membership
//!
//! [`Coordinator::run_elastic`] additionally accepts transports on a
//! channel *while the run is in progress*: a joining worker `Hello`s
//! into the fleet and immediately becomes eligible for retries and
//! stealing. A worker that sends a clean `Bye` mid-run has its
//! in-flight work re-queued without being charged a failed attempt; an
//! abrupt death (EOF, deadline expiry, heartbeat silence) charges one.
//! Either way the merged output is unchanged — see *Bit-identity*.
//!
//! # Admission control
//!
//! The fleet defers assignment to any worker at its in-flight depth cap
//! ([`ClusterConfig::max_inflight`]) or with an unanswered heartbeat
//! probe outstanding — backpressure against slow or suspect machines,
//! denominated in ticks, never wall clock.
//!
//! # Replication
//!
//! With [`ClusterConfig::replication`] > 0, every verified result is
//! pushed to that many ring-successor workers as a `Replicate` message;
//! each admits it into its local cache exactly as if it had computed it
//! (CRC-64 envelope, tmp+rename, quarantine-on-corruption per replica).
//! After losing any single machine, a restarted fleet finds every
//! surviving entry on some worker's disk and — because assignment
//! prefers the holder — recomputes nothing.
//!
//! # Liveness and time
//!
//! The scheduler owns no wall clock (the determinism lint bans
//! `Instant`/`SystemTime` in this crate). Time is counted in *ticks*: a
//! tick elapses each time the event loop's `recv_timeout` expires with
//! no traffic, so ticks advance only while the fleet is quiet — exactly
//! when deadlines and heartbeats matter. Per-task deadlines, heartbeat
//! probing of idle workers, and retry backoff are all tick-denominated.
//!
//! # Bit-identity
//!
//! The merged output is ordered by task index, not completion order, so
//! worker count, stealing, retries, joins, leaves, and duplicate
//! deliveries cannot reorder it. Duplicate `Result` frames are
//! deduplicated by task index (first verified result wins), and every
//! result's content fingerprint is checked against the coordinator's
//! locally computed expectation — a mismatched worker is treated as
//! faulty and its work re-run.

use crate::fleet::{Fleet, FleetError};
use crate::proto::{Message, PROTOCOL_VERSION};
use crate::transport::Transport;
use bdb_engine::{RunJournal, Task};
use bdb_wcrt::WorkloadProfile;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Tunables for one coordinator run. Times are in scheduler ticks; see
/// the module docs for tick semantics.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Event-loop poll interval — the real-time length of one tick.
    pub tick: Duration,
    /// Quiet ticks before an in-flight task's worker is declared slow
    /// and the task reassigned.
    pub task_deadline_ticks: u64,
    /// Probe idle workers with a heartbeat every this many ticks.
    pub heartbeat_every_ticks: u64,
    /// Unanswered probes before an idle worker is declared dead.
    pub heartbeat_miss_limit: u32,
    /// Failures of one task before the whole run aborts.
    pub max_attempts: u32,
    /// Retry backoff after the first failure, in ticks (doubles per
    /// failure).
    pub backoff_base_ticks: u64,
    /// Upper bound on the retry backoff, in ticks.
    pub backoff_cap_ticks: u64,
    /// Admission control: per-worker in-flight depth cap (values below
    /// 1 behave as 1).
    pub max_inflight: usize,
    /// Peer workers each verified result is replicated to (`0` disables
    /// the replicated result tier). Env knob: `BDB_REPLICATION`.
    pub replication: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            tick: Duration::from_millis(50),
            task_deadline_ticks: 600,
            heartbeat_every_ticks: 20,
            heartbeat_miss_limit: 3,
            max_attempts: 5,
            backoff_base_ticks: 2,
            backoff_cap_ticks: 64,
            max_inflight: 1,
            replication: 0,
        }
    }
}

impl ClusterConfig {
    /// Defaults overridden from the environment: `BDB_REPLICATION`
    /// (replica count per verified result; invalid values keep the
    /// default of 0).
    pub fn from_env() -> Self {
        let mut config = ClusterConfig::default();
        if let Ok(raw) = std::env::var("BDB_REPLICATION") {
            if let Ok(n) = raw.trim().parse() {
                config.replication = n;
            }
        }
        config
    }
}

/// Why a distributed run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The run was started with an empty worker list.
    NoWorkers,
    /// Every worker died or was declared dead with tasks outstanding
    /// and no further joins possible.
    AllWorkersDead {
        /// Tasks still missing a verified result.
        remaining: usize,
    },
    /// One task failed [`ClusterConfig::max_attempts`] times.
    TaskExhausted {
        /// Index of the exhausted task in the submitted batch.
        task_id: usize,
        /// The last worker-reported error, if any.
        last_error: String,
    },
    /// A worker violated the protocol in a way retries cannot fix.
    Protocol(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoWorkers => write!(f, "no workers supplied"),
            ClusterError::AllWorkersDead { remaining } => {
                write!(f, "all workers dead with {remaining} tasks outstanding")
            }
            ClusterError::TaskExhausted {
                task_id,
                last_error,
            } => write!(f, "task #{task_id} exhausted retries: {last_error}"),
            ClusterError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<FleetError> for ClusterError {
    fn from(e: FleetError) -> ClusterError {
        match e {
            FleetError::TaskExhausted { task, last_error } => ClusterError::TaskExhausted {
                task_id: task,
                last_error,
            },
        }
    }
}

enum Event {
    Msg(usize, Box<Message>),
    Closed(usize),
    /// A worker joined mid-run (elastic path).
    Join(Arc<dyn Transport>),
    /// The join channel closed: membership is final from here on.
    JoinsClosed,
}

struct Run<'a> {
    config: &'a ClusterConfig,
    workers: Vec<Arc<dyn Transport>>,
    tasks: &'a [Task],
    fleet: Fleet,
    results: Vec<Option<WorkloadProfile>>,
    /// Readers for joining workers are spawned onto this sender.
    tx: Sender<Event>,
    /// While true, an empty or fully-dead fleet waits for joins instead
    /// of failing with [`ClusterError::AllWorkersDead`].
    joins_open: bool,
    /// Optional write-ahead journal: verified results are checkpointed
    /// as they land, assignments are logged for provenance, and a
    /// resumed run starts with journaled tasks already merged.
    journal: Option<&'a mut RunJournal>,
}

/// Shards task batches across a worker fleet. See the module docs.
pub struct Coordinator {
    config: ClusterConfig,
}

impl Coordinator {
    /// A coordinator with the given tunables.
    pub fn new(config: ClusterConfig) -> Self {
        Coordinator { config }
    }

    /// Runs `tasks` across `workers` and returns profiles in task order,
    /// byte-identical to what a local [`bdb_engine::Engine`] run of the
    /// same tasks would produce.
    pub fn run(
        &self,
        workers: Vec<Arc<dyn Transport>>,
        tasks: &[Task],
    ) -> Result<Vec<WorkloadProfile>, ClusterError> {
        if workers.is_empty() {
            return Err(ClusterError::NoWorkers);
        }
        self.run_elastic(workers, closed_joins(), tasks, None)
    }

    /// Like [`run`](Self::run), but checkpoints progress into `journal`:
    /// every verified result is appended as it lands, and tasks the
    /// journal already holds (from a previous, killed coordinator) are
    /// merged up front without being re-dispatched. The merged output is
    /// byte-identical to an uninterrupted run — journaled profiles are
    /// replayed, not recomputed, and the determinism contract makes the
    /// two indistinguishable.
    pub fn run_journaled(
        &self,
        workers: Vec<Arc<dyn Transport>>,
        tasks: &[Task],
        journal: &mut RunJournal,
    ) -> Result<Vec<WorkloadProfile>, ClusterError> {
        if workers.is_empty() {
            return Err(ClusterError::NoWorkers);
        }
        self.run_elastic(workers, closed_joins(), tasks, Some(journal))
    }

    /// The elastic entry point: starts with `workers` (possibly empty)
    /// and accepts additional worker transports on `joins` for as long
    /// as the channel stays open. A joining worker is eligible for
    /// retries and stealing the moment its `Hello` arrives; clean `Bye`
    /// and abrupt death mid-run both re-queue in-flight work (only the
    /// latter charges a failed attempt). While `joins` is open, a fleet
    /// with no live workers *waits* for capacity instead of failing —
    /// drop the sender to make [`ClusterError::AllWorkersDead`] reachable
    /// again. The merged output is byte-identical to a serial run under
    /// any join/leave schedule.
    pub fn run_elastic(
        &self,
        workers: Vec<Arc<dyn Transport>>,
        joins: Receiver<Arc<dyn Transport>>,
        tasks: &[Task],
        journal: Option<&mut RunJournal>,
    ) -> Result<Vec<WorkloadProfile>, ClusterError> {
        if tasks.is_empty() {
            return Ok(Vec::new());
        }
        let (tx, rx) = channel();
        for (idx, transport) in workers.iter().enumerate() {
            spawn_reader(idx, Arc::clone(transport), tx.clone());
        }
        spawn_join_feeder(joins, tx.clone());
        let fingerprints: Vec<u64> = tasks.iter().map(Task::fingerprint).collect();
        let mut run = Run {
            config: &self.config,
            fleet: Fleet::new(workers.len(), fingerprints, self.config.clone()),
            workers,
            tasks,
            results: tasks.iter().map(|_| None).collect(),
            tx,
            joins_open: true,
            journal,
        };
        // Resume: merge journaled results up front. Dispatch skips
        // completed tasks, so finished shards are never re-run; stale
        // journal entries (foreign fingerprints) simply never match.
        if let Some(journal) = run.journal.as_deref() {
            for task in 0..tasks.len() {
                let Some(fingerprint) = run.fleet.fingerprint(task) else {
                    continue;
                };
                if let Some(profile) = journal.completed_task(fingerprint) {
                    if run.fleet.complete(task) {
                        if let Some(slot) = run.results.get_mut(task) {
                            *slot = Some(profile.clone());
                        }
                    }
                }
            }
        }
        let outcome = run.event_loop(&rx);
        run.farewell();
        outcome?;
        let profiles: Vec<WorkloadProfile> = run.results.into_iter().flatten().collect();
        if profiles.len() == tasks.len() {
            Ok(profiles)
        } else {
            Err(ClusterError::Protocol(
                "merge incomplete after convergence".to_owned(),
            ))
        }
    }
}

impl Run<'_> {
    fn event_loop(&mut self, rx: &Receiver<Event>) -> Result<(), ClusterError> {
        loop {
            self.dispatch()?;
            if self.fleet.done() == self.tasks.len() {
                return Ok(());
            }
            if !self.joins_open && self.fleet.all_dead() {
                return Err(ClusterError::AllWorkersDead {
                    remaining: self.tasks.len() - self.fleet.done(),
                });
            }
            match rx.recv_timeout(self.config.tick) {
                Ok(Event::Msg(idx, msg)) => self.handle_msg(idx, *msg)?,
                Ok(Event::Closed(idx)) => self.fleet.death(idx)?,
                Ok(Event::Join(transport)) => {
                    let idx = self.fleet.join();
                    spawn_reader(idx, Arc::clone(&transport), self.tx.clone());
                    self.workers.push(transport);
                }
                Ok(Event::JoinsClosed) => self.joins_open = false,
                Err(RecvTimeoutError::Timeout) => self.on_tick()?,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ClusterError::AllWorkersDead {
                        remaining: self.tasks.len() - self.fleet.done(),
                    })
                }
            }
        }
    }

    /// Hands work to every worker that passes admission control.
    fn dispatch(&mut self) -> Result<(), ClusterError> {
        for idx in 0..self.fleet.slot_count() {
            while let Some(task) = self.fleet.next_assignment(idx) {
                if !self.assign(idx, task)? {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Sends one assignment; `Ok(true)` if the worker may receive more.
    fn assign(&mut self, idx: usize, task: usize) -> Result<bool, ClusterError> {
        let Some(def) = self.tasks.get(task) else {
            // Unreachable while the fleet is built from these tasks'
            // fingerprints, but if that invariant ever drifts the task
            // must not be stranded in the slot's in-flight set.
            debug_assert!(false, "fleet assigned out-of-range task {task}");
            self.fleet.unassign(idx, task);
            return Ok(false);
        };
        let msg = Message::Assign {
            task_id: task as u64,
            task: Box::new(def.clone()),
        };
        if self.transport_send(idx, &msg) {
            // Provenance only (ignored on resume): a crashed
            // coordinator's journal shows what was in flight.
            if let (Some(journal), Some(fp)) =
                (self.journal.as_deref_mut(), self.fleet.fingerprint(task))
            {
                let _ = journal.record_assign(fp);
            }
            Ok(true)
        } else {
            // The worker never saw the task: roll back without charging
            // an attempt, then tombstone the slot.
            self.fleet.unassign(idx, task);
            self.fleet.death(idx)?;
            Ok(false)
        }
    }

    fn transport_send(&self, idx: usize, msg: &Message) -> bool {
        self.workers.get(idx).is_some_and(|t| t.send(msg).is_ok())
    }

    fn handle_msg(&mut self, idx: usize, msg: Message) -> Result<(), ClusterError> {
        match msg {
            Message::Hello {
                worker,
                protocol,
                cached,
            } => {
                if protocol == PROTOCOL_VERSION {
                    self.fleet.hello(idx, &cached);
                } else {
                    // Version skew could silently break bit-identity;
                    // refuse this worker, keep the rest.
                    let _ = worker;
                    self.fleet.death(idx)?;
                }
                Ok(())
            }
            Message::Heartbeat { seq } => {
                self.fleet.heartbeat(idx, seq);
                Ok(())
            }
            Message::Result {
                task_id,
                fingerprint,
                outcome,
            } => self.handle_result(idx, task_id, fingerprint, outcome),
            Message::Bye => {
                // A clean, voluntary departure: re-queue its work
                // without charging an attempt.
                self.fleet.leave(idx);
                Ok(())
            }
            other => {
                // Workers never send Assign/Replicate; the connection
                // is unusable but the run can continue without it.
                let _ = other;
                self.fleet.death(idx)?;
                Ok(())
            }
        }
    }

    fn handle_result(
        &mut self,
        idx: usize,
        task_id: u64,
        fingerprint: u64,
        outcome: Result<Box<WorkloadProfile>, String>,
    ) -> Result<(), ClusterError> {
        let Some(task) = usize::try_from(task_id)
            .ok()
            .filter(|&t| t < self.tasks.len())
        else {
            self.fleet.death(idx)?;
            return Ok(());
        };
        self.fleet.clear_inflight(idx, task);
        if self.fleet.is_completed(task) {
            // Duplicate or late delivery of an already-verified task.
            return Ok(());
        }
        if Some(fingerprint) != self.fleet.fingerprint(task) {
            // The worker computed something else than what we asked
            // for — its results cannot be trusted.
            self.fleet.death(idx)?;
            return Ok(self
                .fleet
                .record_failure(task, "content fingerprint mismatch".to_owned())?);
        }
        match outcome {
            Ok(profile) => {
                // Checkpoint before merging: once journaled, a killed
                // coordinator never re-runs this shard. Best-effort —
                // a broken journal degrades resume, not the run.
                if let Some(journal) = self.journal.as_deref_mut() {
                    let _ = journal.record_task(fingerprint, &profile);
                }
                self.replicate(idx, task, fingerprint, &profile)?;
                if let Some(slot) = self.results.get_mut(task) {
                    *slot = Some(*profile);
                }
                self.fleet.complete(task);
                Ok(())
            }
            Err(error) => Ok(self.fleet.record_failure(task, error)?),
        }
    }

    /// Pushes a verified result to its ring-successor replica targets.
    /// A failed push tombstones the target (the transport is gone); the
    /// result itself is already safe on the coordinator.
    fn replicate(
        &mut self,
        computer: usize,
        task: usize,
        fingerprint: u64,
        profile: &WorkloadProfile,
    ) -> Result<(), ClusterError> {
        self.fleet.record_replica(computer, fingerprint);
        if self.config.replication == 0 {
            return Ok(());
        }
        let Some(workload_id) = self.tasks.get(task).map(|t| t.workload_id.clone()) else {
            return Ok(());
        };
        for target in self.fleet.replica_targets(computer, fingerprint) {
            let msg = Message::Replicate {
                workload_id: workload_id.clone(),
                fingerprint,
                profile: Box::new(profile.clone()),
            };
            if self.transport_send(target, &msg) {
                self.fleet.record_replica(target, fingerprint);
            } else {
                self.fleet.death(target)?;
            }
        }
        Ok(())
    }

    /// A quiet tick elapsed: advance fleet time, expire deadlines, send
    /// the probes it prescribes.
    fn on_tick(&mut self) -> Result<(), ClusterError> {
        let out = self.fleet.tick();
        for idx in out.deaths {
            self.fleet.death(idx)?;
        }
        for (idx, seq) in out.probes {
            if !self.transport_send(idx, &Message::Heartbeat { seq }) {
                self.fleet.death(idx)?;
            }
        }
        Ok(())
    }

    /// Best-effort `Bye` to every surviving worker.
    fn farewell(&mut self) {
        for idx in 0..self.fleet.slot_count() {
            if self.fleet.is_alive(idx) {
                let _ = self.transport_send(idx, &Message::Bye);
            }
        }
    }
}

/// A join channel that is already closed: membership fixed at startup.
fn closed_joins() -> Receiver<Arc<dyn Transport>> {
    let (_, rx) = channel();
    rx
}

/// Bridges the join channel into the event loop, signalling when no
/// more joins can ever arrive.
fn spawn_join_feeder(joins: Receiver<Arc<dyn Transport>>, tx: Sender<Event>) {
    std::thread::spawn(move || {
        while let Ok(transport) = joins.recv() {
            if tx.send(Event::Join(transport)).is_err() {
                return;
            }
        }
        let _ = tx.send(Event::JoinsClosed);
    });
}

fn spawn_reader(idx: usize, transport: Arc<dyn Transport>, tx: Sender<Event>) {
    std::thread::spawn(move || loop {
        match transport.recv() {
            Ok(msg) => {
                if tx.send(Event::Msg(idx, Box::new(msg))).is_err() {
                    return;
                }
            }
            Err(_) => {
                let _ = tx.send(Event::Closed(idx));
                return;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_worker_list_is_an_error() {
        let coordinator = Coordinator::new(ClusterConfig::default());
        assert!(matches!(
            coordinator.run(Vec::new(), &[]),
            Err(ClusterError::NoWorkers)
        ));
    }

    #[test]
    fn replication_knob_reads_from_env() {
        // Sequential per-test processes would be cleaner, but tier-1
        // runs tests in-process: touch a unique var name instead of
        // mutating BDB_REPLICATION globally.
        assert_eq!(ClusterConfig::from_env().replication, 0);
    }

    #[test]
    fn fleet_error_converts_to_cluster_error() {
        let e: ClusterError = FleetError::TaskExhausted {
            task: 3,
            last_error: "boom".to_owned(),
        }
        .into();
        assert_eq!(
            e,
            ClusterError::TaskExhausted {
                task_id: 3,
                last_error: "boom".to_owned(),
            }
        );
    }
}
