//! The coordinator: shard a task batch across workers and merge results
//! bit-identically to a serial run.
//!
//! # Scheduling
//!
//! Tasks are first split into contiguous static chunks, one per worker
//! (good locality for per-worker disk caches). When a worker drains its
//! own chunk it *steals* from the back of the longest surviving plan —
//! pull-based dynamic balancing without any shared queue contention.
//! Failed or orphaned tasks enter a retry queue with capped exponential
//! backoff and are handed to the next idle worker once their backoff
//! expires.
//!
//! # Liveness and time
//!
//! The scheduler owns no wall clock (the determinism lint bans
//! `Instant`/`SystemTime` in this crate). Time is counted in *ticks*: a
//! tick elapses each time the event loop's `recv_timeout` expires with
//! no traffic, so ticks advance only while the fleet is quiet — exactly
//! when deadlines and heartbeats matter. Per-task deadlines, heartbeat
//! probing of idle workers, and retry backoff are all tick-denominated.
//!
//! # Bit-identity
//!
//! The merged output is ordered by task index, not completion order, so
//! worker count, stealing, retries, and duplicate deliveries cannot
//! reorder it. Duplicate `Result` frames are deduplicated by task index
//! (first verified result wins), and every result's content fingerprint
//! is checked against the coordinator's locally computed expectation —
//! a mismatched worker is treated as faulty and its work re-run.

use crate::proto::{Message, PROTOCOL_VERSION};
use crate::transport::Transport;
use bdb_engine::{RunJournal, Task};
use bdb_wcrt::WorkloadProfile;
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Tunables for one coordinator run. Times are in scheduler ticks; see
/// the module docs for tick semantics.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Event-loop poll interval — the real-time length of one tick.
    pub tick: Duration,
    /// Quiet ticks before an in-flight task's worker is declared slow
    /// and the task reassigned.
    pub task_deadline_ticks: u64,
    /// Probe idle workers with a heartbeat every this many ticks.
    pub heartbeat_every_ticks: u64,
    /// Unanswered probes before an idle worker is declared dead.
    pub heartbeat_miss_limit: u32,
    /// Failures of one task before the whole run aborts.
    pub max_attempts: u32,
    /// Retry backoff after the first failure, in ticks (doubles per
    /// failure).
    pub backoff_base_ticks: u64,
    /// Upper bound on the retry backoff, in ticks.
    pub backoff_cap_ticks: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            tick: Duration::from_millis(50),
            task_deadline_ticks: 600,
            heartbeat_every_ticks: 20,
            heartbeat_miss_limit: 3,
            max_attempts: 5,
            backoff_base_ticks: 2,
            backoff_cap_ticks: 64,
        }
    }
}

/// Why a distributed run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The run was started with an empty worker list.
    NoWorkers,
    /// Every worker died or was declared dead with tasks outstanding.
    AllWorkersDead {
        /// Tasks still missing a verified result.
        remaining: usize,
    },
    /// One task failed [`ClusterConfig::max_attempts`] times.
    TaskExhausted {
        /// Index of the exhausted task in the submitted batch.
        task_id: usize,
        /// The last worker-reported error, if any.
        last_error: String,
    },
    /// A worker violated the protocol in a way retries cannot fix.
    Protocol(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoWorkers => write!(f, "no workers supplied"),
            ClusterError::AllWorkersDead { remaining } => {
                write!(f, "all workers dead with {remaining} tasks outstanding")
            }
            ClusterError::TaskExhausted {
                task_id,
                last_error,
            } => write!(f, "task #{task_id} exhausted retries: {last_error}"),
            ClusterError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

enum Event {
    Msg(usize, Box<Message>),
    Closed(usize),
}

struct Busy {
    task: usize,
    deadline: u64,
}

struct WorkerState {
    ready: bool,
    alive: bool,
    busy: Option<Busy>,
    plan: VecDeque<usize>,
    probe: Option<u64>,
    missed: u32,
}

struct Run<'a> {
    config: &'a ClusterConfig,
    workers: &'a [Arc<dyn Transport>],
    tasks: &'a [Task],
    expected: Vec<u64>,
    states: Vec<WorkerState>,
    results: Vec<Option<WorkloadProfile>>,
    attempts: Vec<u32>,
    last_error: Vec<String>,
    /// `(task, not_before_tick)` — tasks awaiting reassignment.
    retry: VecDeque<(usize, u64)>,
    done: usize,
    now: u64,
    next_probe_seq: u64,
    /// Optional write-ahead journal: verified results are checkpointed
    /// as they land, assignments are logged for provenance, and a
    /// resumed run starts with journaled tasks already merged.
    journal: Option<&'a mut RunJournal>,
}

/// Shards task batches across a worker fleet. See the module docs.
pub struct Coordinator {
    config: ClusterConfig,
}

impl Coordinator {
    /// A coordinator with the given tunables.
    pub fn new(config: ClusterConfig) -> Self {
        Coordinator { config }
    }

    /// Runs `tasks` across `workers` and returns profiles in task order,
    /// byte-identical to what a local [`bdb_engine::Engine`] run of the
    /// same tasks would produce.
    pub fn run(
        &self,
        workers: Vec<Arc<dyn Transport>>,
        tasks: &[Task],
    ) -> Result<Vec<WorkloadProfile>, ClusterError> {
        self.run_inner(workers, tasks, None)
    }

    /// Like [`run`](Self::run), but checkpoints progress into `journal`:
    /// every verified result is appended as it lands, and tasks the
    /// journal already holds (from a previous, killed coordinator) are
    /// merged up front without being re-dispatched. The merged output is
    /// byte-identical to an uninterrupted run — journaled profiles are
    /// replayed, not recomputed, and the determinism contract makes the
    /// two indistinguishable.
    pub fn run_journaled(
        &self,
        workers: Vec<Arc<dyn Transport>>,
        tasks: &[Task],
        journal: &mut RunJournal,
    ) -> Result<Vec<WorkloadProfile>, ClusterError> {
        self.run_inner(workers, tasks, Some(journal))
    }

    fn run_inner(
        &self,
        workers: Vec<Arc<dyn Transport>>,
        tasks: &[Task],
        journal: Option<&mut RunJournal>,
    ) -> Result<Vec<WorkloadProfile>, ClusterError> {
        if workers.is_empty() {
            return Err(ClusterError::NoWorkers);
        }
        if tasks.is_empty() {
            return Ok(Vec::new());
        }
        let (tx, rx) = channel();
        for (idx, transport) in workers.iter().enumerate() {
            spawn_reader(idx, Arc::clone(transport), tx.clone());
        }
        let mut run = Run {
            config: &self.config,
            workers: &workers,
            tasks,
            expected: tasks.iter().map(Task::fingerprint).collect(),
            states: static_plans(workers.len(), tasks.len()),
            results: tasks.iter().map(|_| None).collect(),
            attempts: vec![0; tasks.len()],
            last_error: vec![String::new(); tasks.len()],
            retry: VecDeque::new(),
            done: 0,
            now: 0,
            next_probe_seq: 0,
            journal,
        };
        // Resume: merge journaled results up front. `dispatch` skips
        // completed tasks, so finished shards are never re-run; stale
        // journal entries (foreign fingerprints) simply never match.
        if let Some(journal) = run.journal.as_deref() {
            for (task, &fingerprint) in run.expected.iter().enumerate() {
                if let Some(profile) = journal.completed_task(fingerprint) {
                    run.results[task] = Some(profile.clone());
                    run.done += 1;
                }
            }
        }
        let outcome = run.event_loop(&rx);
        run.farewell();
        outcome?;
        let profiles: Vec<WorkloadProfile> = run.results.into_iter().flatten().collect();
        if profiles.len() == tasks.len() {
            Ok(profiles)
        } else {
            Err(ClusterError::Protocol(
                "merge incomplete after convergence".to_owned(),
            ))
        }
    }
}

impl Run<'_> {
    fn event_loop(&mut self, rx: &Receiver<Event>) -> Result<(), ClusterError> {
        loop {
            self.dispatch()?;
            if self.done == self.tasks.len() {
                return Ok(());
            }
            if self.states.iter().all(|s| !s.alive) {
                return Err(ClusterError::AllWorkersDead {
                    remaining: self.tasks.len() - self.done,
                });
            }
            match rx.recv_timeout(self.config.tick) {
                Ok(Event::Msg(idx, msg)) => self.handle_msg(idx, *msg)?,
                Ok(Event::Closed(idx)) => self.handle_death(idx),
                Err(RecvTimeoutError::Timeout) => self.on_tick()?,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ClusterError::AllWorkersDead {
                        remaining: self.tasks.len() - self.done,
                    })
                }
            }
        }
    }

    /// Hands work to every idle, ready worker.
    fn dispatch(&mut self) -> Result<(), ClusterError> {
        for idx in 0..self.states.len() {
            let state = &self.states[idx];
            if !(state.alive && state.ready && state.busy.is_none()) {
                continue;
            }
            while let Some(task) = self.next_task_for(idx) {
                // A retried copy may have completed through a late
                // result while queued; skip it.
                if self.results[task].is_some() {
                    continue;
                }
                self.assign(idx, task);
                break;
            }
        }
        Ok(())
    }

    /// Retry queue first, then the worker's own plan, then stealing.
    fn next_task_for(&mut self, idx: usize) -> Option<usize> {
        if let Some(pos) = self
            .retry
            .iter()
            .position(|&(_, not_before)| not_before <= self.now)
        {
            return self.retry.remove(pos).map(|(task, _)| task);
        }
        if let Some(task) = self.states[idx].plan.pop_front() {
            return Some(task);
        }
        let victim = (0..self.states.len())
            .filter(|&w| w != idx && self.states[w].alive)
            .max_by_key(|&w| self.states[w].plan.len())?;
        self.states[victim].plan.pop_back()
    }

    fn assign(&mut self, idx: usize, task: usize) {
        let msg = Message::Assign {
            task_id: task as u64,
            task: Box::new(self.tasks[task].clone()),
        };
        if self.workers[idx].send(&msg).is_ok() {
            self.states[idx].busy = Some(Busy {
                task,
                deadline: self.now + self.config.task_deadline_ticks,
            });
            // Provenance only (ignored on resume): a crashed
            // coordinator's journal shows what was in flight.
            if let Some(journal) = self.journal.as_deref_mut() {
                let _ = journal.record_assign(self.expected[task]);
            }
        } else {
            self.handle_death(idx);
            self.retry.push_back((task, self.now));
        }
    }

    fn handle_msg(&mut self, idx: usize, msg: Message) -> Result<(), ClusterError> {
        match msg {
            Message::Hello { worker, protocol } => {
                if protocol == PROTOCOL_VERSION {
                    self.states[idx].ready = true;
                } else {
                    // Version skew could silently break bit-identity;
                    // refuse this worker, keep the rest.
                    let peer = self.workers[idx].peer();
                    let _ = (worker, peer);
                    self.handle_death(idx);
                }
                Ok(())
            }
            Message::Heartbeat { seq } => {
                let state = &mut self.states[idx];
                if state.probe == Some(seq) {
                    state.probe = None;
                    state.missed = 0;
                }
                Ok(())
            }
            Message::Result {
                task_id,
                fingerprint,
                outcome,
            } => self.handle_result(idx, task_id, fingerprint, outcome),
            other => {
                // Workers never send Assign/Bye; the connection is
                // unusable but the run can continue without it.
                let _ = other;
                self.handle_death(idx);
                Ok(())
            }
        }
    }

    fn handle_result(
        &mut self,
        idx: usize,
        task_id: u64,
        fingerprint: u64,
        outcome: Result<Box<WorkloadProfile>, String>,
    ) -> Result<(), ClusterError> {
        let Some(task) = usize::try_from(task_id)
            .ok()
            .filter(|&t| t < self.tasks.len())
        else {
            self.handle_death(idx);
            return Ok(());
        };
        if let Some(busy) = &self.states[idx].busy {
            if busy.task == task {
                self.states[idx].busy = None;
            }
        }
        if self.results[task].is_some() {
            // Duplicate or late delivery of an already-verified task.
            return Ok(());
        }
        if fingerprint != self.expected[task] {
            // The worker computed something else than what we asked
            // for — its results cannot be trusted.
            self.handle_death(idx);
            return self.requeue_failure(task, "content fingerprint mismatch".to_owned());
        }
        match outcome {
            Ok(profile) => {
                // Checkpoint before merging: once journaled, a killed
                // coordinator never re-runs this shard. Best-effort —
                // a broken journal degrades resume, not the run.
                if let Some(journal) = self.journal.as_deref_mut() {
                    let _ = journal.record_task(fingerprint, &profile);
                }
                self.results[task] = Some(*profile);
                self.done += 1;
                Ok(())
            }
            Err(error) => self.requeue_failure(task, error),
        }
    }

    /// One failure of `task`: count the attempt, back off, requeue.
    fn requeue_failure(&mut self, task: usize, error: String) -> Result<(), ClusterError> {
        self.attempts[task] += 1;
        self.last_error[task] = error;
        if self.attempts[task] >= self.config.max_attempts {
            return Err(ClusterError::TaskExhausted {
                task_id: task,
                last_error: self.last_error[task].clone(),
            });
        }
        let backoff = self
            .config
            .backoff_base_ticks
            .saturating_shl(self.attempts[task] - 1)
            .min(self.config.backoff_cap_ticks);
        self.retry.push_back((task, self.now + backoff));
        Ok(())
    }

    /// The worker at `idx` is gone: orphan its in-flight task and drain
    /// its remaining plan back into the retry queue (no backoff — those
    /// tasks never failed).
    fn handle_death(&mut self, idx: usize) {
        let state = &mut self.states[idx];
        if !state.alive {
            return;
        }
        state.alive = false;
        state.ready = false;
        let orphan = state.busy.take().map(|b| b.task);
        let plan: Vec<usize> = state.plan.drain(..).collect();
        for task in plan {
            self.retry.push_back((task, self.now));
        }
        if let Some(task) = orphan {
            if self.results[task].is_none() {
                // The death itself counts as one failed attempt.
                let _ = self.requeue_failure(task, "worker died mid-task".to_owned());
            }
        }
    }

    /// A quiet tick elapsed: advance time, expire deadlines, probe idle
    /// workers.
    fn on_tick(&mut self) -> Result<(), ClusterError> {
        self.now += 1;
        for idx in 0..self.states.len() {
            let expired = matches!(
                &self.states[idx].busy,
                Some(busy) if busy.deadline <= self.now
            );
            if expired {
                // Slow worker: reassign elsewhere. Its late result, if
                // it ever lands, is deduplicated by task index.
                self.handle_death(idx);
            }
        }
        if self.now.is_multiple_of(self.config.heartbeat_every_ticks) {
            self.probe_idle_workers();
        }
        Ok(())
    }

    fn probe_idle_workers(&mut self) {
        for idx in 0..self.states.len() {
            let state = &self.states[idx];
            if !(state.alive && state.ready && state.busy.is_none()) {
                continue;
            }
            if self.states[idx].probe.is_some() {
                self.states[idx].missed += 1;
                if self.states[idx].missed > self.config.heartbeat_miss_limit {
                    self.handle_death(idx);
                    continue;
                }
            }
            self.next_probe_seq += 1;
            let seq = self.next_probe_seq;
            if self.workers[idx].send(&Message::Heartbeat { seq }).is_ok() {
                self.states[idx].probe = Some(seq);
            } else {
                self.handle_death(idx);
            }
        }
    }

    /// Best-effort `Bye` to every surviving worker.
    fn farewell(&mut self) {
        for idx in 0..self.states.len() {
            if self.states[idx].alive {
                let _ = self.workers[idx].send(&Message::Bye);
            }
        }
    }
}

/// Contiguous static chunks: worker `i` of `w` plans tasks
/// `[i*n/w, (i+1)*n/w)`.
fn static_plans(workers: usize, tasks: usize) -> Vec<WorkerState> {
    (0..workers)
        .map(|i| {
            let lo = i * tasks / workers;
            let hi = (i + 1) * tasks / workers;
            WorkerState {
                ready: false,
                alive: true,
                busy: None,
                plan: (lo..hi).collect(),
                probe: None,
                missed: 0,
            }
        })
        .collect()
}

fn spawn_reader(idx: usize, transport: Arc<dyn Transport>, tx: Sender<Event>) {
    std::thread::spawn(move || loop {
        match transport.recv() {
            Ok(msg) => {
                if tx.send(Event::Msg(idx, Box::new(msg))).is_err() {
                    return;
                }
            }
            Err(_) => {
                let _ = tx.send(Event::Closed(idx));
                return;
            }
        }
    });
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> Self {
        if shift >= 64 {
            u64::MAX
        } else {
            self.checked_shl(shift).unwrap_or(u64::MAX)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_plans_cover_all_tasks_contiguously() {
        for workers in 1..6 {
            for tasks in 0..20 {
                let states = static_plans(workers, tasks);
                let all: Vec<usize> = states.iter().flat_map(|s| s.plan.iter().copied()).collect();
                assert_eq!(all, (0..tasks).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn empty_worker_list_is_an_error() {
        let coordinator = Coordinator::new(ClusterConfig::default());
        assert!(matches!(
            coordinator.run(Vec::new(), &[]),
            Err(ClusterError::NoWorkers)
        ));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(2u64.saturating_shl(0), 2);
        assert_eq!(2u64.saturating_shl(3), 16);
        assert_eq!(2u64.saturating_shl(100), u64::MAX);
    }
}
