//! The shared `--help` renderer for the long-running daemons
//! (`bdb-clusterd`, `bdb-served`).
//!
//! The daemons used to hand-roll their usage strings, which drifted from
//! the engine's real knob surface (the clusterd text was missing four
//! `BDB_*` knobs it honoured). This module is the single source of the
//! daemon help layout: each binary supplies its summary, usage line,
//! options, and daemon-specific environment entries, and the shared
//! engine/wire knob block is appended — so the block cannot drift
//! per-binary, and `crates/bench/tests/help_consistency.rs` pins every
//! daemon to this renderer.

/// One `name` + `description` row of an OPTIONS or ENVIRONMENT block.
pub type HelpEntry<'a> = (&'a str, &'a str);

/// The environment knobs every daemon honours: the full
/// `EngineConfig::from_env` surface plus the wire-format selector. A
/// daemon built on the engine reads all of these, whether or not its
/// author remembered to document them — which is exactly why the list
/// lives here and not in each binary.
pub const DAEMON_ENGINE_ENV: &[HelpEntry<'static>] = &[
    (
        "BDB_THREADS",
        "Worker-pool width for the local engine (default: all cores)",
    ),
    (
        "BDB_POINT_THREADS",
        "Capacity-point fan-out width within one sweep (default: auto)",
    ),
    (
        "BDB_CACHE_DIR",
        "Profile-cache directory (default: results/cache/)",
    ),
    ("BDB_NO_CACHE", "Set to disable the disk cache"),
    (
        "BDB_CACHE_MAX_BYTES",
        "Disk-cache size cap in bytes with LRU eviction (default: unbounded)",
    ),
    (
        "BDB_CACHE_FORMAT",
        "Cache entry encoding: json (default) or binary",
    ),
    (
        "BDB_SWEEP_MODE",
        "Capacity-sweep strategy: fused (default) or per-point",
    ),
    ("BDB_JOURNAL", "Write-ahead run-journal path"),
    (
        "BDB_RESUME",
        "Set to resume completed work from the journal",
    ),
    (
        "BDB_WIRE_FORMAT",
        "Outbound wire payload encoding: json (default) or binary",
    ),
];

/// Renders one aligned `name  description` block line.
fn entry_line(out: &mut String, (name, desc): &HelpEntry<'_>) {
    out.push_str("    ");
    out.push_str(name);
    for _ in name.len()..24 {
        out.push(' ');
    }
    out.push(' ');
    out.push_str(desc);
    out.push('\n');
}

/// Renders a daemon's full `--help` text: summary, usage, options (with
/// `-h, --help` appended), then the ENVIRONMENT block — daemon-specific
/// entries first, the shared engine/wire block after.
pub fn help_text(
    bin: &str,
    summary: &str,
    usage: &str,
    options: &[HelpEntry<'_>],
    extra_env: &[HelpEntry<'_>],
) -> String {
    let mut out = format!("{bin}: {summary}\n\nUSAGE:\n    {usage}\n\nOPTIONS:\n");
    for entry in options {
        entry_line(&mut out, entry);
    }
    entry_line(&mut out, &("-h, --help", "Print this help"));
    out.push_str("\nENVIRONMENT:\n");
    for entry in extra_env {
        entry_line(&mut out, entry);
    }
    for entry in DAEMON_ENGINE_ENV {
        entry_line(&mut out, entry);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_blocks_in_order() {
        let text = help_text(
            "bdb-testd",
            "test daemon",
            "bdb-testd [--listen <addr>]",
            &[("--listen <addr>", "Bind address")],
            &[("BDB_TEST_KNOB", "A daemon-specific knob")],
        );
        assert!(text.starts_with("bdb-testd: test daemon\n"));
        for needle in [
            "USAGE:",
            "OPTIONS:",
            "--listen <addr>",
            "-h, --help",
            "ENVIRONMENT:",
            "BDB_TEST_KNOB",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
        for (name, _) in DAEMON_ENGINE_ENV {
            assert!(text.contains(name), "engine knob {name} missing");
        }
        let env_at = text.find("BDB_TEST_KNOB").unwrap();
        let engine_at = text.find("BDB_THREADS").unwrap();
        assert!(env_at < engine_at, "daemon-specific env renders first");
    }
}
