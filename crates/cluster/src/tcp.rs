//! Std-only TCP transport: length-prefixed frames over blocking sockets.
//!
//! No async runtime — the coordinator dedicates one reader thread per
//! worker connection and sends from the scheduler thread, so plain
//! blocking sockets with a writer/reader mutex pair are all that is
//! needed. `TCP_NODELAY` is set because the protocol is small
//! request/response frames, the worst case for Nagle batching.

use crate::proto::Message;
use crate::transport::{lock, FrameTransport, Transport, TransportError};
use crate::wire;
use std::io::{BufReader, ErrorKind, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

/// One TCP connection speaking the cluster frame protocol.
pub struct TcpTransport {
    peer: String,
    writer: Mutex<TcpStream>,
    reader: Mutex<BufReader<TcpStream>>,
}

impl TcpTransport {
    /// Connects to a worker (coordinator side).
    pub fn connect(addr: &str, timeout: Duration) -> Result<Self, TransportError> {
        let resolved = addr
            .to_socket_addrs()
            .map_err(|e| TransportError::Io(format!("resolve {addr}: {e}")))?
            .next()
            .ok_or_else(|| TransportError::Io(format!("resolve {addr}: no address")))?;
        let stream = TcpStream::connect_timeout(&resolved, timeout)
            .map_err(|e| TransportError::Io(format!("connect {addr}: {e}")))?;
        Self::from_stream(stream, addr)
    }

    /// Wraps an accepted connection (worker side).
    pub fn from_stream(stream: TcpStream, peer: &str) -> Result<Self, TransportError> {
        stream
            .set_nodelay(true)
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let reader = stream
            .try_clone()
            .map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(TcpTransport {
            peer: peer.to_owned(),
            writer: Mutex::new(stream),
            reader: Mutex::new(BufReader::new(reader)),
        })
    }

    fn set_read_timeout(
        reader: &BufReader<TcpStream>,
        timeout: Option<Duration>,
    ) -> Result<(), TransportError> {
        reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(|e| TransportError::Io(e.to_string()))
    }

    fn send_frame(&self, frame: &[u8]) -> Result<(), TransportError> {
        let mut writer = lock(&self.writer);
        writer
            .write_all(frame)
            .map_err(|e| TransportError::Io(e.to_string()))?;
        writer.flush().map_err(|e| {
            if e.kind() == ErrorKind::BrokenPipe || e.kind() == ErrorKind::ConnectionReset {
                TransportError::Closed
            } else {
                TransportError::Io(e.to_string())
            }
        })
    }

    fn recv_frame_payload(&self) -> Result<Vec<u8>, TransportError> {
        let mut reader = lock(&self.reader);
        Self::set_read_timeout(&reader, None)?;
        match wire::read_frame_payload(&mut *reader) {
            Ok(Some(payload)) => Ok(payload),
            Ok(None) => Err(TransportError::Closed),
            Err(wire::WireError::Io(e)) => Err(classify_io(&e)),
            Err(e) => Err(e.into()),
        }
    }

    /// Waits up to `timeout` for a frame to *start*; once the first
    /// header byte arrives the rest is read blocking, so a slow sender
    /// cannot leave a partial frame behind.
    fn recv_frame_payload_timeout(
        &self,
        timeout: Duration,
    ) -> Result<Option<Vec<u8>>, TransportError> {
        let mut reader = lock(&self.reader);
        Self::set_read_timeout(&reader, Some(timeout))?;
        let mut first = [0u8; 1];
        let n = loop {
            match std::io::Read::read(&mut *reader, &mut first) {
                Ok(n) => break n,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(None)
                }
                Err(e) => return Err(classify_io(&e.to_string())),
            }
        };
        if n == 0 {
            return Err(TransportError::Closed);
        }
        Self::set_read_timeout(&reader, None)?;
        let mut rest = [0u8; 3];
        std::io::Read::read_exact(&mut *reader, &mut rest)
            .map_err(|e| classify_io(&e.to_string()))?;
        let len = u32::from_be_bytes([first[0], rest[0], rest[1], rest[2]]);
        if len > wire::MAX_FRAME_BYTES {
            return Err(wire::WireError::TooLarge(len).into());
        }
        let mut payload = vec![0u8; len as usize];
        std::io::Read::read_exact(&mut *reader, &mut payload)
            .map_err(|e| classify_io(&e.to_string()))?;
        Ok(Some(payload))
    }
}

impl Transport for TcpTransport {
    fn send(&self, msg: &Message) -> Result<(), TransportError> {
        self.send_frame(&wire::encode_frame(msg))
    }

    fn recv(&self) -> Result<Message, TransportError> {
        let payload = self.recv_frame_payload()?;
        wire::decode_payload(&payload).map_err(TransportError::from)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>, TransportError> {
        match self.recv_frame_payload_timeout(timeout)? {
            Some(payload) => wire::decode_payload(&payload)
                .map(Some)
                .map_err(TransportError::from),
            None => Ok(None),
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

impl FrameTransport for TcpTransport {
    fn send_payload(&self, payload: &[u8]) -> Result<(), TransportError> {
        self.send_frame(&wire::encode_payload_frame(payload))
    }

    fn recv_payload(&self) -> Result<Vec<u8>, TransportError> {
        self.recv_frame_payload()
    }

    fn recv_payload_timeout(&self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        self.recv_frame_payload_timeout(timeout)
    }

    fn peer_label(&self) -> String {
        self.peer.clone()
    }
}

fn classify_io(detail: &str) -> TransportError {
    // EOF surfaced as read_exact's UnexpectedEof and peer resets both mean
    // the connection is gone; everything else stays an I/O error.
    let gone = ["unexpected end of file", "Connection reset", "Broken pipe"];
    if gone.iter().any(|g| detail.contains(g)) {
        TransportError::Closed
    } else {
        TransportError::Io(detail.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::PROTOCOL_VERSION;
    use std::net::TcpListener;

    #[test]
    fn tcp_roundtrip_and_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let t = TcpTransport::from_stream(stream, "client").unwrap();
            let msg = t.recv().unwrap();
            t.send(&msg).unwrap(); // echo
        });
        let t = TcpTransport::connect(&addr, Duration::from_secs(5)).unwrap();
        t.send(&Message::Hello {
            worker: "w".to_owned(),
            protocol: PROTOCOL_VERSION,
            cached: Vec::new(),
        })
        .unwrap();
        assert!(matches!(t.recv(), Ok(Message::Hello { .. })));
        server.join().unwrap();
        // Server thread dropped its end: next recv reports Closed.
        assert!(matches!(t.recv(), Err(TransportError::Closed)));
    }

    #[test]
    fn tcp_recv_timeout_is_none_when_idle() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let _keepalive = std::thread::spawn(move || listener.accept());
        let t = TcpTransport::connect(&addr, Duration::from_secs(5)).unwrap();
        assert!(matches!(
            t.recv_timeout(Duration::from_millis(10)),
            Ok(None)
        ));
    }
}
