//! Length-prefixed framing for [`Message`]s over byte streams.
//!
//! A frame is a 4-byte big-endian payload length followed by the
//! message payload: canonical JSON bytes, or — when
//! `BDB_WIRE_FORMAT=binary` — a checksummed BDBC `WireMessage` record
//! ([`bdb_codec`]). Decoding sniffs each payload's bytes (the BDBC
//! magic can never open a JSON object), so a mixed fleet interoperates:
//! the knob chooses what a sender writes, never what a receiver
//! accepts. The length cap ([`MAX_FRAME_BYTES`]) bounds allocation on
//! garbage input; a stream that ends mid-frame is a
//! [`WireError::Truncated`], distinct from the clean end-of-stream
//! (`Ok(None)`) at a frame boundary.

use crate::proto::{message_from_value, message_to_value, Message};
use bdb_engine::json;
use std::io::{ErrorKind, Read, Write};

/// Payload encoding for outgoing frames. The outer `[u32 BE len]`
/// framing is format-independent, and receivers sniff per payload, so
/// the two formats coexist on one connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WireFormat {
    /// Canonical-JSON payloads — the debug/interchange form.
    #[default]
    Json,
    /// BDBC `WireMessage` payloads — compact and CRC-64-checksummed.
    Binary,
}

impl WireFormat {
    /// The format selected by `BDB_WIRE_FORMAT` (`binary` / `bin` /
    /// `bdbc` pick [`WireFormat::Binary`]; anything else, or unset, is
    /// JSON). Read per call so tests and long-lived daemons observe
    /// changes without re-construction.
    pub fn from_env() -> Self {
        match std::env::var("BDB_WIRE_FORMAT") {
            Ok(v) if matches!(v.as_str(), "binary" | "bin" | "bdbc") => WireFormat::Binary,
            _ => WireFormat::Json,
        }
    }
}

/// Upper bound on one frame's payload (a full 77-task assign batch plus
/// profile results stay far under this; anything bigger is garbage).
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// A framing or codec failure on the byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended inside a frame (length prefix or payload).
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge(u32),
    /// The payload is not a valid message (JSON or schema error).
    Decode(String),
    /// An I/O error from the underlying stream.
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds cap {MAX_FRAME_BYTES}")
            }
            WireError::Decode(e) => write!(f, "frame payload decode failed: {e}"),
            WireError::Io(e) => write!(f, "stream I/O error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes one message as a length-prefixed frame in the format
/// selected by `BDB_WIRE_FORMAT` (see [`WireFormat::from_env`]).
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    encode_frame_with(WireFormat::from_env(), msg)
}

/// Encodes one message as a length-prefixed frame in `format`.
pub fn encode_frame_with(format: WireFormat, msg: &Message) -> Vec<u8> {
    let payload = match format {
        WireFormat::Json => message_to_value(msg).encode().into_bytes(),
        WireFormat::Binary => bdb_codec::encode_record(
            bdb_codec::RecordKind::WireMessage,
            &bdb_codec::bval::encode_value(&message_to_value(msg)),
        ),
    };
    encode_payload_frame(&payload)
}

/// Wraps an already-encoded payload in the outer `[u32 BE len]` frame.
/// This is the protocol-agnostic half of the framing: `bdb-serve` reuses
/// it with its own payload codec, so both protocols share one frame
/// layout (and one size cap) on the wire.
pub fn encode_payload_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(payload.len() + 4);
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Reads one frame's raw payload from `r` without interpreting it.
/// `Ok(None)` is a clean end-of-stream at a frame boundary; a stream
/// that ends mid-frame is [`WireError::Truncated`].
pub fn read_frame_payload(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    match read_exact_or_eof(r, &mut len_buf)? {
        ReadOutcome::CleanEof => return Ok(None),
        ReadOutcome::Truncated => return Err(WireError::Truncated),
        ReadOutcome::Filled => {}
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_or_eof(r, &mut payload)? {
        ReadOutcome::Filled => {}
        ReadOutcome::CleanEof | ReadOutcome::Truncated => return Err(WireError::Truncated),
    }
    Ok(Some(payload))
}

/// Writes one frame to `w` (no flush; the caller flushes per batch).
pub fn write_frame(w: &mut impl Write, msg: &Message) -> Result<(), WireError> {
    w.write_all(&encode_frame(msg))
        .map_err(|e| WireError::Io(e.to_string()))
}

/// Reads one frame from `r`. `Ok(None)` is a clean end-of-stream at a
/// frame boundary; an end-of-stream after at least one payload byte was
/// promised is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Message>, WireError> {
    match read_frame_payload(r)? {
        Some(payload) => decode_payload(&payload).map(Some),
        None => Ok(None),
    }
}

/// Decodes every frame in `buf` (testing / offline inspection). Errors
/// carry the index of the first bad frame.
pub fn decode_frames(buf: &[u8]) -> Result<Vec<Message>, (usize, WireError)> {
    let mut r = buf;
    let mut messages = Vec::new();
    loop {
        match read_frame(&mut r) {
            Ok(Some(msg)) => messages.push(msg),
            Ok(None) => return Ok(messages),
            Err(e) => return Err((messages.len(), e)),
        }
    }
}

/// Decodes one frame payload (format-sniffed) into a [`Message`].
pub fn decode_payload(payload: &[u8]) -> Result<Message, WireError> {
    let value = if bdb_codec::is_binary(payload) {
        let inner = bdb_codec::decode_record_of(bdb_codec::RecordKind::WireMessage, payload)
            .map_err(|e| WireError::Decode(e.to_string()))?;
        bdb_codec::bval::decode_value(inner).map_err(|e| WireError::Decode(e.to_string()))?
    } else {
        let text = std::str::from_utf8(payload)
            .map_err(|e| WireError::Decode(format!("not UTF-8: {e}")))?;
        json::parse(text).map_err(|e| WireError::Decode(format!("{e:?}")))?
    };
    message_from_value(&value).map_err(|e| WireError::Decode(e.0))
}

enum ReadOutcome {
    /// The buffer was filled completely.
    Filled,
    /// End-of-stream before the first byte.
    CleanEof,
    /// End-of-stream after at least one byte.
    Truncated,
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        // bdb-lint: allow(panic-reachability): the loop condition bounds `filled` below buf.len()
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::CleanEof
                } else {
                    ReadOutcome::Truncated
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(ReadOutcome::Filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::PROTOCOL_VERSION;

    fn hello() -> Message {
        Message::Hello {
            worker: "w".to_owned(),
            protocol: PROTOCOL_VERSION,
            cached: Vec::new(),
        }
    }

    #[test]
    fn frame_roundtrips_through_a_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &hello()).unwrap();
        write_frame(&mut buf, &Message::Bye).unwrap();
        let msgs = decode_frames(&buf).unwrap();
        assert_eq!(msgs.len(), 2);
        assert_eq!(encode_frame(&msgs[0]), encode_frame(&hello()));
        assert_eq!(encode_frame(&msgs[1]), encode_frame(&Message::Bye));
    }

    #[test]
    fn truncated_payload_is_an_error_not_eof() {
        let frame = encode_frame(&hello());
        for cut in 1..frame.len() {
            let err = decode_frames(&frame[..cut]).unwrap_err();
            assert_eq!(err, (0, WireError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn binary_frames_roundtrip_and_mix_with_json_on_one_stream() {
        // A stream alternating formats decodes message-for-message: the
        // receiver sniffs each payload, so a mixed fleet interoperates.
        let mut buf = Vec::new();
        buf.extend_from_slice(&encode_frame_with(WireFormat::Binary, &hello()));
        buf.extend_from_slice(&encode_frame_with(
            WireFormat::Json,
            &Message::Heartbeat { seq: 9 },
        ));
        buf.extend_from_slice(&encode_frame_with(WireFormat::Binary, &Message::Bye));
        let msgs = decode_frames(&buf).unwrap();
        assert_eq!(msgs.len(), 3);
        // Decoded messages re-encode identically in either format.
        for (msg, original) in
            msgs.iter()
                .zip([hello(), Message::Heartbeat { seq: 9 }, Message::Bye])
        {
            assert_eq!(
                encode_frame_with(WireFormat::Binary, msg),
                encode_frame_with(WireFormat::Binary, &original)
            );
            assert_eq!(
                encode_frame_with(WireFormat::Json, msg),
                encode_frame_with(WireFormat::Json, &original)
            );
        }
    }

    #[test]
    fn truncated_binary_frame_is_an_error_not_eof() {
        let frame = encode_frame_with(WireFormat::Binary, &hello());
        for cut in 1..frame.len() {
            let err = decode_frames(&frame[..cut]).unwrap_err();
            assert_eq!(err, (0, WireError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_in_a_binary_payload_are_decode_errors() {
        let frame = encode_frame_with(WireFormat::Binary, &hello());
        // Flip payload bits only (past the 4-byte length prefix); every
        // flip must surface as a decode error, never a wrong message.
        for bit in 32..frame.len() * 8 {
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                matches!(decode_frames(&bad), Err((0, WireError::Decode(_)))),
                "bit {bit} undetected"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = (MAX_FRAME_BYTES + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(&[0; 8]);
        assert!(matches!(
            decode_frames(&buf),
            Err((0, WireError::TooLarge(_)))
        ));
    }

    #[test]
    fn garbage_payload_is_a_decode_error() {
        let mut buf = 3u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"{{{");
        assert!(matches!(
            decode_frames(&buf),
            Err((0, WireError::Decode(_)))
        ));
    }
}
