//! The fleet membership + scheduling state machine, free of I/O.
//!
//! [`Fleet`] owns every scheduling decision the coordinator makes —
//! which worker gets which task, when a slow worker is declared dead,
//! how failed tasks back off — but never touches a transport, a clock,
//! or a journal. The coordinator translates wire events into calls on
//! this machine and performs the sends it prescribes; property tests
//! drive the same machine through arbitrary join/leave/death/steal
//! interleavings without a single socket.
//!
//! # Membership
//!
//! Slots are append-only: [`Fleet::join`] adds a worker mid-run with an
//! empty plan (it becomes eligible for retries and stealing the moment
//! its `Hello` lands via [`Fleet::hello`]), and a departed worker's slot
//! is tombstoned, never reused. A clean leave ([`Fleet::leave`], the
//! worker sent `Bye`) re-queues its in-flight work after one base
//! backoff without charging an attempt — the worker did nothing wrong.
//! A death ([`Fleet::death`] — EOF, deadline expiry, heartbeat silence)
//! charges each orphaned in-flight task one failed attempt, entering the
//! same capped-exponential backoff as a reported failure.
//!
//! # Admission control
//!
//! A worker is assignable only while its in-flight depth is below
//! [`crate::ClusterConfig::max_inflight`] and it has no unanswered
//! heartbeat probe (a *suspect* — shedding load away from a machine
//! that may already be gone costs one tick of idleness if it answers,
//! and saves a full task deadline if it does not). Retry dispatch is
//! queue-age ordered: among eligible entries the oldest-queued goes
//! first, so no task starves behind younger failures. All of it is
//! tick-denominated; the machine owns no wall clock.
//!
//! # Replica affinity
//!
//! Each slot remembers the content fingerprints its worker advertised in
//! `Hello` plus every replica the coordinator has pushed to it since
//! ([`Fleet::record_replica`]). [`Fleet::next_assignment`] prefers tasks
//! the worker already holds, and *defers* a task held by another alive,
//! ready worker (that holder will take it via its own affinity
//! preference — with finitely many tasks every holder drains its queue,
//! so deferral cannot deadlock: if the holder dies or leaves, the
//! deferral lapses with it). This is what makes a warm restart after
//! losing a machine recompute nothing: every surviving entry is routed
//! to a worker that still has it on disk.
//!
//! The task set is *conserved* through all of this: an incomplete task
//! lives in exactly one place (one plan, one in-flight slot, or the
//! retry queue), and a completed task is merged exactly once.
//! [`Fleet::check_conservation`] asserts that invariant; the membership
//! property tests call it after every operation.

use crate::coordinator::ClusterConfig;
use std::collections::{BTreeSet, VecDeque};

/// Why the fleet cannot finish the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// One task failed [`ClusterConfig::max_attempts`] times.
    TaskExhausted {
        /// Index of the exhausted task in the submitted batch.
        task: usize,
        /// The last recorded error for that task.
        last_error: String,
    },
}

/// One in-flight assignment.
#[derive(Debug, Clone)]
struct Busy {
    task: usize,
    deadline: u64,
}

/// One queued re-dispatch.
#[derive(Debug, Clone)]
struct Retry {
    task: usize,
    /// Earliest tick the task may be re-assigned (backoff).
    not_before: u64,
    /// Tick the task entered the queue — dispatch is oldest-first.
    queued_at: u64,
}

/// One worker slot. Tombstoned (never reused) once dead or departed.
#[derive(Debug)]
struct Slot {
    /// `Hello` received with a matching protocol version.
    ready: bool,
    /// Still part of the fleet.
    alive: bool,
    inflight: Vec<Busy>,
    plan: VecDeque<usize>,
    /// Content fingerprints this worker is known to hold (advertised in
    /// `Hello`, plus replicas pushed since).
    cached: BTreeSet<u64>,
    /// Outstanding heartbeat probe sequence number.
    probe: Option<u64>,
    missed: u32,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            ready: false,
            alive: true,
            inflight: Vec::new(),
            plan: VecDeque::new(),
            cached: BTreeSet::new(),
            probe: None,
            missed: 0,
        }
    }
}

/// What one quiet tick asks the coordinator to do.
#[derive(Debug, Default)]
pub struct TickOutcome {
    /// Slots to declare dead: a task deadline expired or the heartbeat
    /// miss limit was crossed. Pass each to [`Fleet::death`].
    pub deaths: Vec<usize>,
    /// Heartbeat probes to send, `(slot, seq)`. The fleet already
    /// recorded the outstanding probe; a failed send is a death.
    pub probes: Vec<(usize, u64)>,
}

/// The pure membership + scheduling state machine. See the module docs.
pub struct Fleet {
    config: ClusterConfig,
    slots: Vec<Slot>,
    /// Expected content fingerprint per task (affinity + replica math).
    fingerprints: Vec<u64>,
    completed: Vec<bool>,
    attempts: Vec<u32>,
    last_error: Vec<String>,
    retry: VecDeque<Retry>,
    done: usize,
    now: u64,
    next_probe_seq: u64,
}

impl Fleet {
    /// A fleet of `workers` initial slots over the task batch described
    /// by `fingerprints` (one per task, in task order). Tasks are split
    /// into contiguous static chunks, one per initial worker — good
    /// locality for per-worker disk caches. With zero initial workers
    /// (an elastic run built entirely from joins) there are no plans to
    /// hold the tasks, so every task is seeded into the retry queue,
    /// eligible immediately — conservation demands each incomplete task
    /// live somewhere, and joiners start with empty plans.
    pub fn new(workers: usize, fingerprints: Vec<u64>, config: ClusterConfig) -> Fleet {
        let tasks = fingerprints.len();
        let slots: Vec<Slot> = (0..workers)
            .map(|i| {
                let lo = i * tasks / workers.max(1);
                let hi = (i + 1) * tasks / workers.max(1);
                Slot {
                    plan: (lo..hi).collect(),
                    ..Slot::empty()
                }
            })
            .collect();
        let mut retry = VecDeque::new();
        if workers == 0 {
            retry.extend((0..tasks).map(|task| Retry {
                task,
                not_before: 0,
                queued_at: 0,
            }));
        }
        Fleet {
            config,
            slots,
            completed: vec![false; tasks],
            attempts: vec![0; tasks],
            last_error: vec![String::new(); tasks],
            fingerprints,
            retry,
            done: 0,
            now: 0,
            next_probe_seq: 0,
        }
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Tasks merged so far.
    pub fn done(&self) -> usize {
        self.done
    }

    /// Total tasks in the batch.
    pub fn task_count(&self) -> usize {
        self.completed.len()
    }

    /// Number of slots ever created (alive or tombstoned).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Whether `slot` is still part of the fleet.
    pub fn is_alive(&self, slot: usize) -> bool {
        self.slots.get(slot).is_some_and(|s| s.alive)
    }

    /// Whether every slot is dead or departed (vacuously true for an
    /// empty fleet — the caller decides whether more joins may arrive).
    pub fn all_dead(&self) -> bool {
        self.slots.iter().all(|s| !s.alive)
    }

    /// The expected content fingerprint of `task`, if in range.
    pub fn fingerprint(&self, task: usize) -> Option<u64> {
        self.fingerprints.get(task).copied()
    }

    /// Adds a mid-run worker with an empty plan; returns its slot index.
    /// It becomes eligible for retries and stealing once [`Fleet::hello`]
    /// marks it ready.
    pub fn join(&mut self) -> usize {
        self.slots.push(Slot::empty());
        self.slots.len() - 1
    }

    /// The worker introduced itself with a compatible protocol version,
    /// advertising the content fingerprints already in its cache.
    pub fn hello(&mut self, slot: usize, cached: &[u64]) {
        if let Some(s) = self.slots.get_mut(slot) {
            if s.alive {
                s.ready = true;
                s.cached.extend(cached.iter().copied());
            }
        }
    }

    /// The worker answered a heartbeat probe.
    pub fn heartbeat(&mut self, slot: usize, seq: u64) {
        if let Some(s) = self.slots.get_mut(slot) {
            if s.probe == Some(seq) {
                s.probe = None;
                s.missed = 0;
            }
        }
    }

    /// The coordinator pushed (or observed) a replica of `fingerprint`
    /// on `slot`; affinity dispatch will prefer routing the matching
    /// task there.
    pub fn record_replica(&mut self, slot: usize, fingerprint: u64) {
        if let Some(s) = self.slots.get_mut(slot) {
            s.cached.insert(fingerprint);
        }
    }

    /// The alive, ready slots that should receive a replica of
    /// `fingerprint` — up to [`ClusterConfig::replication`] ring
    /// successors of `computer` that do not already hold it.
    pub fn replica_targets(&self, computer: usize, fingerprint: u64) -> Vec<usize> {
        let n = self.slots.len();
        if n == 0 || self.config.replication == 0 {
            return Vec::new();
        }
        let mut targets = Vec::new();
        for step in 1..n {
            let idx = (computer + step) % n;
            let Some(s) = self.slots.get(idx) else {
                continue;
            };
            if s.alive && s.ready && !s.cached.contains(&fingerprint) {
                targets.push(idx);
                if targets.len() >= self.config.replication {
                    break;
                }
            }
        }
        targets
    }

    /// Clean departure: the worker sent `Bye`. Its plan re-queues with
    /// no delay and its in-flight tasks re-queue after one base backoff
    /// — no attempt is charged, because the worker did nothing wrong.
    pub fn leave(&mut self, slot: usize) {
        let backoff = self
            .config
            .backoff_base_ticks
            .min(self.config.backoff_cap_ticks);
        let Some(s) = self.slots.get_mut(slot) else {
            return;
        };
        if !s.alive {
            return;
        }
        s.alive = false;
        s.ready = false;
        s.probe = None;
        s.cached.clear();
        let plan: Vec<usize> = s.plan.drain(..).collect();
        let orphans: Vec<usize> = s.inflight.drain(..).map(|b| b.task).collect();
        for task in plan {
            self.requeue(task, 0);
        }
        for task in orphans {
            if !self.completed.get(task).copied().unwrap_or(true) {
                self.requeue(task, backoff);
            }
        }
    }

    /// Abrupt departure: EOF, deadline expiry, heartbeat silence, or a
    /// protocol violation. The remaining plan re-queues without backoff
    /// (those tasks never failed); each orphaned in-flight task is
    /// charged one failed attempt, which can exhaust the task.
    pub fn death(&mut self, slot: usize) -> Result<(), FleetError> {
        let Some(s) = self.slots.get_mut(slot) else {
            return Ok(());
        };
        if !s.alive {
            return Ok(());
        }
        s.alive = false;
        s.ready = false;
        s.probe = None;
        s.cached.clear();
        let plan: Vec<usize> = s.plan.drain(..).collect();
        let orphans: Vec<usize> = s.inflight.drain(..).map(|b| b.task).collect();
        for task in plan {
            self.requeue(task, 0);
        }
        let mut outcome = Ok(());
        for task in orphans {
            if self.completed.get(task).copied().unwrap_or(true) {
                continue;
            }
            // Surface the first exhaustion but keep requeueing the rest:
            // a partial drain would strand tasks outside every queue.
            let failed = self.record_failure(task, "worker died mid-task".to_owned());
            if outcome.is_ok() {
                outcome = failed;
            }
        }
        outcome
    }

    /// Removes `task` from `slot`'s in-flight set (a result arrived, or
    /// the assignment is being rolled back). No-op if absent.
    pub fn clear_inflight(&mut self, slot: usize, task: usize) {
        if let Some(s) = self.slots.get_mut(slot) {
            s.inflight.retain(|b| b.task != task);
        }
    }

    /// Rolls back an assignment whose send failed before the worker saw
    /// it: back to the queue with no delay and no attempt charged.
    pub fn unassign(&mut self, slot: usize, task: usize) {
        self.clear_inflight(slot, task);
        if !self.completed.get(task).copied().unwrap_or(true) {
            self.requeue(task, 0);
        }
    }

    /// Marks `task` merged. Returns `false` for a duplicate or late
    /// delivery (first verified result wins).
    pub fn complete(&mut self, task: usize) -> bool {
        match self.completed.get_mut(task) {
            Some(done) if !*done => {
                *done = true;
                self.done += 1;
                true
            }
            _ => false,
        }
    }

    /// Whether `task` has already been merged.
    pub fn is_completed(&self, task: usize) -> bool {
        self.completed.get(task).copied().unwrap_or(false)
    }

    /// One failure of `task`: charge the attempt, back off, re-queue.
    pub fn record_failure(&mut self, task: usize, error: String) -> Result<(), FleetError> {
        let Some(attempts) = self.attempts.get_mut(task) else {
            return Ok(());
        };
        *attempts += 1;
        let attempts = *attempts;
        if let Some(slot) = self.last_error.get_mut(task) {
            *slot = error;
        }
        if attempts >= self.config.max_attempts {
            return Err(FleetError::TaskExhausted {
                task,
                last_error: self.last_error.get(task).cloned().unwrap_or_default(),
            });
        }
        let backoff = saturating_shl(self.config.backoff_base_ticks, attempts - 1)
            .min(self.config.backoff_cap_ticks);
        self.requeue(task, backoff);
        Ok(())
    }

    fn requeue(&mut self, task: usize, delay: u64) {
        self.retry.push_back(Retry {
            task,
            not_before: self.now + delay,
            queued_at: self.now,
        });
    }

    /// Whether `slot` passes admission control right now: alive, ready,
    /// in-flight depth below the cap, and not a suspect (no unanswered
    /// heartbeat probe).
    pub fn assignable(&self, slot: usize) -> bool {
        self.slots.get(slot).is_some_and(|s| {
            s.alive
                && s.ready
                && s.inflight.len() < self.config.max_inflight.max(1)
                && s.probe.is_none()
        })
    }

    /// Picks the next task for `slot` and marks it in-flight with a
    /// fresh deadline, or `None` when admission control defers the
    /// worker or no candidate is available. Preference order: tasks the
    /// worker already holds (retry queue, own plan, then stolen), then
    /// unheld work — skipping tasks held by *another* alive, ready
    /// worker, which will claim them through its own affinity.
    pub fn next_assignment(&mut self, slot: usize) -> Option<usize> {
        loop {
            if !self.assignable(slot) {
                return None;
            }
            let task = self.pick_candidate(slot)?;
            if self.is_completed(task) {
                // A stale retry copy of an already-merged task.
                continue;
            }
            let deadline = self.now + self.config.task_deadline_ticks;
            if let Some(s) = self.slots.get_mut(slot) {
                s.inflight.push(Busy { task, deadline });
            }
            return Some(task);
        }
    }

    /// Removes and returns the best candidate task for `slot`.
    fn pick_candidate(&mut self, slot: usize) -> Option<usize> {
        // 1. Oldest eligible retry entry this worker already holds.
        if let Some(pos) = self.best_retry(slot, true) {
            return self.retry.remove(pos).map(|r| r.task);
        }
        // 2. First own-plan task this worker already holds.
        if let Some(pos) = self.plan_position(slot, |fp, held| held.contains(&fp)) {
            return self.slots.get_mut(slot).and_then(|s| s.plan.remove(pos));
        }
        // 3. Steal a held task from any other surviving plan.
        if let Some((victim, pos)) = self.steal_position(slot, true) {
            return self.slots.get_mut(victim).and_then(|s| s.plan.remove(pos));
        }
        // 4–6. Unheld work, deferring tasks held by another alive,
        // ready worker (that holder will take them itself).
        if let Some(pos) = self.best_retry(slot, false) {
            return self.retry.remove(pos).map(|r| r.task);
        }
        let deferred = |fleet: &Fleet, fp: u64| fleet.held_elsewhere(slot, fp);
        if let Some(pos) = self.plan_position(slot, |fp, _| !deferred(self, fp)) {
            return self.slots.get_mut(slot).and_then(|s| s.plan.remove(pos));
        }
        if let Some((victim, pos)) = self.steal_position(slot, false) {
            return self.slots.get_mut(victim).and_then(|s| s.plan.remove(pos));
        }
        None
    }

    /// Index of the best eligible retry entry for `slot`: the oldest
    /// queued among those the worker holds (`held_only`), or — for the
    /// fallback pass — the oldest queued that no other alive, ready
    /// worker holds.
    fn best_retry(&self, slot: usize, held_only: bool) -> Option<usize> {
        let holds = |task: usize| {
            self.fingerprints
                .get(task)
                .is_some_and(|fp| self.slots.get(slot).is_some_and(|s| s.cached.contains(fp)))
        };
        let mut best: Option<(u64, usize)> = None;
        for (pos, entry) in self.retry.iter().enumerate() {
            if entry.not_before > self.now {
                continue;
            }
            if held_only {
                if !holds(entry.task) {
                    continue;
                }
            } else if !holds(entry.task) && self.task_held_elsewhere(slot, entry.task) {
                continue;
            }
            if best.is_none_or(|(age, _)| entry.queued_at < age) {
                best = Some((entry.queued_at, pos));
            }
        }
        best.map(|(_, pos)| pos)
    }

    /// First position in `slot`'s own plan whose task fingerprint
    /// satisfies `keep(fingerprint, slot's cached set)`.
    fn plan_position(
        &self,
        slot: usize,
        keep: impl Fn(u64, &BTreeSet<u64>) -> bool,
    ) -> Option<usize> {
        let s = self.slots.get(slot)?;
        s.plan.iter().position(|&task| {
            self.fingerprints
                .get(task)
                .is_some_and(|&fp| keep(fp, &s.cached))
        })
    }

    /// A steal target for `slot`: when `held_only`, any task in another
    /// surviving plan that `slot` already holds; otherwise the deepest
    /// position from the back of the longest surviving plan whose task
    /// is not held by another alive, ready worker.
    fn steal_position(&self, slot: usize, held_only: bool) -> Option<(usize, usize)> {
        if held_only {
            let held = &self.slots.get(slot)?.cached;
            for (victim, s) in self.slots.iter().enumerate() {
                if victim == slot || !s.alive {
                    continue;
                }
                if let Some(pos) = s.plan.iter().position(|&task| {
                    self.fingerprints
                        .get(task)
                        .is_some_and(|fp| held.contains(fp))
                }) {
                    return Some((victim, pos));
                }
            }
            return None;
        }
        let victim = (0..self.slots.len())
            .filter(|&w| w != slot && self.slots.get(w).is_some_and(|s| s.alive))
            .max_by_key(|&w| self.slots.get(w).map_or(0, |s| s.plan.len()))?;
        let plan = &self.slots.get(victim)?.plan;
        // Steal from the back (locality for the victim's own front), but
        // skip tasks another alive, ready worker holds.
        let pos = plan
            .iter()
            .rposition(|&task| !self.task_held_elsewhere(slot, task))?;
        Some((victim, pos))
    }

    /// Whether `fingerprint` is held by an alive, ready worker other
    /// than `slot` — the deferral predicate for unheld dispatch.
    fn held_elsewhere(&self, slot: usize, fingerprint: u64) -> bool {
        self.slots
            .iter()
            .enumerate()
            .any(|(idx, s)| idx != slot && s.alive && s.ready && s.cached.contains(&fingerprint))
    }

    fn task_held_elsewhere(&self, slot: usize, task: usize) -> bool {
        self.fingerprints
            .get(task)
            .is_some_and(|&fp| self.held_elsewhere(slot, fp))
    }

    /// A quiet tick elapsed: advance time, expire deadlines, and decide
    /// which idle workers to probe. The caller performs the sends and
    /// passes each listed death to [`Fleet::death`].
    pub fn tick(&mut self) -> TickOutcome {
        self.now += 1;
        let mut out = TickOutcome::default();
        for (idx, s) in self.slots.iter().enumerate() {
            if s.alive && s.inflight.iter().any(|b| b.deadline <= self.now) {
                // Slow worker: reassign elsewhere. Its late result, if
                // it ever lands, is deduplicated by task index.
                out.deaths.push(idx);
            }
        }
        if self.now.is_multiple_of(self.config.heartbeat_every_ticks) {
            for idx in 0..self.slots.len() {
                if out.deaths.contains(&idx) {
                    continue;
                }
                let Some(s) = self.slots.get_mut(idx) else {
                    continue;
                };
                if !(s.alive && s.ready && s.inflight.is_empty()) {
                    continue;
                }
                if s.probe.is_some() {
                    s.missed += 1;
                    if s.missed > self.config.heartbeat_miss_limit {
                        out.deaths.push(idx);
                        continue;
                    }
                }
                self.next_probe_seq += 1;
                s.probe = Some(self.next_probe_seq);
                out.probes.push((idx, self.next_probe_seq));
            }
        }
        out
    }

    /// Merges a task completed by a previous run (journal resume): it
    /// will never be dispatched. Safe to call before any scheduling.
    pub fn preload(&mut self, task: usize) {
        self.complete(task);
    }

    /// Verifies task-set conservation: every incomplete task lives in
    /// exactly one place (one plan, one in-flight entry, or the retry
    /// queue), and a completed task has at most one stale copy still
    /// queued (it will be skipped at dispatch). Property tests call
    /// this after every operation; production code never needs to.
    pub fn check_conservation(&self) -> Result<(), String> {
        let mut counts = vec![0usize; self.completed.len()];
        let mut record = |task: usize, what: &str| -> Result<(), String> {
            match counts.get_mut(task) {
                Some(n) => {
                    *n += 1;
                    Ok(())
                }
                None => Err(format!("{what} holds out-of-range task {task}")),
            }
        };
        for (idx, s) in self.slots.iter().enumerate() {
            if !s.alive && (!s.plan.is_empty() || !s.inflight.is_empty()) {
                return Err(format!("tombstoned slot {idx} still holds work"));
            }
            for &task in &s.plan {
                record(task, "a plan")?;
            }
            for b in &s.inflight {
                record(b.task, "an in-flight set")?;
            }
        }
        for entry in &self.retry {
            record(entry.task, "the retry queue")?;
        }
        for (task, &count) in counts.iter().enumerate() {
            let done = self.completed.get(task).copied().unwrap_or(false);
            match (done, count) {
                (false, 1) | (true, 0) | (true, 1) => {}
                (false, 0) => return Err(format!("incomplete task {task} is nowhere")),
                (_, n) => return Err(format!("task {task} appears {n} times")),
            }
        }
        let done = self.completed.iter().filter(|&&d| d).count();
        if done != self.done {
            return Err(format!("done counter {} != completed {done}", self.done));
        }
        Ok(())
    }
}

/// `value << shift`, saturating at `u64::MAX` instead of wrapping.
pub(crate) fn saturating_shl(value: u64, shift: u32) -> u64 {
    if shift >= 64 {
        u64::MAX
    } else {
        value.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ClusterConfig {
        ClusterConfig::default()
    }

    fn ready_fleet(workers: usize, tasks: usize) -> Fleet {
        let mut fleet = Fleet::new(workers, (0..tasks as u64).collect(), config());
        for slot in 0..workers {
            fleet.hello(slot, &[]);
        }
        fleet
    }

    #[test]
    fn static_plans_cover_all_tasks_contiguously() {
        for workers in 1..6 {
            for tasks in 0..20 {
                let fleet = Fleet::new(workers, (0..tasks as u64).collect(), config());
                let all: Vec<usize> = fleet
                    .slots
                    .iter()
                    .flat_map(|s| s.plan.iter().copied())
                    .collect();
                assert_eq!(all, (0..tasks).collect::<Vec<_>>());
                fleet.check_conservation().unwrap();
            }
        }
    }

    #[test]
    fn empty_fleet_seeds_tasks_into_the_retry_queue() {
        // Regression: with 0 initial workers the tasks used to live in
        // no plan, no in-flight set, and no queue — unreachable by any
        // joiner, so a join-only elastic run hung forever.
        let mut fleet = Fleet::new(0, (0..4).collect(), config());
        fleet.check_conservation().unwrap();
        let joiner = fleet.join();
        fleet.hello(joiner, &[]);
        let mut drained = Vec::new();
        while let Some(task) = fleet.next_assignment(joiner) {
            drained.push(task);
            fleet.clear_inflight(joiner, task);
            fleet.complete(task);
        }
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 1, 2, 3], "joiner drains the whole batch");
        fleet.check_conservation().unwrap();
    }

    #[test]
    fn joiner_steals_from_surviving_plans() {
        let mut fleet = ready_fleet(1, 6);
        let joiner = fleet.join();
        assert!(!fleet.assignable(joiner), "not ready before hello");
        fleet.hello(joiner, &[]);
        let task = fleet.next_assignment(joiner).expect("steals work");
        assert!(task < 6);
        fleet.check_conservation().unwrap();
    }

    #[test]
    fn leave_requeues_inflight_without_charging_an_attempt() {
        let mut fleet = ready_fleet(1, 3);
        let task = fleet.next_assignment(0).unwrap();
        fleet.leave(0);
        fleet.check_conservation().unwrap();
        assert_eq!(fleet.attempts.get(task).copied(), Some(0));
        // The orphan is delayed by one base backoff; the joiner picks up
        // the rest of the plan immediately.
        let joiner = fleet.join();
        fleet.hello(joiner, &[]);
        for _ in 0..2 {
            let t = fleet.next_assignment(joiner).expect("plan remainder");
            assert_ne!(t, task, "backoff defers the orphan");
            fleet.clear_inflight(joiner, t);
            fleet.complete(t);
        }
        assert_eq!(fleet.next_assignment(joiner), None, "orphan still delayed");
        for _ in 0..config().backoff_base_ticks {
            fleet.tick();
        }
        assert_eq!(fleet.next_assignment(joiner), Some(task));
    }

    #[test]
    fn death_charges_one_attempt_and_can_exhaust() {
        let mut fleet = Fleet::new(1, vec![0], config());
        for round in 0..config().max_attempts {
            let joiner = if round == 0 { 0 } else { fleet.join() };
            // Tick past any backoff before `hello`: a not-yet-ready
            // slot is never probed, so it cannot become a suspect.
            for _ in 0..=config().backoff_cap_ticks {
                fleet.tick();
            }
            fleet.hello(joiner, &[]);
            assert_eq!(fleet.next_assignment(joiner), Some(0));
            let outcome = fleet.death(joiner);
            if round + 1 == config().max_attempts {
                assert!(matches!(
                    outcome,
                    Err(FleetError::TaskExhausted { task: 0, .. })
                ));
            } else {
                outcome.unwrap();
                fleet.check_conservation().unwrap();
            }
        }
    }

    #[test]
    fn admission_defers_suspects_and_caps_depth() {
        let mut fleet = ready_fleet(1, 4);
        assert!(fleet.assignable(0));
        fleet.next_assignment(0).unwrap();
        assert!(!fleet.assignable(0), "depth cap of 1 reached");
        // An idle worker with an outstanding probe is a suspect.
        let mut fleet = ready_fleet(1, 0);
        let mut out = TickOutcome::default();
        for _ in 0..config().heartbeat_every_ticks {
            out = fleet.tick();
        }
        assert_eq!(out.probes.len(), 1);
        assert!(!fleet.assignable(0), "suspect sheds load");
        fleet.heartbeat(0, out.probes[0].1);
        assert!(fleet.assignable(0));
    }

    #[test]
    fn affinity_prefers_and_defers_held_tasks() {
        let mut fleet = Fleet::new(2, vec![100, 200, 300, 400], config());
        fleet.hello(0, &[300]);
        fleet.hello(1, &[200]);
        // Worker 0's plan is [0,1]; it holds task 2's fingerprint, which
        // sits in worker 1's plan — stolen first by affinity.
        assert_eq!(fleet.next_assignment(0), Some(2));
        // Worker 0's own task 1 is held by worker 1 — deferred; it takes
        // its unheld task 0 instead (after completing task 2).
        fleet.clear_inflight(0, 2);
        fleet.complete(2);
        assert_eq!(fleet.next_assignment(0), Some(0));
        // Worker 1 claims its held task 1 out of worker 0's plan.
        assert_eq!(fleet.next_assignment(1), Some(1));
        fleet.check_conservation().unwrap();
    }

    #[test]
    fn deferral_lapses_when_the_holder_dies() {
        let mut fleet = Fleet::new(2, vec![100, 200], config());
        fleet.hello(0, &[]);
        fleet.hello(1, &[100, 200]);
        fleet.next_assignment(1).unwrap();
        // Both remaining tasks are held by worker 1 — worker 0 defers.
        assert_eq!(fleet.next_assignment(0), None);
        fleet.death(1).unwrap();
        fleet.check_conservation().unwrap();
        // The holder is gone; worker 0 now takes whatever is eligible.
        assert!(fleet.next_assignment(0).is_some());
    }

    #[test]
    fn replica_targets_ring_skips_holders_and_dead_slots() {
        let mut config = config();
        config.replication = 2;
        let mut fleet = Fleet::new(4, vec![7], config);
        for slot in 0..4 {
            fleet.hello(slot, &[]);
        }
        fleet.record_replica(2, 7);
        fleet.death(1).unwrap();
        // Ring from slot 0: 1 is dead, 2 already holds it, 3 remains.
        assert_eq!(fleet.replica_targets(0, 7), vec![3]);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(saturating_shl(2, 0), 2);
        assert_eq!(saturating_shl(2, 3), 16);
        assert_eq!(saturating_shl(2, 100), u64::MAX);
    }

    #[test]
    fn retry_dispatch_is_queue_age_ordered() {
        let mut fleet = ready_fleet(1, 3);
        let first = fleet.next_assignment(0).unwrap();
        fleet.unassign(0, first);
        fleet.tick();
        let second = fleet.next_assignment(0).unwrap();
        assert_eq!(second, first, "oldest queued entry dispatches first");
        fleet.unassign(0, second);
        fleet.check_conservation().unwrap();
    }
}
