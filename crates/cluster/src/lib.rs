//! `bdb-cluster` — distributed coordinator/worker execution of the
//! trace → sim → wcrt profiling fleet.
//!
//! The paper's characterization sweep profiles 77 workloads; locally the
//! [`bdb_engine::Engine`] fans that out over threads. This crate shards
//! the same task batch across *processes* (loopback channels in tests,
//! TCP workers in real runs) and merges the results **byte-identically**
//! to a serial engine run — the same canonical JSON, in the same task
//! order, regardless of worker count, stealing, retries, crashes, or
//! duplicated frames.
//!
//! Layers, bottom up:
//!
//! * [`proto`] — the six-message protocol (`Hello`/`Assign`/`Result`/
//!   `Replicate`/`Heartbeat`/`Bye`) encoded as `bdb-engine` canonical
//!   JSON.
//! * [`wire`] — 4-byte length-prefixed framing with a size cap and a
//!   strict truncated-stream error.
//! * [`transport`] — the [`Transport`] trait plus the in-process
//!   loopback implementation; [`tcp`] adds the std-only blocking TCP
//!   implementation (no async runtime).
//! * [`fault`] — [`FaultPlan`] injection (connection drops, delays,
//!   worker crashes, duplicated results) for exercising recovery paths.
//! * [`worker`] — the blocking serve loop around a local cache-aware
//!   engine; advertises its warm cache in `Hello` and admits
//!   `Replicate` pushes into it.
//! * [`fleet`] — the pure membership + scheduling state machine: live
//!   join/leave, admission control (in-flight depth, suspect deferral),
//!   replica affinity, capped-exponential-backoff retry.
//! * [`coordinator`] — the transport glue around [`fleet`]: static
//!   chunking + work stealing, tick-based deadlines and heartbeats,
//!   fingerprint-verified deduplicating merge, elastic membership via
//!   [`Coordinator::run_elastic`], and replica pushes.
//!
//! # Example (three in-process workers)
//!
//! ```
//! use bdb_cluster::{loopback_pair, run_worker, WorkerConfig};
//! use bdb_cluster::{ClusterConfig, Coordinator, Transport};
//! use bdb_engine::{Engine, Task};
//! use bdb_node::NodeConfig;
//! use bdb_sim::MachineConfig;
//! use bdb_workloads::{catalog, Scale};
//! use std::sync::Arc;
//!
//! let mut ends = Vec::new();
//! for i in 0..3 {
//!     let (coord_end, worker_end) = loopback_pair(&format!("w{i}"));
//!     std::thread::spawn(move || {
//!         let engine = Engine::in_memory();
//!         run_worker(&worker_end, &engine, &WorkerConfig::named(&format!("w{i}")))
//!     });
//!     ends.push(Arc::new(coord_end) as Arc<dyn Transport>);
//! }
//! let workloads = catalog::full_catalog();
//! let tasks: Vec<Task> = workloads
//!     .iter()
//!     .take(6)
//!     .map(|w| Task::new(w, Scale::tiny(), &MachineConfig::xeon_e5645(), &NodeConfig::default()))
//!     .collect();
//! let profiles = Coordinator::new(ClusterConfig::default()).run(ends, &tasks).unwrap();
//! assert_eq!(profiles.len(), 6);
//! ```

pub mod coordinator;
pub mod fault;
pub mod fleet;
pub mod help;
pub mod proto;
pub mod tcp;
pub mod transport;
pub mod wire;
pub mod worker;

pub use coordinator::{ClusterConfig, ClusterError, Coordinator};
pub use fault::{FaultPlan, FaultyTransport};
pub use fleet::{Fleet, FleetError};
pub use help::help_text as daemon_help_text;
pub use help::DAEMON_ENGINE_ENV;
pub use proto::{Message, PROTOCOL_VERSION};
pub use tcp::TcpTransport;
pub use transport::{loopback_pair, FrameTransport, LoopbackTransport, Transport, TransportError};
pub use wire::{WireError, WireFormat, MAX_FRAME_BYTES};
pub use worker::{run_worker, WorkerConfig, WorkerError};

use bdb_engine::Task;
use bdb_node::NodeConfig;
use bdb_sim::MachineConfig;
use bdb_wcrt::WorkloadProfile;
use bdb_workloads::{Scale, WorkloadDef};
use std::sync::Arc;

/// Builds the task batch for a workload sweep: one [`Task`] per workload,
/// all on the same scale/machine/node — the distributed analogue of
/// [`bdb_engine::Engine::profile_all`].
pub fn fleet_tasks(
    workloads: &[WorkloadDef],
    scale: Scale,
    machine: &MachineConfig,
    node: &NodeConfig,
) -> Vec<Task> {
    workloads
        .iter()
        .map(|w| Task::new(w, scale, machine, node))
        .collect()
}

/// Profiles `workloads` across `workers` with default cluster tunables,
/// returning profiles in workload order (byte-identical to a local
/// engine run).
pub fn profile_all_distributed(
    workers: Vec<Arc<dyn Transport>>,
    workloads: &[WorkloadDef],
    scale: Scale,
    machine: &MachineConfig,
    node: &NodeConfig,
) -> Result<Vec<WorkloadProfile>, ClusterError> {
    let tasks = fleet_tasks(workloads, scale, machine, node);
    Coordinator::new(ClusterConfig::default()).run(workers, &tasks)
}

/// Like [`profile_all_distributed`], but checkpoints every verified
/// result into `journal` as it lands, and merges journaled results from
/// a previous (killed) coordinator up front instead of re-dispatching
/// those shards. Output stays byte-identical to an uninterrupted run.
pub fn profile_all_distributed_journaled(
    workers: Vec<Arc<dyn Transport>>,
    workloads: &[WorkloadDef],
    scale: Scale,
    machine: &MachineConfig,
    node: &NodeConfig,
    journal: &mut bdb_engine::RunJournal,
) -> Result<Vec<WorkloadProfile>, ClusterError> {
    let tasks = fleet_tasks(workloads, scale, machine, node);
    Coordinator::new(ClusterConfig::default()).run_journaled(workers, &tasks, journal)
}
