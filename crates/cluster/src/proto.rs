//! The cluster message set and its canonical-JSON codec.
//!
//! Six message kinds cross the wire (paper-fleet semantics in
//! parentheses):
//!
//! * [`Message::Hello`] — worker → coordinator on connect; carries the
//!   worker's name, protocol version, and the content fingerprints
//!   already in its cache (node registration + warm-state
//!   advertisement for affinity scheduling).
//! * [`Message::Assign`] — coordinator → worker; one [`Task`] plus the
//!   coordinator's task index (job dispatch).
//! * [`Message::Result`] — worker → coordinator; the task index, the
//!   task's content fingerprint, and either the profile or an error
//!   string (job completion).
//! * [`Message::Replicate`] — coordinator → worker; a verified profile
//!   pushed for admission into the worker's local cache (the replicated
//!   result tier). No reply — a failed send tombstones the target.
//! * [`Message::Heartbeat`] — either direction; the receiver echoes the
//!   sequence number (liveness probe).
//! * [`Message::Bye`] — either direction; orderly session end. A worker
//!   sending it leaves the fleet cleanly (its in-flight work re-queues
//!   without being charged a failed attempt).
//!
//! Encoding reuses `bdb-engine`'s canonical JSON (insertion-ordered
//! objects, shortest-roundtrip floats), so every message — including the
//! embedded profile — is byte-stable: `encode(decode(bytes)) == bytes`.
//! Decoding is strict; unknown message types or malformed fields are
//! [`DecodeError`]s, which the transport layer surfaces as protocol
//! errors rather than silently skipping frames.

use bdb_engine::codec::{self, DecodeError};
use bdb_engine::json::Value;
use bdb_engine::Task;
use bdb_wcrt::WorkloadProfile;

/// Bumped on any wire-visible change; [`Message::Hello`] carries it and
/// the coordinator refuses workers with a different version (a skewed
/// worker could compute with different code and break bit-identity).
/// v2 added `Hello.cached` and [`Message::Replicate`].
pub const PROTOCOL_VERSION: u32 = 2;

/// One protocol message. See the module docs for the six kinds.
#[derive(Debug, Clone)]
pub enum Message {
    /// Worker self-introduction after connecting.
    Hello {
        /// Worker name (diagnostics only; not part of any cache key).
        worker: String,
        /// The worker's [`PROTOCOL_VERSION`].
        protocol: u32,
        /// Content fingerprints already in the worker's disk cache —
        /// the coordinator routes matching tasks here first, which is
        /// what makes a warm restart recompute nothing.
        cached: Vec<u64>,
    },
    /// Task dispatch.
    Assign {
        /// Coordinator-side task index (position in the submitted batch).
        task_id: u64,
        /// The work itself.
        task: Box<Task>,
    },
    /// Task completion (success or failure).
    Result {
        /// Echo of the [`Message::Assign`] task index.
        task_id: u64,
        /// The task's content fingerprint — the dedup key for duplicate
        /// or late results.
        fingerprint: u64,
        /// The profile, or the worker-side error rendering.
        outcome: Result<Box<WorkloadProfile>, String>,
    },
    /// A verified profile pushed for admission into the worker's local
    /// cache (replicated result tier). The worker persists it exactly
    /// like a locally computed entry and sends no reply.
    Replicate {
        /// Workload id the entry belongs to (names the cache file).
        workload_id: String,
        /// The entry's content fingerprint (the cache key).
        fingerprint: u64,
        /// The profile itself.
        profile: Box<WorkloadProfile>,
    },
    /// Liveness probe; the receiver echoes `seq` back.
    Heartbeat {
        /// Probe sequence number.
        seq: u64,
    },
    /// Orderly end of session.
    Bye,
}

/// Encodes a message as a canonical-JSON [`Value`] tree.
pub fn message_to_value(msg: &Message) -> Value {
    match msg {
        Message::Hello {
            worker,
            protocol,
            cached,
        } => Value::object(vec![
            ("type", Value::Str("hello".to_owned())),
            ("worker", Value::Str(worker.clone())),
            ("protocol", Value::UInt(u64::from(*protocol))),
            (
                "cached",
                Value::Array(
                    cached
                        .iter()
                        .map(|fp| Value::Str(format!("{fp:016x}")))
                        .collect(),
                ),
            ),
        ]),
        Message::Assign { task_id, task } => Value::object(vec![
            ("type", Value::Str("assign".to_owned())),
            ("task_id", Value::UInt(*task_id)),
            ("task", codec::task_to_value(task)),
        ]),
        Message::Result {
            task_id,
            fingerprint,
            outcome,
        } => {
            let mut pairs = vec![
                ("type", Value::Str("result".to_owned())),
                ("task_id", Value::UInt(*task_id)),
                ("fingerprint", Value::Str(format!("{fingerprint:016x}"))),
            ];
            match outcome {
                Ok(profile) => pairs.push(("profile", codec::profile_to_value(profile))),
                Err(error) => pairs.push(("error", Value::Str(error.clone()))),
            }
            Value::object(pairs)
        }
        Message::Replicate {
            workload_id,
            fingerprint,
            profile,
        } => Value::object(vec![
            ("type", Value::Str("replicate".to_owned())),
            ("workload", Value::Str(workload_id.clone())),
            ("fingerprint", Value::Str(format!("{fingerprint:016x}"))),
            ("profile", codec::profile_to_value(profile)),
        ]),
        Message::Heartbeat { seq } => Value::object(vec![
            ("type", Value::Str("heartbeat".to_owned())),
            ("seq", Value::UInt(*seq)),
        ]),
        Message::Bye => Value::object(vec![("type", Value::Str("bye".to_owned()))]),
    }
}

fn get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, DecodeError> {
    v.get(key)
        .ok_or_else(|| DecodeError(format!("{key}: missing")))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, DecodeError> {
    get(v, key)?
        .as_u64()
        .ok_or_else(|| DecodeError(format!("{key}: expected unsigned integer")))
}

fn get_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, DecodeError> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| DecodeError(format!("{key}: expected string")))
}

fn get_fingerprint(v: &Value, key: &str) -> Result<u64, DecodeError> {
    u64::from_str_radix(get_str(v, key)?, 16)
        .map_err(|_| DecodeError(format!("{key}: expected 16 hex digits")))
}

/// Decodes a message from a [`Value`] tree (strict).
pub fn message_from_value(v: &Value) -> Result<Message, DecodeError> {
    match get_str(v, "type")? {
        "hello" => {
            // `cached` arrived with protocol v2; tolerate its absence so
            // the version check in Hello, not a decode error, is what
            // refuses a skewed worker.
            let cached = match v.get("cached") {
                None => Vec::new(),
                Some(Value::Array(items)) => items
                    .iter()
                    .map(|item| {
                        let hex = item.as_str().ok_or_else(|| {
                            DecodeError("cached: expected hex strings".to_owned())
                        })?;
                        u64::from_str_radix(hex, 16)
                            .map_err(|_| DecodeError("cached: expected 16 hex digits".to_owned()))
                    })
                    .collect::<Result<Vec<u64>, DecodeError>>()?,
                Some(_) => return Err(DecodeError("cached: expected array".to_owned())),
            };
            Ok(Message::Hello {
                worker: get_str(v, "worker")?.to_owned(),
                protocol: u32::try_from(get_u64(v, "protocol")?)
                    .map_err(|_| DecodeError("protocol: out of range".to_owned()))?,
                cached,
            })
        }
        "assign" => Ok(Message::Assign {
            task_id: get_u64(v, "task_id")?,
            task: Box::new(codec::task_from_value(get(v, "task")?)?),
        }),
        "result" => {
            let fingerprint = get_fingerprint(v, "fingerprint")?;
            let outcome = match (v.get("profile"), v.get("error")) {
                (Some(profile), None) => Ok(Box::new(codec::profile_from_value(profile)?)),
                (None, Some(error)) => Err(error
                    .as_str()
                    .ok_or_else(|| DecodeError("error: expected string".to_owned()))?
                    .to_owned()),
                _ => {
                    return Err(DecodeError(
                        "result: exactly one of profile/error required".to_owned(),
                    ))
                }
            };
            Ok(Message::Result {
                task_id: get_u64(v, "task_id")?,
                fingerprint,
                outcome,
            })
        }
        "replicate" => Ok(Message::Replicate {
            workload_id: get_str(v, "workload")?.to_owned(),
            fingerprint: get_fingerprint(v, "fingerprint")?,
            profile: Box::new(codec::profile_from_value(get(v, "profile")?)?),
        }),
        "heartbeat" => Ok(Message::Heartbeat {
            seq: get_u64(v, "seq")?,
        }),
        "bye" => Ok(Message::Bye),
        other => Err(DecodeError(format!("unknown message type {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_engine::json;

    fn roundtrip(msg: &Message) -> Message {
        let bytes = message_to_value(msg).encode();
        let back = message_from_value(&json::parse(&bytes).unwrap()).unwrap();
        // Byte stability: re-encoding the decoded message is the identity.
        assert_eq!(message_to_value(&back).encode(), bytes);
        back
    }

    #[test]
    fn control_messages_roundtrip() {
        roundtrip(&Message::Hello {
            worker: "w0".to_owned(),
            protocol: PROTOCOL_VERSION,
            cached: vec![0x1234, u64::MAX],
        });
        roundtrip(&Message::Heartbeat { seq: 42 });
        roundtrip(&Message::Bye);
        roundtrip(&Message::Result {
            task_id: 7,
            fingerprint: 0xdead_beef,
            outcome: Err("boom".to_owned()),
        });
    }

    #[test]
    fn hello_without_cached_decodes_as_empty() {
        let v = json::parse("{\"type\":\"hello\",\"worker\":\"w0\",\"protocol\":1}").unwrap();
        match message_from_value(&v).unwrap() {
            Message::Hello {
                protocol, cached, ..
            } => {
                assert_eq!(protocol, 1);
                assert!(cached.is_empty());
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn unknown_type_rejected() {
        let v = json::parse("{\"type\":\"warp\"}").unwrap();
        assert!(message_from_value(&v).is_err());
    }

    #[test]
    fn result_requires_exactly_one_payload() {
        let v =
            json::parse("{\"type\":\"result\",\"task_id\":1,\"fingerprint\":\"00000000000000ff\"}")
                .unwrap();
        assert!(message_from_value(&v).is_err());
    }

    #[test]
    fn malformed_cached_entries_rejected() {
        let v =
            json::parse("{\"type\":\"hello\",\"worker\":\"w\",\"protocol\":2,\"cached\":[\"zz\"]}")
                .unwrap();
        assert!(message_from_value(&v).is_err());
    }
}
