//! The worker loop: execute assigned tasks with a local [`Engine`].
//!
//! A worker is single-threaded and blocking: it introduces itself with
//! `Hello`, then serves `Assign` / `Heartbeat` until `Bye` or the
//! coordinator disconnects. Each task runs through the local engine's
//! cache-aware [`Engine::run_task`], so repeated fleet runs hit the
//! worker's own `results/cache/` exactly as local runs do. While a task
//! is computing the worker cannot echo heartbeats — the coordinator
//! covers that window with per-task deadlines instead.
//!
//! `Hello` advertises the content fingerprints already in the engine's
//! disk cache, so an elastic coordinator can route matching tasks here
//! (warm restarts recompute nothing). `Replicate` pushes are admitted
//! into the local cache exactly like computed results — same CRC-64
//! envelope, same tmp+rename write, same quarantine on a corrupt read.

use crate::fault::FaultPlan;
use crate::proto::{Message, PROTOCOL_VERSION};
use crate::transport::{Transport, TransportError};
use bdb_engine::Engine;

/// Per-session worker settings.
#[derive(Debug, Clone, Default)]
pub struct WorkerConfig {
    /// Name sent in `Hello` (diagnostics only).
    pub name: String,
    /// Injected misbehaviour for testing; [`FaultPlan::default`] is
    /// fault-free.
    pub faults: FaultPlan,
}

impl WorkerConfig {
    /// A fault-free config with the given name.
    pub fn named(name: &str) -> Self {
        WorkerConfig {
            name: name.to_owned(),
            ..WorkerConfig::default()
        }
    }
}

/// Why a worker session ended abnormally.
#[derive(Debug)]
pub enum WorkerError {
    /// The transport failed mid-session.
    Transport(TransportError),
    /// The session's [`FaultPlan::crash_on_task`] fired; a worker binary
    /// maps this to a hard process exit.
    InjectedCrash {
        /// The 0-based accepted-task count at which the crash fired.
        task_number: u64,
    },
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Transport(e) => write!(f, "worker transport failed: {e}"),
            WorkerError::InjectedCrash { task_number } => {
                write!(f, "injected crash on task #{task_number}")
            }
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<TransportError> for WorkerError {
    fn from(e: TransportError) -> Self {
        WorkerError::Transport(e)
    }
}

/// Serves one coordinator session over `transport`. Returns `Ok(served)`
/// — the number of tasks completed — after `Bye` or a clean disconnect.
pub fn run_worker(
    transport: &dyn Transport,
    engine: &Engine,
    config: &WorkerConfig,
) -> Result<u64, WorkerError> {
    transport.send(&Message::Hello {
        worker: config.name.clone(),
        protocol: PROTOCOL_VERSION,
        cached: engine.cached_fingerprints(),
    })?;
    let mut accepted: u64 = 0;
    let mut served: u64 = 0;
    loop {
        let msg = match transport.recv() {
            Ok(msg) => msg,
            // Coordinator gone between tasks: treat as session end.
            Err(TransportError::Closed) => return Ok(served),
            Err(e) => return Err(e.into()),
        };
        match msg {
            Message::Assign { task_id, task } => {
                if config.faults.crash_on_task == Some(accepted) {
                    return Err(WorkerError::InjectedCrash {
                        task_number: accepted,
                    });
                }
                if config.faults.bye_on_task == Some(accepted) {
                    // Voluntary departure: the orphaned Assign re-queues
                    // on the coordinator without a charged attempt.
                    transport.send(&Message::Bye)?;
                    return Ok(served);
                }
                if config.faults.stall_on_task == Some(accepted) {
                    // Hang without Bye or a reply; only the
                    // coordinator's per-task deadline recovers the task.
                    loop {
                        std::thread::park();
                    }
                }
                accepted += 1;
                let outcome = match engine.run_task(&task) {
                    Ok(result) => {
                        served += 1;
                        transport.send(&Message::Result {
                            task_id,
                            fingerprint: result.fingerprint,
                            outcome: Ok(Box::new(result.profile)),
                        })
                    }
                    Err(e) => transport.send(&Message::Result {
                        task_id,
                        fingerprint: task.fingerprint(),
                        outcome: Err(e.to_string()),
                    }),
                };
                outcome?;
            }
            Message::Replicate {
                workload_id,
                fingerprint,
                profile,
            } => {
                // Replica push: admit into the local cache exactly like
                // a computed result. No reply — the coordinator treats
                // a failed send, not a missing ack, as target death.
                engine.admit(&workload_id, fingerprint, &profile);
            }
            Message::Heartbeat { seq } => transport.send(&Message::Heartbeat { seq })?,
            Message::Bye => return Ok(served),
            // A coordinator never sends Hello/Result; strict protocol.
            other => {
                return Err(WorkerError::Transport(TransportError::Protocol(format!(
                    "unexpected message from coordinator: {other:?}"
                ))))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback_pair;
    use bdb_engine::Task;
    use bdb_node::NodeConfig;
    use bdb_sim::MachineConfig;
    use bdb_workloads::{catalog, Scale};

    fn sample_task() -> Task {
        let workload = &catalog::full_catalog()[0];
        Task::new(
            workload,
            Scale::tiny(),
            &MachineConfig::xeon_e5645(),
            &NodeConfig::default(),
        )
    }

    #[test]
    fn worker_serves_assign_heartbeat_bye() {
        let (coord, worker_end) = loopback_pair("serve");
        let handle = std::thread::spawn(move || {
            let engine = Engine::in_memory();
            run_worker(&worker_end, &engine, &WorkerConfig::named("w0"))
        });
        assert!(matches!(coord.recv(), Ok(Message::Hello { .. })));
        coord.send(&Message::Heartbeat { seq: 9 }).unwrap();
        assert!(matches!(coord.recv(), Ok(Message::Heartbeat { seq: 9 })));
        coord
            .send(&Message::Assign {
                task_id: 0,
                task: Box::new(sample_task()),
            })
            .unwrap();
        match coord.recv().unwrap() {
            Message::Result {
                task_id, outcome, ..
            } => {
                assert_eq!(task_id, 0);
                assert!(outcome.is_ok());
            }
            other => panic!("expected result, got {other:?}"),
        }
        coord.send(&Message::Bye).unwrap();
        assert_eq!(handle.join().unwrap().unwrap(), 1);
    }

    #[test]
    fn injected_crash_fires_on_requested_task() {
        let (coord, worker_end) = loopback_pair("crash");
        let handle = std::thread::spawn(move || {
            let engine = Engine::in_memory();
            let config = WorkerConfig {
                name: "w0".to_owned(),
                faults: FaultPlan {
                    crash_on_task: Some(0),
                    ..FaultPlan::default()
                },
            };
            run_worker(&worker_end, &engine, &config)
        });
        assert!(matches!(coord.recv(), Ok(Message::Hello { .. })));
        coord
            .send(&Message::Assign {
                task_id: 0,
                task: Box::new(sample_task()),
            })
            .unwrap();
        assert!(matches!(
            handle.join().unwrap(),
            Err(WorkerError::InjectedCrash { task_number: 0 })
        ));
    }
}
