//! Fault injection for cluster testing.
//!
//! A [`FaultPlan`] describes misbehaviour for one worker connection; a
//! [`FaultyTransport`] wraps any [`Transport`] and applies the plan at
//! the frame level, so the coordinator under test sees exactly what a
//! real flaky worker would produce: dropped connections, delayed
//! replies, and duplicated Result frames. Worker-process crashes
//! (`crash_on_task`) are enforced by the worker loop itself, which
//! consults the plan before running each task.

use crate::proto::Message;
use crate::transport::{Transport, TransportError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Misbehaviour to inject on one worker connection. The default plan is
/// fault-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Drop the connection after this many frames have been sent
    /// (counting both directions through the wrapper).
    pub drop_after_frames: Option<u64>,
    /// Sleep this long before each outbound reply.
    pub delay_reply: Option<Duration>,
    /// Crash the worker process when it is assigned its k-th task
    /// (0-based count of Assign messages it has accepted).
    pub crash_on_task: Option<u64>,
    /// Leave cleanly (send `Bye`, end the session) instead of running
    /// the k-th assigned task — the voluntary-departure schedule. The
    /// coordinator re-queues the orphaned task without charging an
    /// attempt.
    pub bye_on_task: Option<u64>,
    /// Stall forever (hang without `Bye` or a reply) instead of running
    /// the k-th assigned task — exercises the coordinator's per-task
    /// deadline, which is the only recovery for a hung-but-connected
    /// worker.
    pub stall_on_task: Option<u64>,
    /// Send every Result frame twice, exercising coordinator dedup.
    pub duplicate_results: bool,
}

impl FaultPlan {
    /// True when every field is the no-fault default.
    pub fn is_clean(&self) -> bool {
        *self == FaultPlan::default()
    }
}

/// A [`Transport`] wrapper that applies a [`FaultPlan`] at frame level.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    frames: AtomicU64,
    dropped: AtomicBool,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultyTransport {
            inner,
            plan,
            frames: AtomicU64::new(0),
            dropped: AtomicBool::new(false),
        }
    }

    /// Counts one frame; returns true once the drop threshold is crossed.
    fn count_frame_and_check_drop(&self) -> bool {
        let n = self.frames.fetch_add(1, Ordering::SeqCst);
        match self.plan.drop_after_frames {
            Some(limit) if n >= limit => {
                self.dropped.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }

    fn closed_if_dropped(&self) -> Result<(), TransportError> {
        if self.dropped.load(Ordering::SeqCst) {
            Err(TransportError::Closed)
        } else {
            Ok(())
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&self, msg: &Message) -> Result<(), TransportError> {
        self.closed_if_dropped()?;
        if self.count_frame_and_check_drop() {
            return Err(TransportError::Closed);
        }
        if let Some(delay) = self.plan.delay_reply {
            std::thread::sleep(delay);
        }
        self.inner.send(msg)?;
        if self.plan.duplicate_results && matches!(msg, Message::Result { .. }) {
            self.inner.send(msg)?;
        }
        Ok(())
    }

    fn recv(&self) -> Result<Message, TransportError> {
        self.closed_if_dropped()?;
        let msg = self.inner.recv()?;
        if self.count_frame_and_check_drop() {
            return Err(TransportError::Closed);
        }
        Ok(msg)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>, TransportError> {
        self.closed_if_dropped()?;
        match self.inner.recv_timeout(timeout)? {
            Some(msg) => {
                if self.count_frame_and_check_drop() {
                    return Err(TransportError::Closed);
                }
                Ok(Some(msg))
            }
            None => Ok(None),
        }
    }

    fn peer(&self) -> String {
        format!("faulty({})", self.inner.peer())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback_pair;

    #[test]
    fn drop_after_frames_closes_both_directions() {
        let (coord, worker) = loopback_pair("drop");
        let faulty = FaultyTransport::new(
            worker,
            FaultPlan {
                drop_after_frames: Some(2),
                ..FaultPlan::default()
            },
        );
        faulty.send(&Message::Bye).unwrap();
        faulty.send(&Message::Bye).unwrap();
        assert!(matches!(
            faulty.send(&Message::Bye),
            Err(TransportError::Closed)
        ));
        assert!(matches!(faulty.recv(), Err(TransportError::Closed)));
        drop(coord);
    }

    #[test]
    fn duplicate_results_doubles_only_result_frames() {
        let (coord, worker) = loopback_pair("dup");
        let faulty = FaultyTransport::new(
            worker,
            FaultPlan {
                duplicate_results: true,
                ..FaultPlan::default()
            },
        );
        faulty
            .send(&Message::Result {
                task_id: 1,
                fingerprint: 0xff,
                outcome: Err("e".to_owned()),
            })
            .unwrap();
        faulty.send(&Message::Heartbeat { seq: 1 }).unwrap();
        assert!(matches!(coord.recv(), Ok(Message::Result { .. })));
        assert!(matches!(coord.recv(), Ok(Message::Result { .. })));
        assert!(matches!(coord.recv(), Ok(Message::Heartbeat { seq: 1 })));
    }
}
