//! The cluster contract: a distributed run merges **byte-identically**
//! to a serial local engine run — across worker counts, work stealing,
//! injected crashes, delayed replies, and duplicated result frames.
//!
//! This is the acceptance test for the subsystem: the full 77-workload
//! catalog sharded over three loopback workers, one of which crashes
//! mid-run, must still converge to exactly the serial profile bytes.

use bdb_cluster::{
    fleet_tasks, loopback_pair, run_worker, ClusterConfig, Coordinator, FaultPlan, FaultyTransport,
    Transport, WorkerConfig,
};
use bdb_engine::codec::profile_to_value;
use bdb_engine::Engine;
use bdb_node::NodeConfig;
use bdb_sim::MachineConfig;
use bdb_wcrt::WorkloadProfile;
use bdb_workloads::{catalog, Scale, WorkloadDef};
use std::sync::Arc;
use std::time::Duration;

/// Fast tick so deadline/backoff recovery converges quickly in tests.
fn test_config() -> ClusterConfig {
    ClusterConfig {
        tick: Duration::from_millis(5),
        ..ClusterConfig::default()
    }
}

/// Spawns a loopback worker thread with the given fault plan and returns
/// the coordinator-side transport end.
fn spawn_worker(name: &str, faults: FaultPlan) -> Arc<dyn Transport> {
    let (coord_end, worker_end) = loopback_pair(name);
    let config = WorkerConfig {
        name: name.to_owned(),
        faults: faults.clone(),
    };
    std::thread::spawn(move || {
        let engine = Engine::in_memory();
        let transport = FaultyTransport::new(worker_end, config.faults.clone());
        run_worker(&transport, &engine, &config)
    });
    Arc::new(coord_end)
}

fn canonical_bytes(profiles: &[WorkloadProfile]) -> Vec<String> {
    profiles
        .iter()
        .map(|p| profile_to_value(p).encode())
        .collect()
}

fn serial_baseline(workloads: &[WorkloadDef], scale: Scale) -> Vec<String> {
    let profiles = Engine::serial().profile_all(
        workloads,
        scale,
        &MachineConfig::xeon_e5645(),
        &NodeConfig::default(),
    );
    canonical_bytes(&profiles)
}

fn run_cluster(
    workloads: &[WorkloadDef],
    scale: Scale,
    workers: Vec<Arc<dyn Transport>>,
) -> Vec<String> {
    let tasks = fleet_tasks(
        workloads,
        scale,
        &MachineConfig::xeon_e5645(),
        &NodeConfig::default(),
    );
    let profiles = Coordinator::new(test_config())
        .run(workers, &tasks)
        .expect("distributed run must converge");
    canonical_bytes(&profiles)
}

#[test]
fn full_catalog_with_midrun_crash_is_byte_identical_to_serial() {
    let workloads = catalog::full_catalog();
    assert_eq!(workloads.len(), 77, "the paper's full fleet");
    let scale = Scale::tiny();
    let serial = serial_baseline(&workloads, scale);
    // Three workers; the middle one crashes while the fleet is mid-run
    // (after accepting 5 of its ~26 planned tasks), orphaning work that
    // must be stolen and retried by the survivors.
    let workers = vec![
        spawn_worker("w0", FaultPlan::default()),
        spawn_worker(
            "w1",
            FaultPlan {
                crash_on_task: Some(5),
                ..FaultPlan::default()
            },
        ),
        spawn_worker("w2", FaultPlan::default()),
    ];
    let distributed = run_cluster(&workloads, scale, workers);
    assert_eq!(
        distributed, serial,
        "merged cluster profiles must be byte-identical to the serial engine"
    );
}

#[test]
fn delays_duplicates_and_drops_do_not_corrupt_the_merge() {
    let workloads: Vec<WorkloadDef> = catalog::full_catalog().into_iter().take(12).collect();
    let scale = Scale::tiny();
    let serial = serial_baseline(&workloads, scale);
    let workers = vec![
        // Slow worker: every reply delayed.
        spawn_worker(
            "slow",
            FaultPlan {
                delay_reply: Some(Duration::from_millis(20)),
                ..FaultPlan::default()
            },
        ),
        // Chatty worker: every Result frame sent twice (dedup path).
        spawn_worker(
            "dup",
            FaultPlan {
                duplicate_results: true,
                ..FaultPlan::default()
            },
        ),
        // Flaky worker: connection drops after a handful of frames.
        spawn_worker(
            "flaky",
            FaultPlan {
                drop_after_frames: Some(6),
                ..FaultPlan::default()
            },
        ),
    ];
    let distributed = run_cluster(&workloads, scale, workers);
    assert_eq!(distributed, serial);
}

#[test]
fn single_worker_cluster_matches_serial() {
    let workloads: Vec<WorkloadDef> = catalog::full_catalog().into_iter().take(5).collect();
    let scale = Scale::tiny();
    assert_eq!(
        run_cluster(
            &workloads,
            scale,
            vec![spawn_worker("only", FaultPlan::default())]
        ),
        serial_baseline(&workloads, scale)
    );
}

#[test]
fn killed_coordinator_resumes_from_journal_without_rerunning_shards() {
    use bdb_engine::{CacheFormat, CacheStore, RealFs, RunJournal};
    use std::path::PathBuf;

    let workloads: Vec<WorkloadDef> = catalog::full_catalog().into_iter().take(8).collect();
    let scale = Scale::tiny();
    let serial = serial_baseline(&workloads, scale);
    let tasks = fleet_tasks(
        &workloads,
        scale,
        &MachineConfig::xeon_e5645(),
        &NodeConfig::default(),
    );
    let dir = std::env::temp_dir().join(format!("bdb-cluster-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path: PathBuf = dir.join("run.wal");
    let context = "cluster-contract restart";

    // First coordinator: completes only the first five shards before the
    // process "dies" (we simply stop after a partial batch — every
    // verified result is already on disk in the write-ahead journal).
    let completed = 5usize;
    {
        let store: Arc<dyn CacheStore> = Arc::new(RealFs);
        let (mut journal, _) =
            RunJournal::open(store, path.clone(), context, false, CacheFormat::Json);
        let partial = Coordinator::new(test_config())
            .run_journaled(
                vec![spawn_worker("first-life", FaultPlan::default())],
                &tasks[..completed],
                &mut journal,
            )
            .expect("partial journaled run must converge");
        assert_eq!(partial.len(), completed);
    }

    // Second coordinator: resumes from the journal. Its only worker is
    // rigged to crash if it is ever assigned more than the three
    // remaining shards, so any re-dispatch of a finished shard fails the
    // whole run — resumption must come purely from the journal.
    let store: Arc<dyn CacheStore> = Arc::new(RealFs);
    let (mut journal, stats) = RunJournal::open(store, path, context, true, CacheFormat::Json);
    assert_eq!(
        stats.loaded_tasks, completed,
        "journal must replay all completed shards"
    );
    let remaining = (tasks.len() - completed) as u64;
    let resumed = Coordinator::new(test_config())
        .run_journaled(
            vec![spawn_worker(
                "second-life",
                FaultPlan {
                    crash_on_task: Some(remaining),
                    ..FaultPlan::default()
                },
            )],
            &tasks,
            &mut journal,
        )
        .expect("resumed run must converge without re-dispatching finished shards");
    assert_eq!(
        canonical_bytes(&resumed),
        serial,
        "resumed merge must be byte-identical to an uninterrupted serial run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_workers_crashing_is_a_clean_error() {
    let workloads: Vec<WorkloadDef> = catalog::full_catalog().into_iter().take(4).collect();
    let tasks = fleet_tasks(
        &workloads,
        Scale::tiny(),
        &MachineConfig::xeon_e5645(),
        &NodeConfig::default(),
    );
    let workers = vec![
        spawn_worker(
            "dead0",
            FaultPlan {
                crash_on_task: Some(0),
                ..FaultPlan::default()
            },
        ),
        spawn_worker(
            "dead1",
            FaultPlan {
                crash_on_task: Some(0),
                ..FaultPlan::default()
            },
        ),
    ];
    let outcome = Coordinator::new(test_config()).run(workers, &tasks);
    assert!(outcome.is_err(), "no workers left must surface an error");
}
