//! Property tests for the [`Fleet`] membership state machine: under
//! **arbitrary** interleavings of joins, hellos, clean leaves,
//! heartbeat deaths, ticks, assignments, completions, and failures,
//! the task set is conserved — every incomplete task lives in exactly
//! one queue, no task is ever duplicated or dropped — and once the
//! churn stops, one fresh worker (plus any survivors) can always drain
//! the fleet to completion.

use bdb_cluster::{ClusterConfig, Fleet};
use proptest::prelude::*;
use std::time::Duration;

/// One membership / scheduling event. Indices are seeds, reduced
/// modulo the live population when applied, so every generated
/// sequence is interpretable against every fleet shape.
#[derive(Debug, Clone)]
enum Op {
    /// Add an empty slot (a transport appeared on the join channel).
    Join,
    /// Worker `seed % slots` sends (or re-sends) its Hello.
    Hello(usize),
    /// Worker `seed % slots` leaves cleanly with Bye.
    Bye(usize),
    /// Worker `seed % slots` dies (EOF / heartbeat miss / deadline).
    Death(usize),
    /// One coordinator tick: deadlines and heartbeat probes fire.
    Tick,
    /// Answer the `seed % probes`-th outstanding heartbeat probe.
    Heartbeat(usize),
    /// Ask for the next assignment for worker `seed % slots`.
    Assign(usize),
    /// The `seed % outstanding`-th assignment returns a verified result.
    Complete(usize),
    /// The `seed % outstanding`-th assignment fails verification.
    Fail(usize),
}

/// The op strategy. The shim's `prop_oneof!` draws uniformly, so the
/// scheduling-heavy ops (tick/assign/complete) appear more than once to
/// keep generated runs from being pure membership noise.
fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Join),
        any::<usize>().prop_map(Op::Hello),
        any::<usize>().prop_map(Op::Hello),
        any::<usize>().prop_map(Op::Bye),
        any::<usize>().prop_map(Op::Death),
        Just(Op::Tick),
        Just(Op::Tick),
        Just(Op::Tick),
        any::<usize>().prop_map(Op::Heartbeat),
        any::<usize>().prop_map(Op::Assign),
        any::<usize>().prop_map(Op::Assign),
        any::<usize>().prop_map(Op::Assign),
        any::<usize>().prop_map(Op::Complete),
        any::<usize>().prop_map(Op::Complete),
        any::<usize>().prop_map(Op::Fail),
    ]
}

fn config() -> ClusterConfig {
    ClusterConfig {
        tick: Duration::from_millis(1),
        task_deadline_ticks: 25,
        heartbeat_every_ticks: 10,
        heartbeat_miss_limit: 2,
        max_attempts: 6,
        ..ClusterConfig::default()
    }
}

fn conserve(fleet: &Fleet, context: &str) {
    if let Err(e) = fleet.check_conservation() {
        panic!("conservation broken {context}: {e}");
    }
}

/// Applies `ops` to the fleet, checking conservation after every
/// single step. Returns the outstanding `(slot, task)` assignments the
/// interpreter issued, or `None` if the run aborted on task exhaustion
/// (a legal terminal state: `record_failure` surfaces `TaskExhausted`,
/// the coordinator stops the run, and conservation no longer binds —
/// the exhausted task has left every queue by design).
fn run_ops(fleet: &mut Fleet, ops: &[Op]) -> Option<Vec<(usize, usize)>> {
    let mut outstanding: Vec<(usize, usize)> = Vec::new();
    let mut probes: Vec<(usize, u64)> = Vec::new();
    for (step, op) in ops.iter().enumerate() {
        // A join-only start has no slot to address until the first Join.
        if fleet.slot_count() == 0
            && matches!(op, Op::Hello(_) | Op::Bye(_) | Op::Death(_) | Op::Assign(_))
        {
            continue;
        }
        match op {
            Op::Join => {
                fleet.join();
            }
            Op::Hello(seed) => {
                let slot = seed % fleet.slot_count();
                fleet.hello(slot, &[]);
            }
            Op::Bye(seed) => {
                let slot = seed % fleet.slot_count();
                fleet.leave(slot);
                outstanding.retain(|&(s, _)| s != slot);
            }
            Op::Death(seed) => {
                let slot = seed % fleet.slot_count();
                if fleet.death(slot).is_err() {
                    return None;
                }
                outstanding.retain(|&(s, _)| s != slot);
            }
            Op::Tick => {
                let out = fleet.tick();
                probes.extend(out.probes.iter().copied());
                for slot in out.deaths {
                    if fleet.death(slot).is_err() {
                        return None;
                    }
                    outstanding.retain(|&(s, _)| s != slot);
                }
            }
            Op::Heartbeat(seed) => {
                if !probes.is_empty() {
                    let (slot, seq) = probes.swap_remove(seed % probes.len());
                    fleet.heartbeat(slot, seq);
                }
            }
            Op::Assign(seed) => {
                let slot = seed % fleet.slot_count();
                if let Some(task) = fleet.next_assignment(slot) {
                    outstanding.push((slot, task));
                }
            }
            Op::Complete(seed) => {
                if !outstanding.is_empty() {
                    let (slot, task) = outstanding.swap_remove(seed % outstanding.len());
                    fleet.clear_inflight(slot, task);
                    fleet.complete(task);
                }
            }
            Op::Fail(seed) => {
                if !outstanding.is_empty() {
                    let (slot, task) = outstanding.swap_remove(seed % outstanding.len());
                    fleet.clear_inflight(slot, task);
                    if fleet
                        .record_failure(task, "injected verification failure".to_owned())
                        .is_err()
                    {
                        return None;
                    }
                }
            }
        }
        conserve(fleet, &format!("after step {step} ({op:?})"));
    }
    Some(outstanding)
}

/// Resolves leftover assignments, joins one fresh worker, and drives
/// the fleet until every task is done, checking conservation along the
/// way. Exhaustion mid-drain aborts the drain (legal terminal state).
fn drain(fleet: &mut Fleet, outstanding: Vec<(usize, usize)>) {
    for (slot, task) in outstanding {
        fleet.clear_inflight(slot, task);
        fleet.complete(task);
        conserve(fleet, "resolving a leftover assignment");
    }
    let fresh = fleet.join();
    fleet.hello(fresh, &[]);
    conserve(fleet, "after the fresh join");
    let mut idle_ticks = 0usize;
    while fleet.done() < fleet.task_count() {
        let mut progress = false;
        for slot in 0..fleet.slot_count() {
            while let Some(task) = fleet.next_assignment(slot) {
                fleet.clear_inflight(slot, task);
                fleet.complete(task);
                progress = true;
                conserve(fleet, "during the drain");
            }
        }
        if progress {
            idle_ticks = 0;
            continue;
        }
        // No slot is assignable: retry backoffs or heartbeat probes are
        // pending. Ticks resolve both; the guard bounds the whole drain
        // (backoff caps at 64 ticks, probes at every 10).
        idle_ticks += 1;
        assert!(
            idle_ticks < 10_000,
            "drain stalled: {} of {} tasks done",
            fleet.done(),
            fleet.task_count()
        );
        let out = fleet.tick();
        for (slot, seq) in out.probes {
            fleet.heartbeat(slot, seq);
        }
        for slot in out.deaths {
            if fleet.death(slot).is_err() {
                return; // exhausted: the run would abort here
            }
        }
        conserve(fleet, "after a drain tick");
    }
    assert_eq!(fleet.done(), fleet.task_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The conservation invariant holds after EVERY membership and
    /// scheduling event, and any surviving fleet drains to completion.
    /// `workers` starts at 0: a join-only fleet must still conserve
    /// (its tasks are seeded into the retry queue) and drain.
    #[test]
    fn task_set_is_conserved_under_arbitrary_membership_churn(
        workers in 0usize..4,
        tasks in 1usize..12,
        hellos in proptest::collection::vec(any::<usize>(), 0..4),
        ops in proptest::collection::vec(op(), 0..60),
    ) {
        // Distinct fingerprints so affinity bookkeeping is exercised.
        let fingerprints: Vec<u64> =
            (0..tasks as u64).map(|t| t.wrapping_mul(0x9e37_79b9)).collect();
        let mut fleet = Fleet::new(workers, fingerprints, config());
        conserve(&fleet, "on the fresh fleet");
        for seed in hellos {
            if fleet.slot_count() > 0 {
                fleet.hello(seed % fleet.slot_count(), &[]);
            }
        }
        conserve(&fleet, "after the initial hellos");
        if let Some(outstanding) = run_ops(&mut fleet, &ops) {
            drain(&mut fleet, outstanding);
        }
        // `None` = the run aborted on TaskExhausted, a legal terminal.
    }
}
