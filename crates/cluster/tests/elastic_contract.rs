//! The elastic-fleet contract: under any topology-churn schedule —
//! workers joining mid-run, leaving cleanly with `Bye`, stalling
//! forever, crashing, or dropping their connections — the merged
//! profile bytes stay **identical** to a serial engine run, and a fleet
//! restarted after losing any single machine answers entirely from the
//! replicated result tier (zero recomputes).

use bdb_cluster::{
    fleet_tasks, loopback_pair, run_worker, ClusterConfig, Coordinator, FaultPlan, FaultyTransport,
    Message, Transport, TransportError, WorkerConfig,
};
use bdb_engine::codec::profile_to_value;
use bdb_engine::{Engine, EngineConfig};
use bdb_node::NodeConfig;
use bdb_sim::MachineConfig;
use bdb_wcrt::WorkloadProfile;
use bdb_workloads::{catalog, Scale, WorkloadDef};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Fast ticks and extra attempts, so churn-heavy schedules converge
/// quickly but never exhaust a task. The task deadline stays at its
/// default: it must comfortably exceed real compute time, or healthy
/// workers get declared dead mid-task.
fn elastic_config() -> ClusterConfig {
    ClusterConfig {
        tick: Duration::from_millis(5),
        max_attempts: 8,
        ..ClusterConfig::default()
    }
}

fn machine() -> MachineConfig {
    MachineConfig::xeon_e5645()
}

fn spawn_worker(name: &str, faults: FaultPlan) -> Arc<dyn Transport> {
    let (coord_end, worker_end) = loopback_pair(name);
    let config = WorkerConfig {
        name: name.to_owned(),
        faults: faults.clone(),
    };
    std::thread::spawn(move || {
        let engine = Engine::in_memory();
        let transport = FaultyTransport::new(worker_end, config.faults.clone());
        run_worker(&transport, &engine, &config)
    });
    Arc::new(coord_end)
}

/// Like [`spawn_worker`], but serving a caller-owned engine (so the
/// test can point it at a persistent cache dir and read its counters),
/// and returning the worker thread's handle for clean joining.
fn spawn_worker_with_engine(
    name: &str,
    engine: Arc<Engine>,
    faults: FaultPlan,
) -> (Arc<dyn Transport>, std::thread::JoinHandle<()>) {
    let (coord_end, worker_end) = loopback_pair(name);
    let config = WorkerConfig {
        name: name.to_owned(),
        faults: faults.clone(),
    };
    let handle = std::thread::spawn(move || {
        let transport = FaultyTransport::new(worker_end, config.faults.clone());
        let _ = run_worker(&transport, &engine, &config);
    });
    (Arc::new(coord_end), handle)
}

fn canonical_bytes(profiles: &[WorkloadProfile]) -> Vec<String> {
    profiles
        .iter()
        .map(|p| profile_to_value(p).encode())
        .collect()
}

fn serial_baseline(workloads: &[WorkloadDef], scale: Scale) -> Vec<String> {
    let profiles =
        Engine::serial().profile_all(workloads, scale, &machine(), &NodeConfig::default());
    canonical_bytes(&profiles)
}

/// The chaos soak: every churn schedule × every join timing must merge
/// byte-identically to serial. Each run starts with one clean worker
/// and one worker following the schedule's fault plan; a third clean
/// worker joins through the elastic channel after `join_delay`.
#[test]
fn topology_churn_schedules_merge_byte_identically_to_serial() {
    let workloads: Vec<WorkloadDef> = catalog::full_catalog().into_iter().take(12).collect();
    let scale = Scale::tiny();
    let serial = serial_baseline(&workloads, scale);
    let tasks = fleet_tasks(&workloads, scale, &machine(), &NodeConfig::default());
    let schedules: Vec<(&str, FaultPlan)> = vec![
        ("clean", FaultPlan::default()),
        (
            "bye",
            FaultPlan {
                bye_on_task: Some(2),
                ..FaultPlan::default()
            },
        ),
        (
            "stall",
            FaultPlan {
                stall_on_task: Some(1),
                ..FaultPlan::default()
            },
        ),
        (
            "crash",
            FaultPlan {
                crash_on_task: Some(2),
                ..FaultPlan::default()
            },
        ),
        (
            "drop",
            FaultPlan {
                drop_after_frames: Some(6),
                ..FaultPlan::default()
            },
        ),
    ];
    for (label, fault) in &schedules {
        for join_delay_ms in [0u64, 120] {
            let workers = vec![
                spawn_worker(
                    &format!("{label}-base-{join_delay_ms}"),
                    FaultPlan::default(),
                ),
                spawn_worker(&format!("{label}-faulty-{join_delay_ms}"), fault.clone()),
            ];
            let (join_tx, join_rx) = channel();
            let joiner_name = format!("{label}-joiner-{join_delay_ms}");
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(join_delay_ms));
                let _ = join_tx.send(spawn_worker(&joiner_name, FaultPlan::default()));
                // Sender drops here: membership is final once the
                // joiner is delivered, so total fleet death stays a
                // clean error rather than an infinite wait.
            });
            let profiles = Coordinator::new(elastic_config())
                .run_elastic(workers, join_rx, &tasks, None)
                .unwrap_or_else(|e| panic!("schedule {label}/join@{join_delay_ms}ms: {e}"));
            assert_eq!(
                canonical_bytes(&profiles),
                serial,
                "schedule {label}/join@{join_delay_ms}ms must merge byte-identically"
            );
        }
    }
}

/// Regression: a run may start with an EMPTY worker list (the
/// `--join-listen`-only mode of cluster-smoke) and be populated entirely
/// through the elastic join channel. The tasks must be reachable by the
/// joiners — they used to live in no plan and no queue, so the run hung
/// forever — and the merged bytes must still match serial.
#[test]
fn run_elastic_from_an_empty_fleet_converges_once_workers_join() {
    let workloads: Vec<WorkloadDef> = catalog::full_catalog().into_iter().take(6).collect();
    let scale = Scale::tiny();
    let serial = serial_baseline(&workloads, scale);
    let tasks = fleet_tasks(&workloads, scale, &machine(), &NodeConfig::default());
    let (join_tx, join_rx) = channel();
    std::thread::spawn(move || {
        for (i, delay_ms) in [0u64, 80].into_iter().enumerate() {
            std::thread::sleep(Duration::from_millis(delay_ms));
            let _ = join_tx.send(spawn_worker(
                &format!("empty-start-{i}"),
                FaultPlan::default(),
            ));
        }
    });
    let profiles = Coordinator::new(elastic_config())
        .run_elastic(Vec::new(), join_rx, &tasks, None)
        .expect("join-only fleet converges");
    assert_eq!(canonical_bytes(&profiles), serial);
}

/// Coordinator-side transport wrapper that logs every `Assign` it
/// sends, so tests can count dispatches per task.
struct CountingTransport {
    inner: Arc<dyn Transport>,
    worker: usize,
    assigns: Arc<Mutex<Vec<(usize, u64)>>>,
}

impl Transport for CountingTransport {
    fn send(&self, msg: &Message) -> Result<(), TransportError> {
        if let Message::Assign { task_id, .. } = msg {
            self.assigns
                .lock()
                .expect("assign log lock")
                .push((self.worker, *task_id));
        }
        self.inner.send(msg)
    }

    fn recv(&self) -> Result<Message, TransportError> {
        self.inner.recv()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>, TransportError> {
        self.inner.recv_timeout(timeout)
    }

    fn peer(&self) -> String {
        format!("counted({})", self.inner.peer())
    }
}

/// Regression: a worker whose connection EOFs while it holds an
/// assigned task must cause exactly one re-dispatch of that task — the
/// `Closed` event and the later deadline/heartbeat machinery must not
/// each re-queue it.
#[test]
fn worker_eof_holding_a_task_requeues_exactly_once() {
    let workloads: Vec<WorkloadDef> = catalog::full_catalog().into_iter().take(6).collect();
    let scale = Scale::tiny();
    let serial = serial_baseline(&workloads, scale);
    let tasks = fleet_tasks(&workloads, scale, &machine(), &NodeConfig::default());
    let assigns: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    // Frame budget 2 = Hello out + Assign in: the connection dies the
    // moment the worker tries to send its first Result, so the
    // coordinator sees EOF with the task still in flight.
    let workers: Vec<Arc<dyn Transport>> = vec![
        Arc::new(CountingTransport {
            inner: spawn_worker(
                "eof-mid-task",
                FaultPlan {
                    drop_after_frames: Some(2),
                    ..FaultPlan::default()
                },
            ),
            worker: 0,
            assigns: Arc::clone(&assigns),
        }),
        Arc::new(CountingTransport {
            inner: spawn_worker("survivor", FaultPlan::default()),
            worker: 1,
            assigns: Arc::clone(&assigns),
        }),
    ];
    let profiles = Coordinator::new(elastic_config())
        .run(workers, &tasks)
        .expect("run must converge past the EOF");
    assert_eq!(canonical_bytes(&profiles), serial);

    let log = assigns.lock().expect("assign log lock");
    let to_dead: Vec<u64> = log
        .iter()
        .filter(|(worker, _)| *worker == 0)
        .map(|&(_, task)| task)
        .collect();
    assert_eq!(
        to_dead.len(),
        1,
        "the dying worker accepts exactly one assignment: {log:?}"
    );
    let orphan = to_dead[0];
    let dispatches = log.iter().filter(|&&(_, task)| task == orphan).count();
    assert_eq!(
        dispatches, 2,
        "orphaned task {orphan} must be re-dispatched exactly once: {log:?}"
    );
}

/// The replicated result tier: after a 3-worker run with
/// `replication = 1`, killing ANY single worker and restarting the
/// survivors with fresh engines over the surviving cache dirs must
/// reproduce the serial bytes with **zero** recomputation — every entry
/// had a replica on a machine that survived.
#[test]
fn replicated_caches_restart_warm_after_killing_any_worker() {
    let base = std::env::temp_dir().join(format!("bdb-elastic-repl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let workloads: Vec<WorkloadDef> = catalog::full_catalog().into_iter().take(9).collect();
    let scale = Scale::tiny();
    let serial = serial_baseline(&workloads, scale);
    let tasks = fleet_tasks(&workloads, scale, &machine(), &NodeConfig::default());
    let cache_dirs: Vec<std::path::PathBuf> = (0..3).map(|i| base.join(format!("w{i}"))).collect();
    let replicated = ClusterConfig {
        replication: 1,
        ..elastic_config()
    };

    // Run 1: three cold workers, each result replicated to one ring
    // successor, so every entry ends up on two distinct machines.
    {
        let mut handles = Vec::new();
        let mut workers: Vec<Arc<dyn Transport>> = Vec::new();
        for (i, dir) in cache_dirs.iter().enumerate() {
            let engine = Arc::new(Engine::new(EngineConfig::default().cache_dir(dir)));
            let (transport, handle) =
                spawn_worker_with_engine(&format!("r1-w{i}"), engine, FaultPlan::default());
            workers.push(transport);
            handles.push(handle);
        }
        let profiles = Coordinator::new(replicated.clone())
            .run(workers, &tasks)
            .expect("replicated run converges");
        assert_eq!(canonical_bytes(&profiles), serial);
        // Join the worker threads so every Replicate admission has hit
        // disk before the warm restarts read the cache dirs.
        for handle in handles {
            handle.join().expect("worker thread exits cleanly");
        }
    }

    // Run 2 (three times over): kill worker k, restart the survivors
    // with FRESH engines on the surviving cache dirs.
    for killed in 0..3 {
        let mut handles = Vec::new();
        let mut workers: Vec<Arc<dyn Transport>> = Vec::new();
        let mut engines = Vec::new();
        for (i, dir) in cache_dirs.iter().enumerate() {
            if i == killed {
                continue;
            }
            let engine = Arc::new(Engine::new(EngineConfig::default().cache_dir(dir)));
            let (transport, handle) = spawn_worker_with_engine(
                &format!("r2-kill{killed}-w{i}"),
                Arc::clone(&engine),
                FaultPlan::default(),
            );
            engines.push(engine);
            workers.push(transport);
            handles.push(handle);
        }
        let profiles = Coordinator::new(replicated.clone())
            .run(workers, &tasks)
            .expect("warm restart converges");
        assert_eq!(
            canonical_bytes(&profiles),
            serial,
            "killed worker {killed}: warm bytes must still match serial"
        );
        let computed: u64 = engines.iter().map(|e| e.counters().computed).sum();
        assert_eq!(
            computed, 0,
            "killed worker {killed}: survivors must answer entirely from replicas"
        );
        for handle in handles {
            handle.join().expect("worker thread exits cleanly");
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// `Replicate` frames carry a full profile and must round-trip
/// byte-stably through the wire codec like every other message.
#[test]
fn replicate_frames_roundtrip_byte_stably() {
    use bdb_cluster::wire::{decode_frames, encode_frame};

    let workloads: Vec<WorkloadDef> = catalog::full_catalog().into_iter().take(1).collect();
    let profile = Engine::serial()
        .profile_all(
            &workloads,
            Scale::tiny(),
            &machine(),
            &NodeConfig::default(),
        )
        .remove(0);
    let msg = Message::Replicate {
        workload_id: workloads[0].spec.id.clone(),
        fingerprint: 0x00ab_cdef_0123_4567,
        profile: Box::new(profile),
    };
    let frame = encode_frame(&msg);
    let decoded = decode_frames(&frame).expect("replicate frame decodes");
    assert_eq!(decoded.len(), 1);
    assert_eq!(
        encode_frame(&decoded[0]),
        frame,
        "re-encoding is the identity on replicate frames"
    );
}
