//! Property tests for the cluster wire codec: arbitrary messages must
//! round-trip byte-stably, every mid-frame truncation must be detected,
//! and duplicated frames must decode to byte-identical copies (the
//! coordinator's dedup-by-content-key relies on that).

use bdb_cluster::wire::{decode_frames, encode_frame, WireError};
use bdb_cluster::{Message, PROTOCOL_VERSION};
use bdb_engine::Task;
use bdb_node::NodeConfig;
use bdb_sim::MachineConfig;
use bdb_workloads::Scale;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    proptest::collection::vec(97u8..123, 1..16)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

fn machine() -> impl Strategy<Value = MachineConfig> {
    prop_oneof![
        Just(MachineConfig::xeon_e5645()),
        Just(MachineConfig::xeon_e5_2697()),
        Just(MachineConfig::atom_d510()),
        (8u64..512).prop_map(MachineConfig::atom_sweep),
    ]
}

fn node() -> impl Strategy<Value = NodeConfig> {
    (0.5f64..4.0, 0.1f64..2.0).prop_map(|(ghz, ipc)| NodeConfig {
        clock_hz: ghz * 1e9,
        assumed_ipc: ipc,
        ..NodeConfig::default()
    })
}

fn task() -> impl Strategy<Value = Task> {
    (ident(), 0.01f64..4.0, machine(), node()).prop_map(|(id, factor, machine, node)| Task {
        workload_id: id,
        scale: Scale::custom(factor),
        machine,
        node,
    })
}

fn message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (ident(), proptest::collection::vec(any::<u64>(), 0..8)).prop_map(|(worker, cached)| {
            Message::Hello {
                worker,
                protocol: PROTOCOL_VERSION,
                cached,
            }
        }),
        (any::<u64>(), task()).prop_map(|(task_id, task)| Message::Assign {
            task_id,
            task: Box::new(task),
        }),
        (any::<u64>(), any::<u64>(), ident()).prop_map(|(task_id, fingerprint, error)| {
            Message::Result {
                task_id,
                fingerprint,
                outcome: Err(error),
            }
        }),
        any::<u64>().prop_map(|seq| Message::Heartbeat { seq }),
        Just(Message::Bye),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn messages_roundtrip_byte_stably(msg in message()) {
        let frame = encode_frame(&msg);
        let decoded = decode_frames(&frame).unwrap();
        prop_assert_eq!(decoded.len(), 1);
        // Canonical JSON makes re-encoding the identity on bytes.
        prop_assert_eq!(encode_frame(&decoded[0]), frame);
    }

    #[test]
    fn every_truncation_is_detected(msg in message(), cut_seed in any::<u64>()) {
        let frame = encode_frame(&msg);
        let cut = 1 + (cut_seed as usize) % (frame.len() - 1);
        let err = decode_frames(&frame[..cut]).unwrap_err();
        prop_assert_eq!(err, (0, WireError::Truncated));
    }

    #[test]
    fn duplicated_frames_decode_to_identical_copies(msg in message()) {
        // A faulty worker may send the same Result frame twice; the
        // coordinator dedups by content, which requires both copies to
        // decode to the same bytes.
        let mut stream = encode_frame(&msg);
        stream.extend_from_slice(&encode_frame(&msg));
        let decoded = decode_frames(&stream).unwrap();
        prop_assert_eq!(decoded.len(), 2);
        prop_assert_eq!(encode_frame(&decoded[0]), encode_frame(&decoded[1]));
    }

    #[test]
    fn garbage_after_a_valid_frame_reports_index_one(msg in message(), junk in 1u32..64) {
        let mut stream = encode_frame(&msg);
        stream.extend_from_slice(&junk.to_be_bytes());
        stream.extend_from_slice(&vec![b'x'; junk as usize - 1]);
        let (at, err) = decode_frames(&stream).unwrap_err();
        prop_assert_eq!(at, 1);
        prop_assert!(matches!(err, WireError::Truncated | WireError::Decode(_)));
    }
}
