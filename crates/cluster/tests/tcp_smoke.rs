//! TCP end-to-end smoke: real sockets, real frames, one crashing
//! worker — the in-process twin of CI's multi-process cluster job.

use bdb_cluster::{
    fleet_tasks, run_worker, ClusterConfig, Coordinator, FaultPlan, FaultyTransport, TcpTransport,
    Transport, WorkerConfig,
};
use bdb_engine::codec::profile_to_value;
use bdb_engine::Engine;
use bdb_node::NodeConfig;
use bdb_sim::MachineConfig;
use bdb_workloads::{catalog, Scale, WorkloadDef};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// Binds an ephemeral port, serves exactly one worker session on it in a
/// background thread, and returns the address to dial.
fn spawn_tcp_worker(name: &'static str, faults: FaultPlan) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let transport = FaultyTransport::new(
            TcpTransport::from_stream(stream, "coordinator").expect("wrap stream"),
            faults.clone(),
        );
        let engine = Engine::in_memory();
        let config = WorkerConfig {
            name: name.to_owned(),
            faults,
        };
        let _ = run_worker(&transport, &engine, &config);
    });
    addr
}

#[test]
fn tcp_fleet_with_one_crash_matches_serial_bytes() {
    let workloads: Vec<WorkloadDef> = catalog::full_catalog().into_iter().take(12).collect();
    let scale = Scale::tiny();
    let machine = MachineConfig::xeon_e5645();
    let node = NodeConfig::default();

    let serial: Vec<String> = Engine::serial()
        .profile_all(&workloads, scale, &machine, &node)
        .iter()
        .map(|p| profile_to_value(p).encode())
        .collect();

    let addrs = [
        spawn_tcp_worker("t0", FaultPlan::default()),
        spawn_tcp_worker(
            "t1",
            FaultPlan {
                crash_on_task: Some(2),
                ..FaultPlan::default()
            },
        ),
        spawn_tcp_worker("t2", FaultPlan::default()),
    ];
    let workers: Vec<Arc<dyn Transport>> = addrs
        .iter()
        .map(|addr| {
            Arc::new(TcpTransport::connect(addr, Duration::from_secs(10)).expect("dial worker"))
                as Arc<dyn Transport>
        })
        .collect();

    let tasks = fleet_tasks(&workloads, scale, &machine, &node);
    let config = ClusterConfig {
        tick: Duration::from_millis(5),
        ..ClusterConfig::default()
    };
    let profiles = Coordinator::new(config)
        .run(workers, &tasks)
        .expect("TCP fleet must converge despite the crash");
    let distributed: Vec<String> = profiles
        .iter()
        .map(|p| profile_to_value(p).encode())
        .collect();
    assert_eq!(distributed, serial);
}
