//! System-level node model — the reproduction's analog of the paper's
//! proc-fs measurements (§3.2.1).
//!
//! The paper classifies each representative workload as CPU-intensive,
//! I/O-intensive, or hybrid from four OS-level signals: CPU utilization,
//! I/O-wait ratio, *average weighted disk I/O time ratio*, and I/O
//! bandwidth. We reproduce those signals by replaying each workload's
//! resource phases (instructions executed, bytes read/written/shuffled)
//! through a simple device model of one cluster node.
//!
//! # Examples
//!
//! ```
//! use bdb_node::{Node, NodeConfig, Phase};
//!
//! let mut node = Node::new(NodeConfig::default());
//! node.run_phase(Phase {
//!     name: "map".into(),
//!     instructions: 500_000_000,
//!     disk_read_bytes: 64 << 20,
//!     disk_write_bytes: 16 << 20,
//!     net_bytes: 8 << 20,
//!     io_parallelism: 4.0,
//! });
//! let m = node.metrics();
//! assert!(m.cpu_utilization > 0.0 && m.cpu_utilization <= 100.0);
//! ```

pub mod metrics;

pub use metrics::{Node, NodeConfig, Phase, SystemMetrics};
