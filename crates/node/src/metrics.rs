//! Device accounting and proc-fs-style metrics.

use serde::{Deserialize, Serialize};

/// Hardware parameters of one cluster node (paper Table 3 plus commodity
/// disk/network assumptions for the 2015 testbed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Average sustained IPC assumed for CPU-time conversion.
    pub assumed_ipc: f64,
    /// How many real machine instructions one traced micro-op represents.
    ///
    /// The instrumented kernels narrate their work at a coarser granularity
    /// than real retired x86 instructions (one traced op stands for a short
    /// sequence of real ones), so CPU time is scaled up by this factor to
    /// keep the CPU-vs-I/O balance realistic.
    pub instr_scale: f64,
    /// Sequential disk bandwidth in bytes/second.
    pub disk_bw: f64,
    /// Per-phase fixed disk overhead in seconds (seeks, metadata).
    pub disk_overhead_s: f64,
    /// Network bandwidth in bytes/second.
    pub net_bw: f64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            clock_hz: 2.4e9,
            assumed_ipc: 1.2,
            instr_scale: 7.0,
            disk_bw: 110.0e6,
            disk_overhead_s: 0.0003,
            net_bw: 117.0e6, // ~1 GbE
        }
    }
}

/// One resource phase of a workload run (a map wave, a shuffle, a reduce
/// wave, a service interval…).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase label (for reports).
    pub name: String,
    /// Traced micro-ops executed in this phase.
    pub instructions: u64,
    /// Bytes read from disk.
    pub disk_read_bytes: u64,
    /// Bytes written to disk.
    pub disk_write_bytes: u64,
    /// Bytes crossing the network.
    pub net_bytes: u64,
    /// Mean outstanding disk requests while the phase does I/O (drives the
    /// paper's *weighted* disk I/O time).
    pub io_parallelism: f64,
}

impl Phase {
    /// A purely computational phase.
    pub fn compute(name: impl Into<String>, instructions: u64) -> Self {
        Self {
            name: name.into(),
            instructions,
            disk_read_bytes: 0,
            disk_write_bytes: 0,
            net_bytes: 0,
            io_parallelism: 1.0,
        }
    }
}

/// Accumulated proc-fs-style metrics for one workload run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemMetrics {
    /// Wall-clock seconds of the run.
    pub wall_seconds: f64,
    /// CPU utilization in percent (time the CPU executed user+system work).
    pub cpu_utilization: f64,
    /// I/O-wait ratio in percent (CPU idle while disk requests outstanding).
    pub io_wait_ratio: f64,
    /// Average weighted disk I/O time ratio: outstanding-requests-weighted
    /// disk busy time divided by wall time (the paper's `> 10` threshold).
    pub weighted_io_ratio: f64,
    /// Mean disk bandwidth over the run in MB/s.
    pub disk_bandwidth_mbps: f64,
    /// Mean network bandwidth over the run in MB/s.
    pub net_bandwidth_mbps: f64,
}

/// Replays phases against the device model and accumulates metrics.
#[derive(Debug, Clone)]
pub struct Node {
    config: NodeConfig,
    wall: f64,
    cpu_busy: f64,
    io_wait: f64,
    weighted_io: f64,
    disk_bytes: u64,
    net_bytes: u64,
    phases: Vec<Phase>,
}

impl Node {
    /// Creates a node.
    pub fn new(config: NodeConfig) -> Self {
        Self {
            config,
            wall: 0.0,
            cpu_busy: 0.0,
            io_wait: 0.0,
            weighted_io: 0.0,
            disk_bytes: 0,
            net_bytes: 0,
            phases: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// Executes one phase. CPU work and I/O overlap within a phase (both
    /// Hadoop and Spark pipeline record processing with input streaming),
    /// so phase wall time is the maximum of the two, and any disk time not
    /// covered by CPU work is I/O wait.
    pub fn run_phase(&mut self, phase: Phase) {
        let c = &self.config;
        let cpu_s = phase.instructions as f64 * c.instr_scale / (c.clock_hz * c.assumed_ipc);
        let disk_bytes = phase.disk_read_bytes + phase.disk_write_bytes;
        let disk_s = if disk_bytes == 0 {
            0.0
        } else {
            disk_bytes as f64 / c.disk_bw + c.disk_overhead_s
        };
        let net_s = phase.net_bytes as f64 / c.net_bw;
        let io_s = disk_s.max(net_s);
        let wall = cpu_s.max(io_s).max(1e-9);
        self.wall += wall;
        self.cpu_busy += cpu_s;
        self.io_wait += (disk_s - cpu_s).max(0.0);
        self.weighted_io += disk_s * phase.io_parallelism.max(0.0);
        self.disk_bytes += disk_bytes;
        self.net_bytes += phase.net_bytes;
        self.phases.push(phase);
    }

    /// Phases replayed so far.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Produces the run's metrics.
    ///
    /// Returns all-zero metrics if no phase has been run.
    pub fn metrics(&self) -> SystemMetrics {
        if self.wall <= 0.0 {
            return SystemMetrics {
                wall_seconds: 0.0,
                cpu_utilization: 0.0,
                io_wait_ratio: 0.0,
                weighted_io_ratio: 0.0,
                disk_bandwidth_mbps: 0.0,
                net_bandwidth_mbps: 0.0,
            };
        }
        SystemMetrics {
            wall_seconds: self.wall,
            cpu_utilization: (self.cpu_busy / self.wall * 100.0).min(100.0),
            io_wait_ratio: (self.io_wait / self.wall * 100.0).min(100.0),
            weighted_io_ratio: self.weighted_io / self.wall,
            disk_bandwidth_mbps: self.disk_bytes as f64 / self.wall / 1e6,
            net_bandwidth_mbps: self.net_bytes as f64 / self.wall / 1e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io_phase(read_mb: u64, qd: f64) -> Phase {
        Phase {
            name: "io".into(),
            instructions: 1_000,
            disk_read_bytes: read_mb << 20,
            disk_write_bytes: 0,
            net_bytes: 0,
            io_parallelism: qd,
        }
    }

    #[test]
    fn compute_heavy_phase_has_high_cpu_utilization() {
        let mut n = Node::new(NodeConfig::default());
        n.run_phase(Phase::compute("spin", 10_000_000_000));
        let m = n.metrics();
        assert!(m.cpu_utilization > 95.0, "{m:?}");
        assert!(m.io_wait_ratio < 1.0);
    }

    #[test]
    fn io_heavy_phase_has_high_io_wait() {
        let mut n = Node::new(NodeConfig::default());
        n.run_phase(io_phase(512, 8.0));
        let m = n.metrics();
        assert!(m.cpu_utilization < 10.0, "{m:?}");
        assert!(m.io_wait_ratio > 80.0, "{m:?}");
        assert!(m.weighted_io_ratio > 5.0, "{m:?}");
    }

    #[test]
    fn weighted_io_scales_with_queue_depth() {
        let run = |qd| {
            let mut n = Node::new(NodeConfig::default());
            n.run_phase(io_phase(256, qd));
            n.metrics().weighted_io_ratio
        };
        assert!(run(16.0) > 3.0 * run(2.0));
    }

    #[test]
    fn bandwidth_reflects_bytes_over_wall() {
        let mut n = Node::new(NodeConfig::default());
        n.run_phase(io_phase(110, 1.0)); // ~1s at 110 MB/s
        let m = n.metrics();
        assert!(
            (m.disk_bandwidth_mbps - 110.0 * 1.048).abs() < 15.0,
            "{m:?}"
        );
    }

    #[test]
    fn overlap_takes_max_not_sum() {
        let mut n = Node::new(NodeConfig::default());
        let mut p = io_phase(110, 1.0);
        p.instructions = 250_000_000; // ~0.52 s CPU, ~1 s disk
        n.run_phase(p);
        let m = n.metrics();
        assert!(m.wall_seconds < 1.3, "{m:?}");
        assert!(
            m.cpu_utilization > 30.0 && m.cpu_utilization < 80.0,
            "{m:?}"
        );
    }

    #[test]
    fn empty_node_reports_zeros() {
        let n = Node::new(NodeConfig::default());
        let m = n.metrics();
        assert_eq!(m.wall_seconds, 0.0);
        assert_eq!(m.cpu_utilization, 0.0);
    }

    #[test]
    fn metrics_accumulate_over_phases() {
        let mut n = Node::new(NodeConfig::default());
        n.run_phase(Phase::compute("a", 1_000_000_000));
        n.run_phase(io_phase(64, 4.0));
        assert_eq!(n.phases().len(), 2);
        let m = n.metrics();
        assert!(m.cpu_utilization > 0.0 && m.io_wait_ratio > 0.0);
    }
}
