//! Reproduction of *Characterization and Architectural Implications of Big
//! Data Workloads* (Wang, Zhan, Jia, Han — ISPASS 2016).
//!
//! This crate re-exports the whole workspace under one roof:
//!
//! * [`datagen`] — seeded synthetic data sets (the BDGS analog),
//! * [`trace`] — the micro-op trace model and instrumented execution context,
//! * [`sim`] — the trace-driven micro-architecture simulator (caches, TLBs,
//!   branch predictors, pipeline) standing in for perf counters and MARSSx86,
//! * [`node`] — the system-level node model (CPU/disk/network accounting),
//! * [`stacks`] — miniature Hadoop/Spark/MPI/Hive/Shark/Impala/HBase stacks,
//! * [`workloads`] — the 77-workload catalog, the paper's 17 representatives,
//!   the 6 MPI controls, and the comparison-suite kernels,
//! * [`wcrt`] — the paper's released tool: 45-metric profiling, PCA,
//!   K-means, and representative subsetting,
//! * [`engine`] — the parallel, cache-aware execution engine every figure,
//!   table, and sweep obtains its measurements through.
//!
//! # Quickstart
//!
//! Profile one representative workload on the simulated Xeon E5645:
//!
//! ```
//! use bigdatabench_repro::prelude::*;
//!
//! let reps = workloads::catalog::representatives();
//! let wordcount = reps.iter().find(|w| w.spec.id == "H-WordCount").unwrap();
//! let profile = wcrt::profile_workload(
//!     wordcount,
//!     workloads::Scale::tiny(),
//!     sim::MachineConfig::xeon_e5645(),
//!     node::NodeConfig::default(),
//! );
//! assert!(profile.report.ipc() > 0.0);
//! println!("IPC {:.2}, L1I MPKI {:.1}", profile.report.ipc(), profile.report.l1i_mpki());
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the binaries that regenerate every table and figure of the paper.

pub use bdb_datagen as datagen;
pub use bdb_engine as engine;
pub use bdb_node as node;
pub use bdb_sim as sim;
pub use bdb_stacks as stacks;
pub use bdb_trace as trace;
pub use bdb_wcrt as wcrt;
pub use bdb_workloads as workloads;

/// Convenient glob import for examples and tests.
pub mod prelude {
    pub use crate::{datagen, engine, node, sim, stacks, trace, wcrt, workloads};
}
