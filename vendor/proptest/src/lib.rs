//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, integer/float range
//! strategies, tuples, `Just`, `prop_oneof!`, `.prop_map`,
//! `collection::vec`, and `any::<bool>()`.
//!
//! Differences from the real crate: cases are generated from a seed derived
//! deterministically from the test's module path and name (fully
//! reproducible, no persistence files), and failing cases are reported but
//! not shrunk.

/// Test-runner configuration and the deterministic case RNG.
pub mod test_runner {
    pub use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The RNG driving strategy generation for one case.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Deterministic RNG for case `case` of the named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ (u64::from(case) << 32) ^ u64::from(case),
            ))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Strategies: deterministic random generators of test inputs.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (built by `prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.gen_range(0..self.0.len());
            self.0[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen()
        }
    }

    /// Strategy over a type's whole domain.
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Glob import used by every property test.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn` runs `cases` seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// `assert!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        $crate::strategy::Union(::std::vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..4, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in collection::vec((0i64..5, any::<bool>()), 1..8),
            k in prop_oneof![Just(1usize), 2usize..4],
            label in (0u32..3).prop_map(|i| ["a", "b", "c"][i as usize])
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!((1..4).contains(&k));
            prop_assert!(["a", "b", "c"].contains(&label));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u64..1000, 2..20);
        let a: Vec<_> = (0..10)
            .map(|c| s.generate(&mut TestRng::for_case("t", c)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| s.generate(&mut TestRng::for_case("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
