//! Offline stand-in for `criterion` 0.5.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`/`iter_batched`, `Throughput`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros — backed
//! by a simple wall-clock harness: warm up, then run iterations until the
//! measurement budget is spent, and report the mean time per iteration.
//!
//! Under `cargo bench` cargo passes `--bench`, which selects full
//! measurement; any other invocation (notably `cargo test`, which also runs
//! `harness = false` bench targets) runs each benchmark once as a smoke
//! test so the tier-1 suite stays fast.

use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

/// Work-unit annotation used to report a rate alongside the mean time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Hint for how `iter_batched` amortizes setup; the shim times every batch
/// individually, so this only exists for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every iteration.
    PerIteration,
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    warm_up: Duration,
    measurement: Duration,
    min_samples: u32,
    throughput: Option<Throughput>,
    full: bool,
}

impl Settings {
    fn quick() -> Self {
        Settings {
            warm_up: Duration::ZERO,
            measurement: Duration::ZERO,
            min_samples: 1,
            throughput: None,
            full: false,
        }
    }

    fn full() -> Self {
        Settings {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            min_samples: 10,
            throughput: None,
            full: true,
        }
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        let full = std::env::args().any(|a| a == "--bench");
        Criterion {
            settings: if full {
                Settings::full()
            } else {
                Settings::quick()
            },
        }
    }
}

impl Criterion {
    /// Sets the measurement budget (full mode only).
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        if self.settings.full {
            self.settings.measurement = d;
        }
        self
    }

    /// Sets the warm-up budget (full mode only).
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        if self.settings.full {
            self.settings.warm_up = d;
        }
        self
    }

    /// Sets the minimum sample count (full mode only).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        if self.settings.full {
            self.settings.min_samples = n as u32;
        }
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.settings, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            settings,
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement budget (full mode only).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        if self.settings.full {
            self.settings.measurement = d;
        }
        self
    }

    /// Sets the warm-up budget (full mode only).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        if self.settings.full {
            self.settings.warm_up = d;
        }
        self
    }

    /// Sets the minimum sample count (full mode only).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if self.settings.full {
            self.settings.min_samples = n as u32;
        }
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.settings.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.settings, f);
        self
    }

    /// Ends the group (formatting no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; collects timed iterations.
pub struct Bencher {
    settings: Settings,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        self.run(|| {
            let t = Instant::now();
            black_box(routine());
            t.elapsed()
        });
    }

    /// Times `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        self.run(|| {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            t.elapsed()
        });
    }

    fn run<F: FnMut() -> Duration>(&mut self, mut timed_once: F) {
        let warm_up_end = Instant::now() + self.settings.warm_up;
        while Instant::now() < warm_up_end {
            timed_once();
        }
        let measure_start = Instant::now();
        loop {
            self.samples.push(timed_once());
            let enough_samples = self.samples.len() as u32 >= self.settings.min_samples;
            let budget_spent = measure_start.elapsed() >= self.settings.measurement;
            if enough_samples && budget_spent {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, settings: Settings, mut f: F) {
    let mut b = Bencher {
        settings,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} no samples");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let rate = match settings.throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    let mode = if settings.full { "" } else { "  [smoke]" };
    println!(
        "{name:<40} time: {:>12.3?}  ({} samples){rate}{mode}",
        mean,
        b.samples.len()
    );
}

/// Bundles benchmark functions into a callable group. Supports both the
/// short form (`criterion_group!(benches, a, b)`) and the long form with
/// an explicit `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        let mut c = Criterion {
            settings: Settings::quick(),
        };
        let mut calls = 0u32;
        c.bench_function("probe", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn iter_batched_times_only_routine() {
        let mut c = Criterion {
            settings: Settings::quick(),
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 10],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}
