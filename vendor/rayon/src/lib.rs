//! Offline stand-in for `rayon`.
//!
//! Implements the subset of the rayon API the execution engine uses —
//! `par_iter()` / `into_par_iter()` over slices and vectors, `map`,
//! `collect`, `ThreadPoolBuilder`, and `current_num_threads` — on plain
//! `std::thread::scope` threads.
//!
//! Scheduling is dynamic (an atomic work index, so expensive items do not
//! serialize behind a static partition) while results are reassembled in
//! input order, so a parallel `map` + `collect` is always a permutation-free
//! drop-in for the serial equivalent: output ordering is deterministic
//! regardless of thread interleaving.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads the current context fans out to.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|t| t.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Error returned by [`ThreadPoolBuilder::build`] (the shim never fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default (auto) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the pool at `n` threads; 0 means auto.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = self.num_threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        Ok(ThreadPool {
            threads: threads.max(1),
        })
    }
}

/// A handle fixing the fan-out width for closures run inside it.
///
/// The shim spawns scoped threads per parallel call rather than keeping
/// workers alive, so the pool only carries the configured width.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count as the ambient parallelism.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = POOL_THREADS.with(|t| t.replace(Some(self.threads)));
        let result = f();
        POOL_THREADS.with(|t| t.set(previous));
        result
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Dynamic-scheduled, order-preserving parallel map over a slice.
fn parallel_map<'a, T: Sync, R: Send>(items: &'a [T], f: &(dyn Fn(&'a T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Borrowing conversion into a parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: 'a;
    /// The produced parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParSliceIter<'a, T>;
    fn par_iter(&'a self) -> ParSliceIter<'a, T> {
        ParSliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParSliceIter<'a, T>;
    fn par_iter(&'a self) -> ParSliceIter<'a, T> {
        ParSliceIter { items: self }
    }
}

/// Consuming conversion into a parallel iterator (`.into_par_iter()`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// The produced parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Parallel iterator consuming `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send + Sync> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVecIter<T>;
    fn into_par_iter(self) -> ParVecIter<T> {
        ParVecIter { items: self }
    }
}

/// Operations shared by the shim's parallel iterators.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item;

    /// Maps every element through `op` in parallel, preserving order.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, op: F) -> ParMap<Self, F> {
        ParMap { inner: self, op }
    }

    /// Runs the pipeline and collects results in input order.
    ///
    /// Only `Vec<_>` collection targets are supported.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C
    where
        Self::Item: Send,
    {
        C::from_par_vec(self.run())
    }

    /// Executes the pipeline, yielding results in input order.
    #[doc(hidden)]
    fn run(self) -> Vec<Self::Item>
    where
        Self::Item: Send;
}

/// Parallel iterator over `&[T]`.
pub struct ParSliceIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSliceIter<'a, T> {
    type Item = &'a T;
    fn run(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

/// Parallel iterator over an owned `Vec<T>`.
pub struct ParVecIter<T> {
    items: Vec<T>,
}

impl<T: Send + Sync> ParallelIterator for ParVecIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// A mapped parallel iterator; the map stage is where fan-out happens.
pub struct ParMap<I, F> {
    inner: I,
    op: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParallelIterator
    for ParMap<ParSliceIter<'a, T>, F>
{
    type Item = R;
    fn run(self) -> Vec<R> {
        parallel_map(self.inner.items, &self.op)
    }
}

impl<T: Send + Sync, R: Send, F: Fn(T) -> R + Sync> ParallelIterator for ParMap<ParVecIter<T>, F>
where
    T: Clone,
{
    type Item = R;
    fn run(self) -> Vec<R> {
        parallel_map(&self.inner.items, &|item| (self.op)(item.clone()))
    }
}

/// Collection targets for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T> {
    /// Builds the collection from in-order results.
    fn from_par_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(v: Vec<T>) -> Self {
        v
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        let expected: Vec<u64> = input.iter().map(|&x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn uneven_work_still_ordered() {
        let input: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = input
            .par_iter()
            .map(|&x| {
                // Make early items much more expensive than late ones.
                let spins = if x < 8 { 200_000 } else { 10 };
                let mut acc = x;
                for i in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                std::hint::black_box(acc);
                x
            })
            .collect();
        assert_eq!(out, input);
    }

    #[test]
    fn pool_install_overrides_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| assert_eq!(current_num_threads(), 3));
    }

    #[test]
    fn into_par_iter_consumes() {
        let v: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let out: Vec<usize> = v.clone().into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out, vec![1, 1, 1]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked")]
    fn worker_panic_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let input: Vec<u64> = (0..100).collect();
            let _: Vec<u64> = input
                .par_iter()
                .map(|&x| {
                    assert!(x != 50, "boom");
                    x
                })
                .collect();
        });
    }
}
