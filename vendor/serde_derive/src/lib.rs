//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors API-compatible shims for its external dependencies (see
//! `vendor/README.md`). Nothing in this workspace serializes through the
//! serde data model — the on-disk profile cache uses the hand-rolled codec
//! in `bdb-engine` — so the derives only need to parse and emit nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
