//! Offline stand-in for `rand` 0.8.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of the `rand` API it actually uses: `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and the `Rng` extension methods `gen` / `gen_range`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, high
//! quality, and fully deterministic from the seed, which is the property
//! every seeded generator in this workspace relies on. The streams differ
//! from the real crate's ChaCha12-based `StdRng`; nothing in the workspace
//! depends on the exact stream, only on determinism and uniformity.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the real crate's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: xoshiro's low bits are its weakest.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
///
/// Mirrors the real crate's `SampleUniform` so that `SampleRange` can be a
/// single blanket impl per range shape — which is what lets integer-literal
/// ranges (`0..365`) unify with the surrounding expression's type instead
/// of falling back to `i32`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `lo..hi` (`inclusive` adds the upper endpoint).
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "cannot sample from empty range");
                (lo as i128 + (rng.next_u64() as u128 % span as u128) as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample from empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(lo: f32, hi: f32, _inclusive: bool, rng: &mut R) -> f32 {
        assert!(lo < hi, "cannot sample from empty range");
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// Convenience extension methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value of an inferred type (`bool`, floats, integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-10.0f64..10.0);
            assert!((-10.0..10.0).contains(&f));
        }
    }

    #[test]
    fn f64_unit_interval_covers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi, "samples should cover the unit interval");
    }
}
