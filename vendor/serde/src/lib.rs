//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data types
//! to document intent and keep the door open for the real serde, but no
//! code path serializes through the serde data model (the profile cache in
//! `bdb-engine` uses its own JSON codec). This shim therefore provides the
//! two marker traits with blanket impls, and re-exports no-op derives.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for all
/// types so generic bounds keep compiling.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for all
/// types so generic bounds keep compiling.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::{Deserialize, Serialize};

    #[derive(super::Serialize, super::Deserialize, Debug, PartialEq)]
    struct Probe {
        x: u64,
    }

    #[test]
    fn derives_are_inert() {
        let p = Probe { x: 7 };
        assert_eq!(p, Probe { x: 7 });
    }
}
