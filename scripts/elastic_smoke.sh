#!/usr/bin/env bash
# Elastic smoke: the multi-process twin of
# crates/cluster/tests/elastic_contract.rs.
#
# Leg A (churn): a coordinator with an open --join-listen port starts
# over two paced bdb-clusterd workers (each with its own cache dir and
# replication 1), a third worker *joins mid-run* via --connect, one of
# the original workers is killed with SIGKILL mid-run, and the merged
# bytes must still diff clean against the serial engine.
#
# Leg B (warm restart): the killed worker's cache dir is discarded —
# that machine is gone. Fresh daemons are started over the two
# SURVIVING cache dirs and the same catalog is re-run. Because every
# result was replicated to a ring-successor peer, the rerun must (a)
# diff clean against serial and (b) recompute NOTHING: the workers'
# "(N tasks, M computed)" session logs must sum to zero computed.
set -euo pipefail
cd "$(dirname "$0")/.."

WORKLOADS="${WORKLOADS:-12}"
OUT="$(mktemp -d)"
cleanup() {
    for pidfile in "$OUT"/*.pid; do
        [ -f "$pidfile" ] && kill "$(cat "$pidfile")" 2>/dev/null || true
    done
    rm -rf "$OUT"
}
trap cleanup EXIT

echo "== build =="
cargo build -q --release -p bdb-cluster --bins

CLUSTERD=target/release/bdb_clusterd
SMOKE=target/release/cluster_smoke

start_worker() { # args: logfile, extra flags... (BDB_* env passes through)
    local log="$1"; shift
    "$CLUSTERD" --listen 127.0.0.1:0 "$@" >"$log" 2>"$log.err" &
    echo $! >"$log.pid"
    for _ in $(seq 1 100); do
        if addr=$(grep -m1 '^listening on ' "$log" | cut -d' ' -f3) && [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        sleep 0.1
    done
    echo "worker did not report its address ($log)" >&2
    return 1
}

echo "== serial baseline =="
BDB_NO_CACHE=1 "$SMOKE" --workloads "$WORKLOADS" >"$OUT/serial.jsonl"

echo "== leg A: join mid-run, kill -9 mid-run, replication 1 =="
# Each worker owns a cache dir: that directory *is* the machine's disk,
# and replication is what must carry entries across a machine loss. The
# reply delay paces the run so the join and the kill land mid-flight.
A=$(BDB_CACHE_DIR="$OUT/c0" start_worker "$OUT/w0.log" --fault-delay-ms 200)
B=$(BDB_CACHE_DIR="$OUT/c1" start_worker "$OUT/w1.log" --fault-delay-ms 200)
echo "workers: $A $B (to be killed)"

# --join-idle-secs bounds the open join channel: if the whole fleet
# ever dies, the run fails with AllWorkersDead instead of waiting
# forever for a joiner that will never come (a silent CI hang).
"$SMOKE" --workloads "$WORKLOADS" --cluster "$A,$B" \
    --join-listen 127.0.0.1:0 --join-idle-secs 60 --replication 1 \
    >"$OUT/elastic.jsonl" 2>"$OUT/coord.err" &
COORD=$!

JOIN=""
for _ in $(seq 1 100); do
    if JOIN=$(grep -m1 'join listening on ' "$OUT/coord.err" | sed 's/.*join listening on //') \
        && [ -n "$JOIN" ]; then
        break
    fi
    sleep 0.1
done
[ -n "$JOIN" ] || { echo "coordinator never opened its join listener" >&2; exit 1; }

# Third worker joins the run already in progress...
BDB_CACHE_DIR="$OUT/c2" "$CLUSTERD" --connect "$JOIN" --fault-delay-ms 200 --name joiner \
    >"$OUT/w2.log" 2>"$OUT/w2.log.err" &
echo $! >"$OUT/w2.log.pid"

# ...and one founding worker dies hard, mid-run.
sleep 1
kill -9 "$(cat "$OUT/w1.log.pid")" 2>/dev/null || true
echo "joined third worker at $JOIN; killed -9 worker $B"

wait "$COORD" || {
    echo "elastic coordinator run failed:" >&2
    cat "$OUT/coord.err" >&2
    exit 1
}
diff "$OUT/serial.jsonl" "$OUT/elastic.jsonl"
echo "leg A OK: $(wc -l <"$OUT/serial.jsonl") profiles byte-identical through a mid-run join and a mid-run SIGKILL"

echo "== leg B: warm restart on the surviving cache dirs =="
# The killed worker's machine is gone: its cache dir stays untouched.
# Kill the surviving daemons and start FRESH ones over the surviving
# dirs c0 and c2 — every entry must already be on one of them.
kill "$(cat "$OUT/w0.log.pid")" 2>/dev/null || true
F0=$(BDB_CACHE_DIR="$OUT/c0" start_worker "$OUT/f0.log")
F2=$(BDB_CACHE_DIR="$OUT/c2" start_worker "$OUT/f2.log")

"$SMOKE" --workloads "$WORKLOADS" --cluster "$F0,$F2" --replication 1 \
    >"$OUT/warm.jsonl" 2>"$OUT/warm.err"
diff "$OUT/serial.jsonl" "$OUT/warm.jsonl"

# The daemons log "(N tasks, M computed)" when the session closes;
# give them a moment, then insist the fleet recomputed nothing.
COMPUTED=""
for _ in $(seq 1 100); do
    if grep -q 'computed)' "$OUT/f0.log.err" && grep -q 'computed)' "$OUT/f2.log.err"; then
        COMPUTED=$(sed -n 's/.*tasks, \([0-9][0-9]*\) computed).*/\1/p' \
            "$OUT/f0.log.err" "$OUT/f2.log.err" | awk '{s += $1} END {print s + 0}')
        break
    fi
    sleep 0.1
done
[ -n "$COMPUTED" ] || { echo "warm workers never logged their session summary" >&2; exit 1; }
[ "$COMPUTED" -eq 0 ] || {
    echo "warm restart recomputed $COMPUTED tasks; replication should have kept every entry" >&2
    cat "$OUT/f0.log.err" "$OUT/f2.log.err" >&2
    exit 1
}
echo "leg B OK: warm restart after losing a machine served everything from replicas (0 recomputes)"
