#!/usr/bin/env bash
# Cluster smoke: three bdb-clusterd workers on localhost (one of which
# crashes mid-run), a 12-workload coordinator run over TCP, and a
# byte-for-byte diff against the serial engine's output.
#
# This is the multi-process twin of crates/cluster/tests/tcp_smoke.rs:
# same contract, but with real worker processes, real injected process
# death (exit 3), and the real bdb-clusterd/cluster-smoke binaries.
set -euo pipefail
cd "$(dirname "$0")/.."

WORKLOADS="${WORKLOADS:-12}"
OUT="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$OUT"
}
trap cleanup EXIT

echo "== build =="
cargo build -q --release -p bdb-cluster --bins

CLUSTERD=target/release/bdb_clusterd
SMOKE=target/release/cluster_smoke

# Workers must profile, not serve stale bytes, so the smoke is hermetic.
export BDB_NO_CACHE=1

start_worker() { # args: logfile, extra flags...
    local log="$1"; shift
    "$CLUSTERD" --listen 127.0.0.1:0 "$@" >"$log" 2>"$log.err" &
    PIDS+=($!)
    # Scrape the ephemeral port from the "listening on <addr>" line.
    for _ in $(seq 1 100); do
        if addr=$(grep -m1 '^listening on ' "$log" | cut -d' ' -f3) && [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        sleep 0.1
    done
    echo "worker did not report its address ($log)" >&2
    return 1
}

echo "== start 3 workers (one crashes on its 2nd task) =="
A=$(start_worker "$OUT/w0.log")
B=$(start_worker "$OUT/w1.log" --fault-crash-task 1)
C=$(start_worker "$OUT/w2.log")
echo "workers: $A $B (crashing) $C"

echo "== serial baseline =="
"$SMOKE" --workloads "$WORKLOADS" >"$OUT/serial.jsonl"

echo "== distributed run =="
"$SMOKE" --workloads "$WORKLOADS" --cluster "$A,$B,$C" >"$OUT/cluster.jsonl"

echo "== byte-for-byte diff =="
diff "$OUT/serial.jsonl" "$OUT/cluster.jsonl"
echo "cluster smoke OK: $(wc -l <"$OUT/serial.jsonl") profiles byte-identical despite an injected worker crash"

# Replay-enabled pass: the trace-once/replay-many sweep path
# (BDB_SWEEP_MODE=fused) must leave distributed task payloads and the
# merged bytes untouched. Worker B already died on its injected fault,
# so this run also proves the surviving pair still merges identically.
echo "== replay-enabled distributed run (BDB_SWEEP_MODE=fused) =="
BDB_SWEEP_MODE=fused "$SMOKE" --workloads "$WORKLOADS" --cluster "$A,$C" >"$OUT/cluster_replay.jsonl"
diff "$OUT/serial.jsonl" "$OUT/cluster_replay.jsonl"
echo "replay smoke OK: fused sweep mode leaves the distributed merge byte-identical"

# Binary-wire leg: the coordinator ships BDBC frames while worker A
# still answers in JSON — a deliberately mixed fleet, since the
# BDB_WIRE_FORMAT knob only selects what a sender writes and every
# receiver sniffs per payload. The merged bytes must match both the
# JSON-wire cluster run and the serial baseline exactly.
echo "== binary-wire distributed run (BDB_WIRE_FORMAT=binary, mixed fleet) =="
E=$(BDB_WIRE_FORMAT=binary start_worker "$OUT/w4.log")
BDB_WIRE_FORMAT=binary "$SMOKE" --workloads "$WORKLOADS" --cluster "$A,$E" >"$OUT/cluster_binary.jsonl"
diff "$OUT/cluster.jsonl" "$OUT/cluster_binary.jsonl"
diff "$OUT/serial.jsonl" "$OUT/cluster_binary.jsonl"
echo "binary wire smoke OK: BDBC frames over a mixed JSON/binary fleet merge byte-identically"

# Crash-safety leg: a journaled coordinator is killed with SIGKILL
# mid-run, then a --resume rerun must preload the journaled shards and
# still merge byte-identically to the serial baseline. A delay-only
# worker (no crash fault, so it serves sessions forever) paces the run
# so the kill reliably lands in the middle.
echo "== kill -9 mid-run, then resume from the journal =="
D=$(start_worker "$OUT/w3.log" --fault-delay-ms 250)
J="$OUT/run.wal"
"$SMOKE" --workloads "$WORKLOADS" --cluster "$D" --journal "$J" \
    >"$OUT/killed.jsonl" 2>"$OUT/killed.err" &
VICTIM=$!
# Wait for the journal to hold real progress (start frame + >=1 task
# record) before pulling the trigger.
for _ in $(seq 1 300); do
    if [ -f "$J" ] && [ "$(wc -c <"$J")" -ge 1024 ]; then
        break
    fi
    sleep 0.1
done
[ -f "$J" ] && [ "$(wc -c <"$J")" -ge 1024 ] || {
    echo "journal never accumulated a completed task; cannot test resume" >&2
    exit 1
}
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true
echo "killed coordinator with $(wc -c <"$J") journal bytes on disk"

"$SMOKE" --workloads "$WORKLOADS" --cluster "$D" --journal "$J" --resume \
    >"$OUT/resumed.jsonl" 2>"$OUT/resumed.err"
PRELOADED=$(sed -n 's/.*journal preloaded \([0-9][0-9]*\) of.*/\1/p' "$OUT/resumed.err")
[ "${PRELOADED:-0}" -ge 1 ] || {
    echo "resume run did not preload any journaled shard:" >&2
    cat "$OUT/resumed.err" >&2
    exit 1
}
diff "$OUT/serial.jsonl" "$OUT/resumed.jsonl"
echo "resume smoke OK: $PRELOADED journaled shards reused; merged bytes identical to serial after kill -9"
