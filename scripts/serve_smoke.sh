#!/usr/bin/env bash
# Serve smoke: a bdb-served daemon over TCP, three concurrent clients,
# a knob mutation whose deltas are streamed and patched client-side,
# and a kill -9 warm restart — every printed catalog byte-diffed
# against the serve-smoke --baseline cold-recompute oracle.
#
# This is the multi-process twin of crates/serve/tests/serve_contract.rs:
# same contracts (warm serving, incremental recompute, delta-patched
# snapshots, warm restart), but with a real daemon process, real TCP
# sessions, and real SIGKILL process death.
set -euo pipefail
cd "$(dirname "$0")/.."

WORKLOADS="${WORKLOADS:-H-WordCount,H-Grep,S-Project}"
KNOB="knob:xeon-e5645:l1d.size_bytes=16384"
QUERY_KEY="xeon-e5645/H-WordCount"
OUT="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$OUT"
}
trap cleanup EXIT

echo "== build =="
cargo build -q --release -p bdb-serve --bins

SERVED=target/release/bdb_served
SMOKE=target/release/serve_smoke

# The daemon persists profiles here; the warm-restart leg depends on it.
export BDB_CACHE_DIR="$OUT/cache"

start_daemon() { # args: logfile — sets DAEMON_PID and DAEMON_ADDR
    local log="$1"
    "$SERVED" --listen 127.0.0.1:0 --workloads "$WORKLOADS" --scale tiny \
        >"$log" 2>"$log.err" &
    DAEMON_PID=$!
    PIDS+=("$DAEMON_PID")
    # Wait for both startup lines: the bind address prints immediately,
    # the materialized line only once the catalog is built.
    for _ in $(seq 1 100); do
        if grep -q '^materialized ' "$log" \
            && DAEMON_ADDR=$(grep -m1 '^listening on ' "$log" | cut -d' ' -f3) \
            && [ -n "$DAEMON_ADDR" ]; then
            return 0
        fi
        sleep 0.1
    done
    echo "daemon did not finish starting ($log)" >&2
    cat "$log" "$log.err" >&2 || true
    return 1
}

echo "== cold-recompute oracles (local, no daemon) =="
"$SMOKE" --baseline --workloads "$WORKLOADS" --scale tiny \
    >"$OUT/base0.txt" 2>/dev/null
"$SMOKE" --baseline --workloads "$WORKLOADS" --scale tiny --mutate "$KNOB" \
    >"$OUT/base1.txt" 2>"$OUT/base1.err"

echo "== start daemon (cold) =="
start_daemon "$OUT/d1.log"
echo "daemon at $DAEMON_ADDR (pid $DAEMON_PID)"
grep -q 'materialized 3 entries (3 computed' "$OUT/d1.log" || {
    echo "cold daemon did not simulate its catalog:" >&2
    cat "$OUT/d1.log" >&2
    exit 1
}

echo "== three concurrent clients (snapshot, query, stats) =="
"$SMOKE" --connect "$DAEMON_ADDR" --snapshot >"$OUT/snap_cold.txt" 2>/dev/null &
SNAP=$!
"$SMOKE" --connect "$DAEMON_ADDR" --query "$QUERY_KEY" >"$OUT/query.txt" 2>/dev/null &
QUERY=$!
"$SMOKE" --connect "$DAEMON_ADDR" --stats >"$OUT/stats_cold.txt" 2>/dev/null &
STATS=$!
wait "$SNAP" "$QUERY" "$STATS"
diff "$OUT/base0.txt" "$OUT/snap_cold.txt"
grep -qxF "$(cat "$OUT/query.txt")" "$OUT/base0.txt" || {
    echo "queried entry does not match the baseline oracle:" >&2
    cat "$OUT/query.txt" >&2
    exit 1
}
echo "concurrent clients OK: snapshot byte-identical to the cold oracle"

echo "== kill -9, then warm restart from the cache =="
kill -9 "$DAEMON_PID" 2>/dev/null || true
wait "$DAEMON_PID" 2>/dev/null || true
start_daemon "$OUT/d2.log"
echo "restarted daemon at $DAEMON_ADDR (pid $DAEMON_PID)"
grep -q 'materialized 3 entries (0 computed' "$OUT/d2.log" || {
    echo "restarted daemon recomputed instead of loading the cache:" >&2
    cat "$OUT/d2.log" >&2
    exit 1
}
"$SMOKE" --connect "$DAEMON_ADDR" --snapshot >"$OUT/snap_warm.txt" 2>/dev/null
diff "$OUT/base0.txt" "$OUT/snap_warm.txt"
echo "warm restart OK: catalog reloaded byte-identically without simulating"

echo "== subscriber + knob mutation (incremental recompute, delta patch) =="
"$SMOKE" --connect "$DAEMON_ADDR" --subscribe --expect-batches 1 \
    >"$OUT/patched.txt" 2>"$OUT/subscriber.err" &
SUBSCRIBER=$!
for _ in $(seq 1 100); do
    grep -q 'subscribed at seq' "$OUT/subscriber.err" && break
    sleep 0.1
done
grep -q 'subscribed at seq' "$OUT/subscriber.err" || {
    echo "subscriber never registered:" >&2
    cat "$OUT/subscriber.err" >&2
    exit 1
}
"$SMOKE" --connect "$DAEMON_ADDR" --mutate "$KNOB" 2>"$OUT/mutate.err"
wait "$SUBSCRIBER"
"$SMOKE" --connect "$DAEMON_ADDR" --snapshot >"$OUT/snap_mutated.txt" 2>/dev/null
diff "$OUT/snap_mutated.txt" "$OUT/patched.txt"
diff "$OUT/base1.txt" "$OUT/snap_mutated.txt"
echo "delta smoke OK: patched subscriber catalog byte-identical to the mutated oracle"

echo "== counters prove the recompute was incremental =="
"$SMOKE" --connect "$DAEMON_ADDR" --stats >"$OUT/stats_final.txt" 2>/dev/null
grep -qx 'computed=3' "$OUT/stats_final.txt" || {
    echo "expected exactly the 3 knob-affected recomputes on the warm daemon:" >&2
    cat "$OUT/stats_final.txt" >&2
    exit 1
}
grep -qx 'delta_batches=1' "$OUT/stats_final.txt"
grep -qx 'deltas_streamed=3' "$OUT/stats_final.txt"

echo "== clean shutdown =="
"$SMOKE" --connect "$DAEMON_ADDR" --shutdown 2>"$OUT/shutdown.err"
wait "$DAEMON_PID"
echo "serve smoke OK: warm serving, kill -9 restart, and incremental deltas all byte-identical"
