#!/usr/bin/env bash
# Regenerates the bdb-lint blessed artifacts from the current tree:
#
#   contracts/lint_baseline.json  — findings accepted as pre-existing
#                                   (kept empty while the tree is clean;
#                                   CI fails only on findings not listed)
#   contracts/knobs.txt           — inventory of every BDB_* env knob the
#                                   workspace reads, one sorted name per
#                                   line (the dead-knob rule cross-checks
#                                   it against code and docs)
#
# Mirrors the BDB_BLESS_CONTRACTS=1 flow used for the catalog/metric/
# reduction contracts (tests/contracts_sync.rs); the knobs half of this
# script is equivalent to:
#
#   BDB_BLESS_CONTRACTS=1 cargo test -p bdb-lint knobs_sync
#
# After blessing, the verification run below must come back clean —
# a bless that leaves findings behind means the baseline now hides real
# violations, so it fails loudly here instead of in CI.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -q -p bdb-lint -- --bless

echo "verifying the blessed tree is clean..."
cargo run -q -p bdb-lint -- --deny-warnings --baseline contracts/lint_baseline.json
