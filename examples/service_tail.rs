//! Service-workload deep dive: the HBase-like store under three request
//! mixes, showing why cloud-OLTP services are the paper's worst front-end
//! citizens (stochastic request routing through a large handler farm).
//!
//! ```sh
//! cargo run --release --example service_tail
//! ```

use bigdatabench_repro::prelude::*;
use stacks::kvstore::{HbaseStack, KvService, Request};
use trace::{CodeLayout, ExecCtx};

fn main() {
    // Run the packaged service workloads first.
    let scale = workloads::Scale::small();
    let catalog = workloads::catalog::full_catalog();
    println!("packaged service workloads on the simulated Xeon E5645:\n");
    for id in ["H-Read", "H-Write", "H-Scan", "H-ReadWrite"] {
        let def = catalog
            .iter()
            .find(|w| w.spec.id == id)
            .expect("service workload");
        let p = wcrt::profile_workload(
            def,
            scale,
            sim::MachineConfig::xeon_e5645(),
            node::NodeConfig::default(),
        );
        println!(
            "  {:11} IPC {:.2}  L1I MPKI {:>6.2}  ITLB MPKI {:.3}  {}",
            id,
            p.report.ipc(),
            p.report.l1i_mpki(),
            p.report.itlb_mpki(),
            p.system_class,
        );
    }

    // Then drive the KV store directly through the public stacks API.
    println!("\ndriving the LSM store directly:");
    let mut layout = CodeLayout::new();
    let stack = HbaseStack::register(&mut layout);
    let mut machine = sim::Machine::new(sim::MachineConfig::xeon_e5645());
    let mut ctx = ExecCtx::new(&layout, &mut machine);
    let root = stack.root_region();
    ctx.frame(root, |ctx| {
        let mut svc = KvService::new(&stack, ctx);
        svc.bulk_load(
            (0..5_000)
                .map(|i| stacks::Record::new(format!("user{i:06}").into_bytes(), vec![b'v'; 128]))
                .collect(),
        );
        let hits = (0..2_000)
            .filter(|i| {
                let key = format!("user{:06}", (i * 37) % 5_000);
                !svc.serve(ctx, &Request::Get(key.into_bytes())).is_empty()
            })
            .count();
        println!(
            "  2000 gets, {hits} hits (store holds {} records)",
            svc.resident_records()
        );
    });
    drop(ctx);
    let report = machine.report();
    println!(
        "  direct-drive: IPC {:.2}, L1I MPKI {:.1}, branch mispredict {:.1}%",
        report.ipc(),
        report.l1i_mpki(),
        report.branch.mispredict_ratio() * 100.0
    );
}
