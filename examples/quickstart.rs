//! Quickstart: run one big data workload through the full measurement
//! pipeline — workload → software stack → micro-op trace → simulated Xeon
//! E5645 → perf report → node model → classification.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bigdatabench_repro::prelude::*;

fn main() {
    let scale = workloads::Scale::small();
    let reps = workloads::catalog::representatives();

    println!("The paper's 17 representative workloads are available:");
    for w in &reps {
        println!(
            "  {:18} [{} / {}]",
            w.spec.id, w.spec.stack, w.spec.category
        );
    }

    let wordcount = reps
        .iter()
        .find(|w| w.spec.id == "H-WordCount")
        .expect("H-WordCount is a Table 2 representative");

    println!(
        "\nprofiling {} on the simulated Xeon E5645...",
        wordcount.spec.id
    );
    let profile = wcrt::profile_workload(
        wordcount,
        scale,
        sim::MachineConfig::xeon_e5645(),
        node::NodeConfig::default(),
    );

    println!("  instructions       {:>12}", profile.report.instructions);
    println!("  IPC                {:>12.2}", profile.report.ipc());
    println!("  L1I MPKI           {:>12.2}", profile.report.l1i_mpki());
    println!("  L2 MPKI            {:>12.2}", profile.report.l2_mpki());
    println!("  L3 MPKI            {:>12.2}", profile.report.l3_mpki());
    println!(
        "  branch mispredict  {:>11.2}%",
        profile.report.branch.mispredict_ratio() * 100.0
    );
    println!(
        "  branch ratio       {:>11.2}%",
        profile.report.mix.branch_ratio() * 100.0
    );
    println!(
        "  data movement      {:>11.2}%",
        profile.report.mix.data_movement_ratio() * 100.0
    );
    println!(
        "  CPU utilization    {:>11.2}%",
        profile.system.cpu_utilization
    );
    println!(
        "  system behaviour   {:>12}",
        profile.system_class.to_string()
    );
    println!(
        "  data behaviour     {:>12}",
        profile.data_behavior.to_string()
    );
    println!(
        "\nfirst 5 of the 45 WCRT metrics: {:?}",
        &profile.metrics.values()[..5]
    );
}
