//! The WCRT pipeline end to end: profile a slice of the catalog on 45
//! metrics, normalize, run PCA, cluster with K-means, and pick
//! representatives — the same machinery that reduces 77 workloads to 17
//! (run `cargo run --release -p bdb-bench --bin reduction_77_to_17` for the
//! full-catalog version).
//!
//! ```sh
//! cargo run --release --example subsetting
//! ```

use bigdatabench_repro::prelude::*;
use wcrt::reduction::{reduce, ReductionConfig};

fn main() {
    // A diverse slice: two text kernels, a service, a query, an iterative
    // job, and an MPI control — 12 workloads, clustered into 4.
    let ids = [
        "H-WordCount",
        "S-WordCount",
        "H-Grep",
        "S-Grep",
        "H-Read",
        "H-Scan",
        "I-SelectQuery",
        "I-OrderBy",
        "S-Kmeans",
        "S-PageRank",
        "H-Sort",
        "S-Sort",
    ];
    let mut defs = workloads::catalog::full_catalog();
    defs.extend(workloads::catalog::mpi_workloads());
    let subset: Vec<_> = ids
        .iter()
        .map(|id| defs.iter().find(|w| w.spec.id == *id).expect("id").clone())
        .collect();

    println!("profiling {} workloads on 45 metrics...", subset.len());
    let profiles = wcrt::profile::profile_all(
        &subset,
        workloads::Scale::tiny(),
        &sim::MachineConfig::xeon_e5645(),
        &node::NodeConfig::default(),
    );

    let result = reduce(
        &profiles,
        ReductionConfig {
            k: 4,
            ..Default::default()
        },
    );
    println!(
        "PCA kept {} dims explaining {:.0}% of variance",
        result.pca_dims,
        result.explained_variance * 100.0
    );
    println!("clusters:");
    for cluster in 0..result.clustering.k() {
        let members: Vec<&str> = result
            .ids
            .iter()
            .zip(&result.clustering.assignments)
            .filter(|(_, &a)| a == cluster)
            .map(|(id, _)| id.as_str())
            .collect();
        if members.is_empty() {
            continue;
        }
        println!("  cluster {cluster}: {members:?}");
    }
    println!("representatives: {:?}", result.representative_ids());
}
