//! The paper's §5.5 experiment as an example: the same WordCount algorithm
//! on the MPI, Hadoop, and Spark stacks, measured on the same simulated
//! machine — reproducing the order-of-magnitude front-end gap that is the
//! paper's headline (L1I MPKI 2 / 7 / 17 on the real testbed).
//!
//! ```sh
//! cargo run --release --example stack_comparison
//! ```

use bigdatabench_repro::prelude::*;

fn main() {
    let scale = workloads::Scale::small();
    let mut defs = workloads::catalog::full_catalog();
    defs.extend(workloads::catalog::mpi_workloads());

    println!("WordCount on three software stacks (simulated Xeon E5645):\n");
    println!(
        "{:14} {:>7} {:>10} {:>9} {:>9} {:>11} {:>12}",
        "stack", "IPC", "L1I MPKI", "L2 MPKI", "L3 MPKI", "mispredict", "instructions"
    );
    let mut l1i = Vec::new();
    for id in ["M-WordCount", "H-WordCount", "S-WordCount"] {
        let def = defs
            .iter()
            .find(|w| w.spec.id == id)
            .expect("workload in catalog");
        let p = wcrt::profile_workload(
            def,
            scale,
            sim::MachineConfig::xeon_e5645(),
            node::NodeConfig::default(),
        );
        println!(
            "{:14} {:>7.2} {:>10.2} {:>9.2} {:>9.2} {:>10.2}% {:>12}",
            def.spec.stack.to_string(),
            p.report.ipc(),
            p.report.l1i_mpki(),
            p.report.l2_mpki(),
            p.report.l3_mpki(),
            p.report.branch.mispredict_ratio() * 100.0,
            p.report.instructions,
        );
        l1i.push(p.report.l1i_mpki());
    }
    println!(
        "\nL1I MPKI ratio Spark/MPI: {:.0}x (the paper's 'order of magnitude')",
        l1i[2] / l1i[0].max(1e-9)
    );
    println!("paper reference: MPI 2, Hadoop 7, Spark 17");
}
