//! The paper's §5.4 locality methodology as an example: sweep the L1
//! capacity of an Atom-like in-order core and watch where each workload's
//! instruction miss-ratio curve flattens — that knee is its instruction
//! footprint (Hadoop ≈ 1 MiB, MPI ≈ traditional benchmarks).
//!
//! ```sh
//! cargo run --release --example cache_sweep
//! ```

use bigdatabench_repro::prelude::*;
use sim::PAPER_SWEEP_KIB;

fn main() {
    let scale = workloads::Scale::small();
    let mut defs = workloads::catalog::full_catalog();
    defs.extend(workloads::catalog::mpi_workloads());

    println!("L1I miss ratio (%) while sweeping the L1 capacity:\n");
    print!("{:14}", "capacity KiB");
    for kib in PAPER_SWEEP_KIB {
        print!("{kib:>8}");
    }
    println!();

    for id in ["H-WordCount", "M-WordCount"] {
        let def = defs.iter().find(|w| w.spec.id == id).expect("workload");
        let result = sim::sweep(id, &PAPER_SWEEP_KIB, |machine| {
            let _ = def.run(machine, scale);
        });
        print!("{id:14}");
        for (_, ratio) in &result.instruction.points {
            print!("{:>8.3}", ratio * 100.0);
        }
        println!();
        if let Some(knee) = result.instruction.footprint_kib(0.0008) {
            println!("{:14} instruction footprint ~{} KiB", "", knee);
        }
    }
}
